//! Cross-validation of the cluster-sharded parallel executor against the sequential
//! algorithms: parallel execution must be **lossless and deterministic**.
//!
//! For every seeded generator workload the suite asserts, at 1, 2, 4 and 8 worker
//! threads, that
//!
//! * the parallel `BatchEnum` returns *exactly* the sequential path sets — the same
//!   paths, per query, in the same order (byte-identical output), and
//! * the per-query statistics that are defined to be deterministic (traversal counters,
//!   cluster counts, shared-subquery counts, produced paths) are identical to the
//!   sequential run and across repeated parallel runs.
//!
//! Timing-derived fields (stage durations) are excluded by design: they measure the
//! machine, not the algorithm.

use hcsp::core::{BasicEnum, BatchEnum};
use hcsp::prelude::*;
use hcsp::workload::{random_query_set, similar_query_set, QuerySetSpec};
use hcsp_graph::generators::erdos_renyi::gnm_random;
use hcsp_graph::generators::preferential::{preferential_attachment, PreferentialConfig};
use hcsp_graph::generators::regular::grid;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One seeded workload: a generator graph plus a query batch drawn from it.
fn workloads() -> Vec<(String, DiGraph, Vec<PathQuery>)> {
    let mut out = Vec::new();

    let g = grid(5, 5);
    let queries = random_query_set(&g, QuerySetSpec::new(12, 11).with_hops(4, 6));
    out.push(("grid-5x5".to_string(), g, queries));

    for seed in [1, 2] {
        let g = gnm_random(80, 480, seed).unwrap();
        let queries = similar_query_set(&g, QuerySetSpec::new(14, seed).with_hops(3, 5), 0.5);
        out.push((format!("gnm-80-480-seed{seed}"), g, queries));
    }

    let g = preferential_attachment(PreferentialConfig {
        num_vertices: 220,
        edges_per_vertex: 3,
        reciprocity: 0.3,
        seed: 5,
    })
    .unwrap();
    let queries = similar_query_set(&g, QuerySetSpec::new(10, 9).with_hops(3, 4), 0.7);
    out.push(("preferential-220".to_string(), g, queries));

    out
}

fn collect_sequential_batch(graph: &DiGraph, queries: &[PathQuery]) -> (CollectSink, EnumStats) {
    let mut sink = CollectSink::new(queries.len());
    let stats =
        BatchEnum::new(SearchOrder::DistanceThenDegree, 0.5).run_batch(graph, queries, &mut sink);
    (sink, stats)
}

#[test]
fn parallel_batch_enum_is_byte_identical_to_sequential_at_every_thread_count() {
    for (name, graph, queries) in workloads() {
        assert!(!queries.is_empty(), "workload {name} generated no queries");
        let (sequential, seq_stats) = collect_sequential_batch(&graph, &queries);
        for workers in THREAD_COUNTS {
            let mut parallel = CollectSink::new(queries.len());
            let par_stats = ParallelBatchEnum::new(
                SearchOrder::DistanceThenDegree,
                0.5,
                Parallelism::Fixed(workers),
            )
            .run_batch(&graph, &queries, &mut parallel);

            // Exactly the sequential path set: same paths, same per-query order.
            assert_eq!(
                parallel.all(),
                sequential.all(),
                "{name}: path sets diverge at {workers} workers"
            );
            // The deterministic statistics match the sequential run.
            assert_eq!(
                par_stats.counters, seq_stats.counters,
                "{name}: counters diverge at {workers} workers"
            );
            assert_eq!(par_stats.num_queries, seq_stats.num_queries, "{name}");
            assert_eq!(par_stats.num_clusters, seq_stats.num_clusters, "{name}");
            assert_eq!(
                par_stats.num_shared_subqueries, seq_stats.num_shared_subqueries,
                "{name}"
            );
        }
    }
}

#[test]
fn parallel_runs_are_deterministic_across_repetitions() {
    for (name, graph, queries) in workloads() {
        let runner =
            ParallelBatchEnum::new(SearchOrder::DistanceThenDegree, 0.5, Parallelism::Fixed(4));
        let mut first = CollectSink::new(queries.len());
        let first_stats = runner.run_batch(&graph, &queries, &mut first);
        for _ in 0..2 {
            let mut again = CollectSink::new(queries.len());
            let again_stats = runner.run_batch(&graph, &queries, &mut again);
            assert_eq!(again.all(), first.all(), "{name}: nondeterministic output");
            assert_eq!(
                again_stats.counters, first_stats.counters,
                "{name}: nondeterministic counters"
            );
            assert_eq!(again_stats.num_clusters, first_stats.num_clusters);
        }
    }
}

#[test]
fn parallel_basic_enum_matches_sequential_basic_enum() {
    for (name, graph, queries) in workloads() {
        let mut sequential = CollectSink::new(queries.len());
        let seq_stats = BasicEnum::new(SearchOrder::DistanceThenDegree).run_batch(
            &graph,
            &queries,
            &mut sequential,
        );
        for workers in THREAD_COUNTS {
            let mut parallel = CollectSink::new(queries.len());
            let par_stats = ParallelBasicEnum::new(
                SearchOrder::DistanceThenDegree,
                Parallelism::Fixed(workers),
            )
            .run_batch(&graph, &queries, &mut parallel);
            assert_eq!(
                parallel.all(),
                sequential.all(),
                "{name}: ParallelBasicEnum diverges at {workers} workers"
            );
            assert_eq!(par_stats.counters, seq_stats.counters, "{name}");
        }
    }
}

#[test]
fn engine_parallel_entry_point_is_lossless_for_every_algorithm() {
    let (name, graph, queries) = workloads().swap_remove(1);
    for algorithm in Algorithm::ALL {
        let mut reference = Engine::with_algorithm(graph.clone(), algorithm);
        let expected = reference.run(&queries);
        for workers in THREAD_COUNTS {
            let mut engine = Engine::with_algorithm(graph.clone(), algorithm);
            let outcome = engine.run_batch_parallel(&queries, Parallelism::Fixed(workers));
            assert_eq!(
                outcome.paths, expected.paths,
                "{name}: {algorithm} at {workers} workers"
            );
        }
    }
}
