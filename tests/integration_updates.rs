//! Integration: dynamic graph updates cross-validated against rebuild-from-scratch.
//!
//! The update path (DeltaGraph overlay → compaction → incremental index maintenance)
//! must be invisible in the results: after *every* insert/delete step, a long-lived
//! engine that absorbed the updates answers byte-identically (same per-query paths,
//! same order) to a fresh engine built from scratch over the equivalently mutated
//! graph — sequentially and on the parallel executor — and a `PathService` consuming
//! interleaved queries and updates stays lossless versus the offline oracle.

use hcsp::prelude::*;
use hcsp::workload::{update_stream, Dataset, DatasetScale, StreamEvent, UpdateStreamSpec};
use std::time::Duration;

/// Drives one engine through a mixed stream, cross-validating against a from-scratch
/// rebuild after every step. Queries accumulate between updates and run as shared
/// batches, so the sharing machinery (clustering, Ψ evaluation, result cache) is
/// exercised on every evolved snapshot, not just single-query paths.
fn evolve_and_cross_validate(algorithm: Algorithm, parallelism: Option<usize>) {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let spec = UpdateStreamSpec::new(18, 7, 23)
        .with_hops(3, 4)
        .with_updates(4, 0.5);
    let events = update_stream(&graph, spec);
    assert!(
        events.iter().any(|e| !e.is_query()) && events.iter().any(StreamEvent::is_query),
        "the stream must interleave queries and updates"
    );

    let mut engine = Engine::with_algorithm(graph.clone(), algorithm);
    let mut oracle = DeltaGraph::new(graph);
    let mut pending: Vec<PathQuery> = Vec::new();

    let run_pending = |engine: &mut Engine, oracle: &DeltaGraph, pending: &mut Vec<PathQuery>| {
        if pending.is_empty() {
            return;
        }
        let outcome = match parallelism {
            Some(threads) => engine.run_batch_parallel(pending, Parallelism::Fixed(threads)),
            None => engine.run(pending),
        };
        let mut fresh = Engine::with_algorithm(oracle.compact(), algorithm);
        let expected = fresh.run(pending);
        assert_eq!(
            outcome.paths, expected.paths,
            "{algorithm} (parallelism {parallelism:?}) diverged from a from-scratch \
             rebuild on {pending:?}"
        );
        pending.clear();
    };

    for event in &events {
        match event {
            StreamEvent::Query(q) => pending.push(*q),
            StreamEvent::Update(batch) => {
                // Flush queries against the pre-update snapshot, then mutate both sides.
                run_pending(&mut engine, &oracle, &mut pending);
                let summary = engine.apply_updates(batch);
                assert_eq!(summary.applied, batch.len(), "stream updates always apply");
                for update in batch {
                    assert!(oracle.apply(update));
                }
                // The step itself must already agree at the graph level...
                assert_eq!(*engine.graph(), oracle.compact());
                // ...and at the result level: validate immediately after every step.
                let probe = PathQuery::new(
                    0u32,
                    (engine.graph().num_vertices() as u32).saturating_sub(1),
                    4,
                );
                pending.push(probe);
                run_pending(&mut engine, &oracle, &mut pending);
            }
        }
    }
    run_pending(&mut engine, &oracle, &mut pending);
}

#[test]
fn sequential_update_path_is_byte_identical_to_rebuild_for_every_algorithm() {
    for algorithm in Algorithm::ALL {
        evolve_and_cross_validate(algorithm, None);
    }
}

#[test]
fn parallel_update_path_is_byte_identical_to_rebuild() {
    for threads in [2, 4] {
        evolve_and_cross_validate(Algorithm::BatchEnumPlus, Some(threads));
        evolve_and_cross_validate(Algorithm::BasicEnumPlus, Some(threads));
    }
}

/// Replays a mixed stream through a `PathService`, checking every delivered path set
/// against the offline oracle for the snapshot the query was admitted under.
fn service_stream_is_lossless(workers: usize, exec_threads: usize) {
    let graph = Dataset::WT.build(DatasetScale::Tiny);
    let spec = UpdateStreamSpec::new(16, 6, 5)
        .with_hops(3, 4)
        .with_updates(3, 0.5);
    let events = update_stream(&graph, spec);

    let service = PathService::builder()
        .workers(workers)
        .policy(BatchPolicy::by_size(4, Duration::from_millis(5)).with_exec_threads(exec_threads))
        .start(graph.clone())
        .unwrap();

    // Submit the whole stream in admission order, recording each query's expected
    // answer from an offline engine over the snapshot it was admitted under.
    let mut oracle = DeltaGraph::new(graph);
    let mut snapshot = oracle.compact();
    let mut snapshot_dirty = false;
    let mut expectations = Vec::new();
    for event in &events {
        match event {
            StreamEvent::Query(q) => {
                if snapshot_dirty {
                    snapshot = oracle.compact();
                    snapshot_dirty = false;
                }
                let expected = BatchEngine::default().run(&snapshot, &[*q]);
                expectations.push((service.submit(*q), *q, expected.paths));
            }
            StreamEvent::Update(batch) => {
                // Fire-and-forget: queue order alone guarantees the update lands
                // before any later query, and shutdown() drains everything.
                let _ = service.update(batch.clone());
                for update in batch {
                    oracle.apply(update);
                }
                snapshot_dirty = true;
            }
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.num_queries, expectations.len());
    assert!(stats.update_batches > 0);

    for (handle, query, expected) in expectations {
        let result = handle.wait();
        assert_eq!(
            vec![result.paths],
            expected,
            "service ({workers} workers, {exec_threads} exec threads) lost losslessness \
             on {query} against its admission snapshot"
        );
    }
}

#[test]
fn service_with_interleaved_updates_is_lossless_single_worker() {
    service_stream_is_lossless(1, 1);
}

#[test]
fn service_with_interleaved_updates_is_lossless_across_a_pool() {
    service_stream_is_lossless(3, 1);
}

#[test]
fn service_with_interleaved_updates_is_lossless_with_parallel_execution() {
    service_stream_is_lossless(2, 2);
}

#[test]
fn update_stream_oracle_fold_matches_stepwise_application() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let events = update_stream(
        &graph,
        UpdateStreamSpec::new(6, 5, 77)
            .with_hops(3, 3)
            .with_updates(6, 0.3),
    );
    let folded = hcsp::workload::fold_updates(&graph, &events);
    let mut engine = Engine::new(graph, BatchEngine::default());
    for event in &events {
        if let StreamEvent::Update(batch) = event {
            engine.apply_updates(batch);
        }
    }
    assert_eq!(*engine.graph(), folded);
}
