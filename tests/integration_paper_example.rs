//! End-to-end reproduction of the paper's running example (Fig. 1 – Fig. 6): the graph
//! `G`, the query batch `Q = {q0..q4}`, the expected result paths of Example 2.1, the
//! clustering of Example 4.1 and the common HC-s path queries of Example 4.2.

use hcsp::core::bruteforce::canonical;
use hcsp::core::clustering::cluster_queries;
use hcsp::core::detection::detect_common_queries;
use hcsp::core::query::BatchSummary;
use hcsp::core::sharing_graph::SharingGraph;
use hcsp::core::similarity::{QueryNeighborhood, SimilarityMatrix};
use hcsp::core::HcsQuery;
use hcsp::prelude::*;
use hcsp_graph::GraphBuilder;

/// The graph of Fig. 1.
fn paper_graph() -> DiGraph {
    let edges: &[(u32, u32)] = &[
        (0, 1),
        (0, 4),
        (2, 1),
        (2, 4),
        (5, 1),
        (1, 7),
        (1, 8),
        (7, 10),
        (7, 8),
        (10, 12),
        (12, 11),
        (12, 13),
        (4, 9),
        (9, 3),
        (9, 15),
        (9, 8),
        (3, 6),
        (15, 6),
        (6, 11),
        (6, 13),
        (6, 14),
    ];
    let mut b = GraphBuilder::new();
    for &(u, v) in edges {
        b.add_edge(VertexId(u), VertexId(v));
    }
    b.reserve_vertices(16);
    b.build()
}

/// The query batch of Fig. 1.
fn paper_queries() -> Vec<PathQuery> {
    vec![
        PathQuery::new(0u32, 11u32, 5),
        PathQuery::new(2u32, 13u32, 5),
        PathQuery::new(5u32, 12u32, 5),
        PathQuery::new(4u32, 14u32, 4),
        PathQuery::new(9u32, 14u32, 3),
    ]
}

fn path_ids(paths: &[Path]) -> Vec<Vec<u32>> {
    paths
        .iter()
        .map(|p| p.vertices().iter().map(|v| v.raw()).collect())
        .collect()
}

#[test]
fn example_2_1_q0_has_exactly_the_three_listed_paths() {
    let g = paper_graph();
    let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&g, &paper_queries());
    let q0 = path_ids(&canonical(outcome.paths[0].to_paths()));
    assert_eq!(
        q0,
        vec![
            vec![0, 1, 7, 10, 12, 11],
            vec![0, 4, 9, 3, 6, 11],
            vec![0, 4, 9, 15, 6, 11],
        ]
    );
}

#[test]
fn figure_3_q1_shares_the_inner_segments_with_q0() {
    // Fig. 3 (b): q1's paths mirror q0's with only the endpoints differing.
    let g = paper_graph();
    let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnum).run(&g, &paper_queries());
    let q1 = path_ids(&canonical(outcome.paths[1].to_paths()));
    assert_eq!(
        q1,
        vec![
            vec![2, 1, 7, 10, 12, 13],
            vec![2, 4, 9, 3, 6, 13],
            vec![2, 4, 9, 15, 6, 13],
        ]
    );
}

#[test]
fn all_five_queries_return_correct_counts_under_every_algorithm() {
    let g = paper_graph();
    let queries = paper_queries();
    let reference: Vec<u64> = queries
        .iter()
        .map(|q| hcsp::core::bruteforce::enumerate_reference(&g, q).len() as u64)
        .collect();
    // q0, q1 and q2 have three paths each (Example 2.1 / Fig. 3).
    assert_eq!(reference[0], 3);
    assert_eq!(reference[1], 3);
    for algorithm in Algorithm::ALL {
        let (counts, _) = BatchEngine::with_algorithm(algorithm).run_counting(&g, &queries);
        assert_eq!(counts, reference, "{algorithm}");
    }
}

#[test]
fn example_4_1_clustering_splits_queries_into_two_groups() {
    let g = paper_graph();
    let queries = paper_queries();
    let summary = BatchSummary::of(&queries);
    let index = BatchIndex::build(
        &g,
        &summary.sources,
        &summary.targets,
        summary.max_hop_limit,
    );
    let neighborhoods: Vec<QueryNeighborhood> = queries
        .iter()
        .map(|q| QueryNeighborhood::from_index(&index, q))
        .collect();
    let matrix = SimilarityMatrix::compute(&neighborhoods);

    // Example 4.1: µ(q3, q4) = 1 — q4's neighbourhoods are contained in q3's.
    assert!(matrix.get(3, 4) > 0.99, "µ(q3, q4) = {}", matrix.get(3, 4));
    // q0 and q1 are highly similar.
    assert!(matrix.get(0, 1) > 0.8, "µ(q0, q1) = {}", matrix.get(0, 1));

    let clusters = cluster_queries(&matrix, 0.8);
    assert_eq!(
        clusters,
        vec![vec![0, 1, 2], vec![3, 4]],
        "Example 4.1 clustering at γ = 0.8"
    );
}

#[test]
fn example_4_2_detects_the_dominating_queries_of_figure_6() {
    let g = paper_graph();
    let queries = paper_queries();
    let summary = BatchSummary::of(&queries);
    let index = BatchIndex::build(
        &g,
        &summary.sources,
        &summary.targets,
        summary.max_hop_limit,
    );

    // Cluster C0 = {q0, q1, q2} on G.
    let cluster: Vec<(usize, PathQuery)> = vec![(0, queries[0]), (1, queries[1]), (2, queries[2])];
    let mut sharing = SharingGraph::new();
    detect_common_queries(&g, &index, &cluster, Direction::Forward, &mut sharing);

    // Fig. 6 (b): q_{v1,2,G} shared by all three queries, q_{v4,2,G} shared by q0 and q1.
    let dom_v1 = sharing
        .find_hcs(&HcsQuery::new(1u32, 2, Direction::Forward))
        .expect("q_{v1,2,G} detected");
    let dom_v4 = sharing
        .find_hcs(&HcsQuery::new(4u32, 2, Direction::Forward))
        .expect("q_{v4,2,G} detected");
    assert_eq!(sharing.users(dom_v1).len(), 3);
    assert_eq!(sharing.users(dom_v4).len(), 2);

    // Ψ is evaluated providers-first.
    let order = sharing.topological_order();
    let pos = |n| order.iter().position(|&x| x == n).unwrap();
    let half_q0 = sharing
        .find_hcs(&HcsQuery::new(0u32, 3, Direction::Forward))
        .unwrap();
    assert!(pos(dom_v1) < pos(half_q0));
    assert!(pos(dom_v4) < pos(half_q0));
}

#[test]
fn example_4_3_shared_enumeration_reuses_cached_results() {
    let g = paper_graph();
    let queries = paper_queries();
    let (counts, stats) = BatchEngine::builder()
        .algorithm(Algorithm::BatchEnum)
        .gamma(0.8)
        .build()
        .run_counting(&g, &queries);
    assert!(counts.iter().sum::<u64>() >= 6);
    assert!(stats.num_clusters <= 3, "similar queries must be grouped");
    assert!(
        stats.num_shared_subqueries >= 2,
        "at least q_{{v1,2,G}} and q_{{v4,2,G}}"
    );
    assert!(
        stats.counters.cache_splices > 0,
        "cached HC-s path results must be spliced"
    );
    // The computation-sharing variant must expand fewer vertices than the baseline.
    let (_, basic_stats) =
        BatchEngine::with_algorithm(Algorithm::BasicEnum).run_counting(&g, &queries);
    assert!(
        stats.counters.expanded_vertices <= basic_stats.counters.expanded_vertices,
        "BatchEnum expanded {} vertices, BasicEnum {}",
        stats.counters.expanded_vertices,
        basic_stats.counters.expanded_vertices
    );
}
