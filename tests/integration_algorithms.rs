//! Cross-crate integration tests: every algorithm in the workspace — the five evaluated
//! variants plus the two adapted KSP comparators — must return exactly the same result
//! sets as the brute-force reference enumerator, on structured graphs, random graphs and
//! dataset analogs.

use hcsp::baselines::{DkSp, KspEnumerator, OnePass};
use hcsp::core::bruteforce::{canonical, enumerate_reference};
use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};
use hcsp_graph::generators::erdos_renyi::gnm_random;
use hcsp_graph::generators::regular::{complete, cycle, grid, layered_dag};

/// Runs a batch through one engine algorithm and returns per-query canonical path lists.
fn run_engine(graph: &DiGraph, queries: &[PathQuery], algorithm: Algorithm) -> Vec<Vec<Path>> {
    let outcome = BatchEngine::with_algorithm(algorithm).run(graph, queries);
    outcome
        .paths
        .iter()
        .map(|set| canonical(set.to_paths()))
        .collect()
}

/// Runs a batch through one KSP comparator and returns per-query canonical path lists.
fn run_ksp<E: KspEnumerator>(graph: &DiGraph, queries: &[PathQuery], algo: &E) -> Vec<Vec<Path>> {
    let mut sink = CollectSink::new(queries.len());
    algo.run_batch(graph, queries, &mut sink);
    (0..queries.len())
        .map(|i| canonical(sink.paths(i).to_paths()))
        .collect()
}

/// Asserts that every algorithm agrees with the brute-force reference on this batch.
fn assert_all_algorithms_agree(graph: &DiGraph, queries: &[PathQuery]) {
    let reference: Vec<Vec<Path>> = queries
        .iter()
        .map(|q| canonical(enumerate_reference(graph, q)))
        .collect();

    for algorithm in Algorithm::ALL {
        let got = run_engine(graph, queries, algorithm);
        assert_eq!(got, reference, "{algorithm} disagrees with the reference");
    }
    assert_eq!(
        run_ksp(graph, queries, &DkSp::default()),
        reference,
        "DkSP disagrees"
    );
    assert_eq!(
        run_ksp(graph, queries, &OnePass::default()),
        reference,
        "OnePass disagrees"
    );
}

#[test]
fn all_algorithms_agree_on_structured_graphs() {
    let dag = layered_dag(3, 3);
    let dag_sink = (dag.num_vertices() - 1) as u32;
    assert_all_algorithms_agree(
        &dag,
        &[
            PathQuery::new(0u32, dag_sink, 4),
            PathQuery::new(0u32, dag_sink, 6),
            PathQuery::new(1u32, dag_sink, 3),
        ],
    );

    let g = grid(4, 4);
    assert_all_algorithms_agree(
        &g,
        &[
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(0u32, 15u32, 8),
            PathQuery::new(1u32, 14u32, 6),
            PathQuery::new(4u32, 11u32, 4),
        ],
    );

    let k6 = complete(6);
    assert_all_algorithms_agree(
        &k6,
        &[
            PathQuery::new(0u32, 5u32, 3),
            PathQuery::new(1u32, 5u32, 3),
            PathQuery::new(0u32, 4u32, 4),
        ],
    );

    let c8 = cycle(8);
    assert_all_algorithms_agree(
        &c8,
        &[
            PathQuery::new(0u32, 5u32, 7),
            PathQuery::new(2u32, 1u32, 8),
            PathQuery::new(3u32, 3u32, 4),
        ],
    );
}

#[test]
fn all_algorithms_agree_on_random_graphs() {
    for seed in 0..3u64 {
        let g = gnm_random(60, 300, seed).unwrap();
        let queries = vec![
            PathQuery::new(0u32, 30u32, 4),
            PathQuery::new(0u32, 31u32, 5),
            PathQuery::new(1u32, 30u32, 4),
            PathQuery::new(2u32, 45u32, 5),
        ];
        assert_all_algorithms_agree(&g, &queries);
    }
}

#[test]
fn engine_algorithms_agree_on_dataset_analogs() {
    // The KSP comparators are too slow for the larger analogs; the five engine algorithms
    // must still agree with each other (counts) and with the reference on a subsample.
    for dataset in [Dataset::EP, Dataset::WT, Dataset::BS] {
        let graph = dataset.build(DatasetScale::Tiny);
        let queries = hcsp::workload::random_query_set(
            &graph,
            hcsp::workload::QuerySetSpec::new(12, 5).with_hops(3, 4),
        );
        assert!(!queries.is_empty());

        let reference: Vec<u64> = BatchEngine::with_algorithm(Algorithm::PathEnum)
            .run_counting(&graph, &queries)
            .0;
        for algorithm in [
            Algorithm::BasicEnum,
            Algorithm::BasicEnumPlus,
            Algorithm::BatchEnum,
            Algorithm::BatchEnumPlus,
        ] {
            let (counts, _) = BatchEngine::with_algorithm(algorithm).run_counting(&graph, &queries);
            assert_eq!(counts, reference, "{dataset}: {algorithm} count mismatch");
        }

        // Spot-check three queries against the brute-force reference.
        for q in queries.iter().take(3) {
            let expected = enumerate_reference(&graph, q).len() as u64;
            let (counts, _) =
                BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run_counting(&graph, &[*q]);
            assert_eq!(counts[0], expected, "{dataset}: {q}");
        }
    }
}

#[test]
fn duplicated_and_overlapping_queries_are_handled() {
    let g = grid(5, 5);
    let queries = vec![
        PathQuery::new(0u32, 24u32, 8),
        PathQuery::new(0u32, 24u32, 8),
        PathQuery::new(0u32, 24u32, 9),
        PathQuery::new(1u32, 24u32, 7),
        PathQuery::new(0u32, 23u32, 7),
    ];
    assert_all_algorithms_agree(&g, &queries);
}

#[test]
fn unreachable_and_trivial_queries_are_handled() {
    let g = layered_dag(2, 2);
    let sink_v = (g.num_vertices() - 1) as u32;
    let queries = vec![
        // Unreachable: sink cannot reach source.
        PathQuery::new(sink_v, 0u32, 6),
        // Hop limit too small.
        PathQuery::new(0u32, sink_v, 1),
        // Trivial s == t.
        PathQuery::new(1u32, 1u32, 4),
        // Normal query mixed in.
        PathQuery::new(0u32, sink_v, 3),
    ];
    assert_all_algorithms_agree(&g, &queries);
}

#[test]
fn hop_limit_edge_cases() {
    let k5 = complete(5);
    // k = 1 (direct edges only) exercises the ⌊k/2⌋ = 0 backward budget.
    assert_all_algorithms_agree(
        &k5,
        &[
            PathQuery::new(0u32, 1u32, 1),
            PathQuery::new(0u32, 2u32, 2),
            PathQuery::new(3u32, 4u32, 1),
        ],
    );
}
