//! Seeded-determinism smoke tests for the four graph generator families.
//!
//! The workspace's RNG stack (the vendored `rand` with `StdRng`) promises that
//! a fixed seed produces a byte-for-byte identical stream; these tests pin the
//! consequence the rest of the system depends on — same seed, same graph —
//! plus the basic shape guarantees each generator documents. Benchmarks,
//! dataset analogs, and the regression suites all assume this reproducibility.

use hcsp::graph::generators::erdos_renyi::{gnm_random, gnp_random};
use hcsp::graph::generators::preferential::{preferential_attachment, PreferentialConfig};
use hcsp::graph::generators::small_world::small_world;
use hcsp::prelude::*;

fn edge_list(g: &DiGraph) -> Vec<(u32, u32)> {
    g.edges().map(|(u, v)| (u.raw(), v.raw())).collect()
}

#[test]
fn erdos_renyi_gnm_is_seed_deterministic_and_in_spec() {
    let a = gnm_random(120, 600, 2024).unwrap();
    let b = gnm_random(120, 600, 2024).unwrap();
    let other = gnm_random(120, 600, 2025).unwrap();

    assert_eq!(
        edge_list(&a),
        edge_list(&b),
        "same seed must give identical edge lists"
    );
    assert_ne!(
        edge_list(&a),
        edge_list(&other),
        "different seeds should diverge"
    );

    assert_eq!(a.num_vertices(), 120);
    // Parallel draws collapse in CSR construction, so the count may dip
    // slightly below the request but never exceed it.
    assert!(
        a.num_edges() <= 600 && a.num_edges() > 500,
        "edges = {}",
        a.num_edges()
    );
    assert!(
        a.edges().all(|(u, v)| u != v),
        "G(n,m) must not contain self loops"
    );
}

#[test]
fn erdos_renyi_gnp_is_seed_deterministic_and_in_spec() {
    let a = gnp_random(80, 0.05, 7).unwrap();
    let b = gnp_random(80, 0.05, 7).unwrap();
    let other = gnp_random(80, 0.05, 8).unwrap();

    assert_eq!(edge_list(&a), edge_list(&b));
    assert_ne!(edge_list(&a), edge_list(&other));

    assert_eq!(a.num_vertices(), 80);
    // Binomial(80*79, 0.05) has mean 316 and sigma ~17.3; +/- 6 sigma bounds
    // make a false failure astronomically unlikely while still catching a
    // broken probability mapping.
    let edges = a.num_edges();
    assert!(
        (212..=420).contains(&edges),
        "edges = {edges} far from E = 316"
    );
    assert!(a.edges().all(|(u, v)| u != v));
}

#[test]
fn preferential_attachment_is_seed_deterministic_and_in_spec() {
    let config = PreferentialConfig {
        num_vertices: 300,
        edges_per_vertex: 4,
        reciprocity: 0.3,
        seed: 99,
    };
    let a = preferential_attachment(config).unwrap();
    let b = preferential_attachment(config).unwrap();
    let other = preferential_attachment(PreferentialConfig {
        seed: 100,
        ..config
    })
    .unwrap();

    assert_eq!(edge_list(&a), edge_list(&b));
    assert_ne!(edge_list(&a), edge_list(&other));

    assert_eq!(a.num_vertices(), 300);
    // Every arriving vertex contributes up to `edges_per_vertex` out-edges
    // plus reciprocal edges with probability 0.3; duplicates collapse.
    let max_edges = 300 * 4 * 2;
    assert!(
        a.num_edges() > 300 && a.num_edges() <= max_edges,
        "edges = {}",
        a.num_edges()
    );
    assert!(a.edges().all(|(u, v)| u != v));
}

#[test]
fn small_world_is_seed_deterministic_and_in_spec() {
    let a = small_world(150, 4, 0.2, 5).unwrap();
    let b = small_world(150, 4, 0.2, 5).unwrap();
    let other = small_world(150, 4, 0.2, 6).unwrap();

    assert_eq!(edge_list(&a), edge_list(&b));
    assert_ne!(edge_list(&a), edge_list(&other));

    assert_eq!(a.num_vertices(), 150);
    // The ring lattice places exactly n*k edges; rewiring can only collapse
    // duplicates, never add.
    assert!(
        a.num_edges() <= 150 * 4 && a.num_edges() > 150 * 3,
        "edges = {}",
        a.num_edges()
    );
    assert!(
        a.edges().all(|(u, v)| u != v),
        "rewiring must not create self loops"
    );
}

#[test]
fn zero_beta_small_world_is_exactly_the_ring_lattice() {
    // With no rewiring the generator is fully structural: no randomness should
    // leak into the output at all, whatever the seed.
    let a = small_world(40, 3, 0.0, 1).unwrap();
    let b = small_world(40, 3, 0.0, 999).unwrap();
    assert_eq!(edge_list(&a), edge_list(&b));
    assert_eq!(a.num_edges(), 40 * 3);
}

#[test]
fn generator_streams_are_independent_of_call_order() {
    // Each generator seeds its own StdRng, so interleaving calls must not
    // perturb any of them (a regression here would mean hidden global state).
    let solo = gnm_random(60, 200, 11).unwrap();
    let _noise = small_world(30, 2, 0.5, 77).unwrap();
    let _more_noise = gnp_random(25, 0.2, 78).unwrap();
    let interleaved = gnm_random(60, 200, 11).unwrap();
    assert_eq!(edge_list(&solo), edge_list(&interleaved));
}
