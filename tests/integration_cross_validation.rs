//! Deterministic cross-validation: every `Algorithm::ALL` variant against the
//! brute-force reference on small fixed graphs.
//!
//! `tests/prop_correctness.rs` covers the same invariant over *sampled* graphs;
//! this suite pins a handful of hand-picked topologies (diamond, cycle, layered
//! DAG, disconnected pair) with exact expected results, so a regression in any
//! engine shows up on every run regardless of proptest's sampling, seeds, or
//! case-count configuration.

use hcsp::core::bruteforce::{canonical, enumerate_reference};
use hcsp::prelude::*;

/// One named fixture: a graph plus a batch of queries exercising it.
struct Fixture {
    name: &'static str,
    graph: DiGraph,
    queries: Vec<PathQuery>,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        // Two parallel 2-hop branches plus a direct edge: multiple paths per
        // query, and hop limits that include/exclude the long way round.
        Fixture {
            name: "diamond",
            graph: DiGraph::from_edge_list(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap(),
            queries: vec![
                PathQuery::new(0u32, 3u32, 1),
                PathQuery::new(0u32, 3u32, 2),
                PathQuery::new(0u32, 3u32, 4),
                PathQuery::new(3u32, 0u32, 4),
                PathQuery::new(1u32, 2u32, 4),
            ],
        },
        // A directed 6-cycle: exactly one simple path between any ordered pair,
        // admissible only when the hop budget covers the distance around.
        Fixture {
            name: "cycle",
            graph: DiGraph::from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap(),
            queries: vec![
                PathQuery::new(0u32, 3u32, 2),
                PathQuery::new(0u32, 3u32, 3),
                PathQuery::new(0u32, 3u32, 6),
                PathQuery::new(2u32, 1u32, 5),
            ],
        },
        // A 3x3 layered DAG: path counts multiply across layers, no cycles to
        // prune, and backward queries must return nothing.
        Fixture {
            name: "layered-dag",
            graph: DiGraph::from_edge_list(
                9,
                &[
                    (0, 3),
                    (0, 4),
                    (1, 3),
                    (1, 5),
                    (2, 4),
                    (2, 5),
                    (3, 6),
                    (3, 7),
                    (4, 7),
                    (4, 8),
                    (5, 6),
                    (5, 8),
                ],
            )
            .unwrap(),
            queries: vec![
                PathQuery::new(0u32, 7u32, 2),
                PathQuery::new(0u32, 8u32, 2),
                PathQuery::new(1u32, 6u32, 3),
                PathQuery::new(6u32, 0u32, 4),
            ],
        },
        // Two components (a triangle and an edge): cross-component queries have
        // no result, in-component ones do.
        Fixture {
            name: "disconnected",
            graph: DiGraph::from_edge_list(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap(),
            queries: vec![
                PathQuery::new(0u32, 2u32, 3),
                PathQuery::new(0u32, 4u32, 4),
                PathQuery::new(3u32, 4u32, 1),
                PathQuery::new(4u32, 3u32, 4),
            ],
        },
    ]
}

#[test]
fn every_algorithm_matches_brute_force_on_fixed_graphs() {
    for fixture in fixtures() {
        let reference: Vec<Vec<Path>> = fixture
            .queries
            .iter()
            .map(|q| canonical(enumerate_reference(&fixture.graph, q)))
            .collect();
        for algorithm in Algorithm::ALL {
            let outcome =
                BatchEngine::with_algorithm(algorithm).run(&fixture.graph, &fixture.queries);
            let got: Vec<Vec<Path>> = outcome
                .paths
                .iter()
                .map(|set| canonical(set.to_paths()))
                .collect();
            assert_eq!(
                got, reference,
                "algorithm {algorithm} diverges from brute force on fixture {}",
                fixture.name
            );
        }
    }
}

#[test]
fn fixture_path_counts_are_the_hand_checked_values() {
    // Pin the reference itself: if `enumerate_reference` regresses, the
    // cross-validation above would compare garbage to garbage.
    let all = fixtures();
    let counts = |f: &Fixture| -> Vec<usize> {
        f.queries
            .iter()
            .map(|q| enumerate_reference(&f.graph, q).len())
            .collect()
    };

    // Diamond: k=1 admits the direct edge only; k=2 adds both 2-hop branches;
    // k=4 adds nothing (no more simple paths exist); reverse and 1 -> 2: none.
    assert_eq!(counts(&all[0]), vec![1, 3, 3, 0, 0]);
    // Cycle: 0 -> 3 has distance 3 (so k=2 finds nothing and there is exactly
    // one simple path); 2 -> 1 needs all 5 remaining arcs.
    assert_eq!(counts(&all[1]), vec![0, 1, 1, 1]);
    // Layered DAG: 0 -> 7 via 3 or 4; 0 -> 8 via 4 only; 1 -> 6 via 3 or 5; a
    // DAG has no backward paths.
    assert_eq!(counts(&all[2]), vec![2, 1, 2, 0]);
    // Disconnected: in-component hits, cross-component misses.
    assert_eq!(counts(&all[3]), vec![1, 0, 1, 0]);
}

#[test]
fn algorithms_agree_on_empty_and_singleton_batches() {
    let graph = DiGraph::from_edge_list(3, &[(0, 1), (1, 2)]).unwrap();
    for algorithm in Algorithm::ALL {
        let outcome = BatchEngine::with_algorithm(algorithm).run(&graph, &[]);
        assert_eq!(outcome.paths.len(), 0, "{algorithm} on the empty batch");

        let queries = vec![PathQuery::new(0u32, 2u32, 2)];
        let outcome = BatchEngine::with_algorithm(algorithm).run(&graph, &queries);
        assert_eq!(outcome.count(0), 1, "{algorithm} on a singleton batch");
    }
}
