//! Crash-matrix recovery tests: kill the filesystem at every interesting point of a
//! durable service's life and prove recovery serves a consistent acknowledged prefix.
//!
//! Each matrix cell runs the same deterministic scenario — create a durable
//! [`PathService`] on a [`FailpointFs`], feed it a seeded update-batch sequence with
//! explicit checkpoints at fixed positions — with the filesystem armed to die at one
//! [`KillPoint`]. The post-crash image (under both [`CrashModel`]s) is reopened and the
//! recovered service is interrogated with a seeded reference query set; answers must be
//! **identical** (`PathSet` equality, i.e. the same paths in the same order) to a
//! never-crashed twin serving the prefix of batches recovery reported.
//!
//! Invariants every cell asserts:
//!
//! 1. *Recovery succeeds* whenever the store finished `create`; only a kill inside
//!    `create` itself may leave an unopenable directory (and then nothing was acked).
//! 2. *Prefix property*: the recovered batch count `r` never exceeds the acked count
//!    plus the single possibly-in-flight batch, and the recovered graph is exactly the
//!    fold of the first `r` batches — via the query oracle, not a structural shortcut.
//! 3. *Durability floor*: `r` is at least what the fsync policy promised — every acked
//!    batch under `Always` (or whenever the page cache survived), every checkpointed
//!    batch otherwise.
//!
//! The sweep honours two environment variables so CI can rotate coverage:
//! `HCSP_RECOVERY_SEED` reseeds the whole scenario, `HCSP_RECOVERY_DENSE=1` widens the
//! byte-granular sweep. On any failure the crash image is dumped to
//! `target/recovery-failure/` (uploaded as a CI artifact) next to a `repro.txt` naming
//! the exact cell.

use hcsp::core::{Algorithm, BatchEngine};
use hcsp::prelude::{
    BatchPolicy, DiGraph, DurabilityOptions, FsyncPolicy, PathService, PathServiceBuilder,
};
use hcsp::storage::{CrashModel, FailpointFs, KillPoint};
use hcsp::workload::{
    recovery_workload, state_after, Dataset, DatasetScale, RecoveryWorkload, RecoveryWorkloadSpec,
};
use std::time::Duration;

/// Explicit checkpoints after these acked-batch counts: the sweep thereby crosses every
/// phase of a checkpoint (WAL rotation, snapshot write, manifest swap, GC) twice.
const CHECKPOINT_AFTER: [usize; 2] = [2, 4];

fn seed() -> u64 {
    std::env::var("HCSP_RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn dense() -> bool {
    std::env::var("HCSP_RECOVERY_DENSE").is_ok_and(|v| v != "0" && !v.is_empty())
}

struct Scenario {
    graph: DiGraph,
    workload: RecoveryWorkload,
}

fn scenario() -> Scenario {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let workload = recovery_workload(&graph, RecoveryWorkloadSpec::seeded(seed()));
    assert!(
        !workload.batches.is_empty() && !workload.queries.is_empty(),
        "the scenario graph must admit a non-degenerate workload"
    );
    Scenario { graph, workload }
}

/// One deterministic service configuration: single worker, per-query batches, no
/// background compactor — so the stream of filesystem operations is a pure function of
/// the driver below, and `KillPoint::Op(n)` means the same operation in every run.
fn durable_builder(fsync: FsyncPolicy, algorithm: Algorithm) -> PathServiceBuilder {
    PathService::builder()
        .engine(BatchEngine::with_algorithm(algorithm))
        .workers(1)
        .policy(BatchPolicy::immediate())
        .durability(durable_options(fsync))
}

/// The matrix's durability options minus a backend (`open_vfs` supplies the image).
fn durable_options(fsync: FsyncPolicy) -> DurabilityOptions {
    DurabilityOptions::default()
        .fsync(fsync)
        .compact_tail_bytes(u64::MAX)
        .compact_check_interval(Duration::from_millis(5))
}

/// The same options bound to a live [`FailpointFs`], for creating a fresh store on it.
fn durable_vfs_options(fsync: FsyncPolicy, fs: &FailpointFs) -> DurabilityOptions {
    DurabilityOptions::vfs(fs.as_vfs())
        .fsync(fsync)
        .compact_tail_bytes(u64::MAX)
        .compact_check_interval(Duration::from_millis(5))
}

/// What the driver observed before the filesystem (possibly) died.
struct DriveLog {
    /// Whether the durable `start` (the store `create`) succeeded.
    create_ok: bool,
    /// Batches whose `UpdateHandle` resolved `Ok` — the acknowledged prefix.
    acked: usize,
    /// Acked batches covered by the last checkpoint that committed before the kill.
    checkpointed: usize,
}

/// Feeds the scenario into a durable service on `fs`, stopping at the first failure
/// (the armed kill). Every batch is awaited before the next is submitted, so the
/// acked prefix is exact and the op stream is deterministic.
fn drive(fs: &FailpointFs, fsync: FsyncPolicy, algorithm: Algorithm, sc: &Scenario) -> DriveLog {
    let service = match durable_builder(fsync, algorithm)
        .durability(durable_vfs_options(fsync, fs))
        .start(sc.graph.clone())
    {
        Ok(service) => service,
        Err(_) => {
            return DriveLog {
                create_ok: false,
                acked: 0,
                checkpointed: 0,
            }
        }
    };
    let mut log = DriveLog {
        create_ok: true,
        acked: 0,
        checkpointed: 0,
    };
    for (i, batch) in sc.workload.batches.iter().enumerate() {
        if service.update(batch.clone()).wait_result().is_err() {
            break;
        }
        log.acked = i + 1;
        if CHECKPOINT_AFTER.contains(&(i + 1)) {
            match service.checkpoint() {
                Ok(true) => log.checkpointed = i + 1,
                Ok(false) => {}
                Err(_) => break,
            }
        }
    }
    service.shutdown();
    log
}

/// The smallest recovered-batch count the matrix cell's policy promises.
fn durability_floor(
    model: CrashModel,
    fsync: FsyncPolicy,
    log: &DriveLog,
    fs_survived: bool,
) -> usize {
    if !log.create_ok {
        return 0;
    }
    // If the kill never fired, shutdown's final sync made everything acked durable; if
    // the page cache survived (`KeepAll`), the mere append (which an ack implies) did.
    if fs_survived || model == CrashModel::KeepAll {
        return log.acked;
    }
    match fsync {
        FsyncPolicy::Always => log.acked,
        // Sync points land on multiples of N (checkpoints sit on multiples too, and
        // both rotation and the policy counter sync-and-reset there).
        FsyncPolicy::EveryN(n) => {
            let n = n.max(1) as usize;
            log.checkpointed.max(log.acked - log.acked % n)
        }
        FsyncPolicy::Never => log.checkpointed,
    }
}

/// Dumps the crash image for post-mortem and fails the test with the cell's repro line.
fn fail(image: &FailpointFs, case: &str, msg: &str) -> ! {
    let dir = std::path::Path::new("target").join("recovery-failure");
    let dumped = image.dump_to(&dir);
    let _ = std::fs::write(dir.join("repro.txt"), format!("{case}\n{msg}\n"));
    panic!(
        "[recovery-matrix {case}] {msg}; crash image dump to {}: {dumped:?}",
        dir.display()
    );
}

/// Reopens the crash image and checks the three invariants of the module doc, using a
/// never-crashed twin service as the answer oracle.
fn verify_recovery(
    fs: &FailpointFs,
    model: CrashModel,
    fsync: FsyncPolicy,
    algorithm: Algorithm,
    sc: &Scenario,
    log: &DriveLog,
    case: &str,
) {
    let fs_survived = !fs.is_dead();
    let image = fs.crash(model);
    let recovered = match durable_builder(fsync, algorithm).open_vfs(image.as_vfs()) {
        Ok(service) => service,
        Err(e) => {
            if log.create_ok {
                fail(
                    &image,
                    case,
                    &format!("open failed after a completed create: {e}"),
                );
            }
            return; // killed inside create: no store, and nothing was ever acked
        }
    };
    let report = recovered
        .recovery()
        .expect("opened service carries a report");
    let r = report.snapshot_batches as usize + report.replayed_batches;

    let ceiling = (log.acked + 1).min(sc.workload.batches.len());
    if r > ceiling {
        fail(
            &image,
            case,
            &format!(
                "recovered {r} batches but only {} were acked (+1 in flight)",
                log.acked
            ),
        );
    }
    let floor = durability_floor(model, fsync, log, fs_survived);
    if r < floor {
        fail(
            &image,
            case,
            &format!("recovered only {r} batches; the policy guarantees {floor}"),
        );
    }

    // The oracle: a twin serving the fold of exactly the first `r` batches must answer
    // the whole reference query set identically, paths and order included.
    let expected = state_after(&sc.graph, &sc.workload.batches, r);
    let twin = PathService::builder()
        .engine(BatchEngine::with_algorithm(algorithm))
        .workers(1)
        .policy(BatchPolicy::immediate())
        .start(expected)
        .unwrap();
    for query in &sc.workload.queries {
        let got = recovered.submit(*query).wait().paths;
        let want = twin.submit(*query).wait().paths;
        if got != want {
            fail(
                &image,
                case,
                &format!(
                    "answers diverge for {query} on the {r}-batch prefix: \
                     recovered {} paths, twin {}",
                    got.len(),
                    want.len()
                ),
            );
        }
    }
    twin.shutdown();
    recovered.shutdown();
}

/// Runs one full matrix cell: arm the kill, drive, crash under `model`, verify.
fn run_cell(kill: KillPoint, model: CrashModel, fsync: FsyncPolicy, sc: &Scenario) {
    let algorithm = Algorithm::BatchEnumPlus;
    let fs = FailpointFs::new();
    fs.set_kill(kill);
    let log = drive(&fs, fsync, algorithm, sc);
    let case = format!(
        "seed={:#x} fsync={fsync:?} kill={kill:?} model={model:?}",
        seed()
    );
    verify_recovery(&fs, model, fsync, algorithm, sc, &log, &case);
}

/// Profiles the total mutating-op count of the scenario under `fsync` (no kill).
fn profile_ops(fsync: FsyncPolicy, sc: &Scenario) -> u64 {
    let fs = FailpointFs::new();
    let log = drive(&fs, fsync, Algorithm::BatchEnumPlus, sc);
    assert!(log.create_ok, "profile run must not fail");
    assert_eq!(
        log.acked,
        sc.workload.batches.len(),
        "profile run acks everything"
    );
    fs.ops()
}

/// Profiles the total written-byte count of the scenario under `fsync` (no kill).
fn profile_bytes(fsync: FsyncPolicy, sc: &Scenario) -> u64 {
    let fs = FailpointFs::new();
    drive(&fs, fsync, Algorithm::BatchEnumPlus, sc);
    fs.bytes_written()
}

/// The op-granular matrix: every mutating filesystem operation of the scenario's life —
/// store creation, each WAL append and fsync, both checkpoints (rotation, snapshot,
/// manifest swap, GC) and the shutdown sync — is killed once, under every crash model
/// and fsync policy.
#[test]
fn op_kill_matrix_recovers_a_consistent_acked_prefix() {
    let sc = scenario();
    for fsync in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(2),
        FsyncPolicy::Never,
    ] {
        let total_ops = profile_ops(fsync, &sc);
        assert!(
            total_ops > 20,
            "the scenario must exercise a non-trivial op stream"
        );
        for op in 1..=total_ops {
            for model in [CrashModel::DropUnsynced, CrashModel::KeepAll] {
                run_cell(KillPoint::Op(op), model, fsync, &sc);
            }
        }
    }
}

/// The byte-granular sweep: tear writes mid-frame and mid-snapshot at a stride of
/// byte offsets across the whole written stream (every offset is near-reachable in
/// dense mode), under both crash models. Torn WAL frames must truncate to the longest
/// valid prefix, torn snapshot tmp files must be garbage, never state.
#[test]
fn byte_kill_sweep_recovers_a_consistent_prefix() {
    let sc = scenario();
    let fsync = FsyncPolicy::Always;
    let total_bytes = profile_bytes(fsync, &sc);
    assert!(
        total_bytes > 256,
        "the scenario must write a non-trivial byte stream"
    );
    let stride = if dense() {
        (total_bytes / 512).max(1)
    } else {
        (total_bytes / 48).max(1)
    };
    let mut cut = 0;
    while cut <= total_bytes {
        for model in [CrashModel::DropUnsynced, CrashModel::KeepAll] {
            run_cell(KillPoint::WriteByte(cut), model, fsync, &sc);
        }
        // Also probe the off-by-one neighbour of each stride point: frame and header
        // boundaries are the bug-rich offsets.
        for model in [CrashModel::DropUnsynced, CrashModel::KeepAll] {
            run_cell(KillPoint::WriteByte(cut + 1), model, fsync, &sc);
        }
        cut += stride;
    }
}

/// Every one of the five evaluated algorithms answers identically after recovery — the
/// recovered service is compared against a *literal* never-crashed durable twin (same
/// storage stack, same batches, no kill), not just a state fold.
#[test]
fn all_five_algorithms_agree_after_recovery() {
    let sc = scenario();
    let fsync = FsyncPolicy::Always;
    // Kill two ops past the mid-scenario profile point: inside the post-checkpoint
    // append region, with both a snapshot and a live tail to recover from.
    let kill_op = profile_ops(fsync, &sc) * 2 / 3;
    for algorithm in Algorithm::ALL {
        let fs = FailpointFs::new();
        fs.set_kill(KillPoint::Op(kill_op));
        let log = drive(&fs, fsync, algorithm, &sc);
        let case = format!(
            "seed={:#x} algorithm={algorithm} fsync={fsync:?} kill=Op({kill_op}) model=KeepAll",
            seed()
        );
        let image = fs.crash(CrashModel::KeepAll);
        let recovered = durable_builder(fsync, algorithm)
            .open_vfs(image.as_vfs())
            .unwrap_or_else(|e| fail(&image, &case, &format!("open failed: {e}")));
        let report = recovered
            .recovery()
            .expect("recovered service carries a report");
        let r = report.snapshot_batches as usize + report.replayed_batches;
        assert!(r >= log.acked, "{case}: acked batches lost");

        // The literal twin: a second durable service that lives the same life minus
        // the crash, checkpointing at the same positions, fed exactly `r` batches.
        let twin_fs = FailpointFs::new();
        let twin = durable_builder(fsync, algorithm)
            .durability(durable_vfs_options(fsync, &twin_fs))
            .start(sc.graph.clone())
            .expect("twin create");
        for (i, batch) in sc.workload.batches[..r].iter().enumerate() {
            twin.update(batch.clone()).wait();
            if CHECKPOINT_AFTER.contains(&(i + 1)) {
                twin.checkpoint().expect("twin checkpoint");
            }
        }
        for query in &sc.workload.queries {
            let got = recovered.submit(*query).wait().paths;
            let want = twin.submit(*query).wait().paths;
            if got != want {
                fail(&image, &case, &format!("answers diverge for {query}"));
            }
        }
        twin.shutdown();
        recovered.shutdown();
    }
}

/// A crash while the *background* compactor is enabled (tiny threshold, so it runs
/// eagerly) still recovers a consistent prefix: whatever mix of snapshots and tails the
/// compactor left behind, the page-cache-survived image must replay every acked batch.
#[test]
fn crash_with_background_compaction_active_recovers_every_acked_batch() {
    let sc = scenario();
    let fs = FailpointFs::new();
    let service = PathService::builder()
        .workers(1)
        .policy(BatchPolicy::immediate())
        .durability(
            DurabilityOptions::vfs(fs.as_vfs())
                .fsync(FsyncPolicy::Always)
                .compact_tail_bytes(1)
                .compact_check_interval(Duration::from_millis(1)),
        )
        .start(sc.graph.clone())
        .expect("create");
    for batch in &sc.workload.batches {
        service.update(batch.clone()).wait();
    }
    // Snapshot the image mid-flight — the compactor may be between any two of its
    // operations right now, which is the point: `crash` is an any-moment power cut.
    let image = fs.crash(CrashModel::KeepAll);
    let case = format!("seed={:#x} background-compaction crash", seed());
    drop(service); // the original service keeps running against `fs`; now stop it

    let recovered = durable_builder(FsyncPolicy::Always, Algorithm::BatchEnumPlus)
        .open_vfs(image.as_vfs())
        .unwrap_or_else(|e| fail(&image, &case, &format!("open failed: {e}")));
    let report = recovered
        .recovery()
        .expect("recovered service carries a report");
    let r = report.snapshot_batches as usize + report.replayed_batches;
    if r != sc.workload.batches.len() {
        fail(
            &image,
            &case,
            &format!(
                "all {} batches were acked+fsynced, recovered {r}",
                sc.workload.batches.len()
            ),
        );
    }
    let expected = state_after(&sc.graph, &sc.workload.batches, r);
    let twin = PathService::builder()
        .workers(1)
        .policy(BatchPolicy::immediate())
        .start(expected)
        .unwrap();
    for query in &sc.workload.queries {
        let got = recovered.submit(*query).wait().paths;
        let want = twin.submit(*query).wait().paths;
        if got != want {
            fail(&image, &case, &format!("answers diverge for {query}"));
        }
    }
    twin.shutdown();
    recovered.shutdown();
}

/// The sweep machinery itself is sound: a no-kill cell is a real end-to-end round trip
/// (everything acked, everything recovered, zero drops) — guarding against the matrix
/// silently passing because `drive` never got off the ground.
#[test]
fn the_unkilled_cell_recovers_everything_exactly() {
    let sc = scenario();
    for fsync in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(2),
        FsyncPolicy::Never,
    ] {
        let fs = FailpointFs::new();
        let log = drive(&fs, fsync, Algorithm::BatchEnumPlus, &sc);
        assert!(log.create_ok);
        assert_eq!(log.acked, sc.workload.batches.len());
        assert_eq!(log.checkpointed, *CHECKPOINT_AFTER.last().unwrap());
        for model in [CrashModel::DropUnsynced, CrashModel::KeepAll] {
            let image = fs.crash(model);
            let recovered = durable_builder(fsync, Algorithm::BatchEnumPlus)
                .open_vfs(image.as_vfs())
                .expect("clean shutdown image opens");
            let report = recovered.recovery().unwrap();
            assert_eq!(
                report.snapshot_batches as usize + report.replayed_batches,
                sc.workload.batches.len(),
                "{fsync:?}/{model:?}: clean shutdown loses nothing"
            );
            assert_eq!(
                report.dropped_bytes, 0,
                "{fsync:?}/{model:?}: nothing to drop"
            );
            assert!(report.torn_tail.is_none());
            recovered.shutdown();
        }
    }
}
