//! Property-based tests (proptest) over random graphs and random query batches.
//!
//! The central invariant: for any graph and any batch, every algorithm returns exactly the
//! brute-force reference result set. Secondary invariants cover the index, the similarity
//! measure, the clustering threshold, and the sharing graph structure.

use hcsp::core::bruteforce::{canonical, enumerate_reference};
use hcsp::core::clustering::cluster_queries;
use hcsp::core::detection::detect_cluster;
use hcsp::core::query::BatchSummary;
use hcsp::core::sharing_graph::{QueryNode, SharingGraph};
use hcsp::core::similarity::{query_similarity, QueryNeighborhood, SimilarityMatrix};
use hcsp::prelude::*;
use hcsp_graph::traversal::{bfs_distances_bounded, UNREACHED};
use proptest::prelude::*;

/// Strategy: a random directed graph with 2..=28 vertices and a moderate edge budget.
fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..=28).prop_flat_map(|n| {
        let max_edges = (n * (n - 1)).min(120);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| DiGraph::from_edge_list(n, &edges).expect("edges in range"))
    })
}

/// Strategy: a batch of 1..=6 queries on a graph with `n` vertices.
fn query_batch_strategy(n: usize) -> impl Strategy<Value = Vec<PathQuery>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=6), 1..=6).prop_map(|qs| {
        qs.into_iter()
            .map(|(s, t, k)| PathQuery::new(s, t, k))
            .collect()
    })
}

/// Strategy: a graph plus a query batch on it.
fn workload_strategy() -> impl Strategy<Value = (DiGraph, Vec<PathQuery>)> {
    graph_strategy().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), query_batch_strategy(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every algorithm returns exactly the brute-force result set for every query.
    #[test]
    fn algorithms_match_brute_force((graph, queries) in workload_strategy()) {
        let reference: Vec<Vec<Path>> =
            queries.iter().map(|q| canonical(enumerate_reference(&graph, q))).collect();
        for algorithm in Algorithm::ALL {
            let outcome = BatchEngine::with_algorithm(algorithm).run(&graph, &queries);
            let got: Vec<Vec<Path>> =
                outcome.paths.iter().map(|set| canonical(set.to_paths())).collect();
            prop_assert_eq!(&got, &reference, "algorithm {}", algorithm);
        }
    }

    /// Every returned path is simple, edge-valid, endpoint-correct and within the bound.
    #[test]
    fn returned_paths_are_well_formed((graph, queries) in workload_strategy()) {
        let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&graph, &queries);
        for (i, q) in queries.iter().enumerate() {
            for path in outcome.paths[i].iter() {
                prop_assert_eq!(path[0], q.source);
                prop_assert_eq!(*path.last().unwrap(), q.target);
                prop_assert!((path.len() - 1) as u32 <= q.hop_limit);
                prop_assert!(hcsp::core::path::vertices_are_distinct(path));
                for w in path.windows(2) {
                    prop_assert!(graph.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// The multi-source BFS index agrees with independent single-source BFS runs.
    #[test]
    fn index_distances_match_bfs((graph, queries) in workload_strategy()) {
        let summary = BatchSummary::of(&queries);
        let index = BatchIndex::build(&graph, &summary.sources, &summary.targets, summary.max_hop_limit);
        for &s in summary.sources.iter().take(3) {
            let reference = bfs_distances_bounded(&graph, s, Direction::Forward, summary.max_hop_limit);
            for v in graph.vertices() {
                let got = index.dist_from_source(s, v);
                let expected = reference[v.index()];
                if expected == UNREACHED {
                    prop_assert_eq!(got, u32::MAX);
                } else {
                    prop_assert_eq!(got, expected);
                }
            }
        }
    }

    /// µ is symmetric, bounded in [0, 1], and 1 on identical neighbourhoods.
    #[test]
    fn similarity_is_a_bounded_symmetric_measure((graph, queries) in workload_strategy()) {
        let summary = BatchSummary::of(&queries);
        let index = BatchIndex::build(&graph, &summary.sources, &summary.targets, summary.max_hop_limit);
        let neighborhoods: Vec<QueryNeighborhood> =
            queries.iter().map(|q| QueryNeighborhood::from_index(&index, q)).collect();
        for a in &neighborhoods {
            prop_assert!((query_similarity(a, a) - 1.0).abs() < 1e-9 || a.forward.is_empty() || a.backward.is_empty());
            for b in &neighborhoods {
                let ab = query_similarity(a, b);
                let ba = query_similarity(b, a);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
                prop_assert!((ab - ba).abs() < 1e-9);
            }
        }
    }

    /// Clustering respects the threshold: clusters returned at γ form a partition of the
    /// batch, and γ = 1 never merges anything.
    #[test]
    fn clustering_is_a_partition((graph, queries) in workload_strategy(), gamma in 0.0f64..=1.0) {
        let summary = BatchSummary::of(&queries);
        let index = BatchIndex::build(&graph, &summary.sources, &summary.targets, summary.max_hop_limit);
        let neighborhoods: Vec<QueryNeighborhood> =
            queries.iter().map(|q| QueryNeighborhood::from_index(&index, q)).collect();
        let matrix = SimilarityMatrix::compute(&neighborhoods);
        let clusters = cluster_queries(&matrix, gamma);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..queries.len()).collect();
        prop_assert_eq!(seen, expected, "clusters must partition the batch");

        let singletons = cluster_queries(&matrix, 1.0);
        prop_assert_eq!(singletons.len(), queries.len());
    }

    /// The sharing graph built by detection is a DAG whose full-query nodes have exactly
    /// their two half queries as providers.
    #[test]
    fn sharing_graph_is_a_dag_with_two_half_providers((graph, queries) in workload_strategy()) {
        let summary = BatchSummary::of(&queries);
        let index = BatchIndex::build(&graph, &summary.sources, &summary.targets, summary.max_hop_limit);
        let cluster: Vec<(usize, PathQuery)> = queries.iter().copied().enumerate().collect();
        let mut sharing = SharingGraph::new();
        detect_cluster(&graph, &index, &cluster, &mut sharing);

        // Topological order covers all nodes (i.e. no cycle) and places providers first.
        let order = sharing.topological_order();
        prop_assert_eq!(order.len(), sharing.len());
        let position: Vec<usize> = {
            let mut pos = vec![0; sharing.len()];
            for (i, &n) in order.iter().enumerate() {
                pos[n] = i;
            }
            pos
        };
        for (id, _) in sharing.nodes() {
            for &(provider, _) in sharing.providers(id) {
                prop_assert!(position[provider] < position[id]);
            }
        }
        for (id, node) in sharing.nodes() {
            if matches!(node, QueryNode::Full(_)) {
                prop_assert_eq!(sharing.providers(id).len(), 2);
                prop_assert!(sharing.users(id).is_empty());
            }
        }
    }
}
