//! Workload-level integration tests: dataset analogs, query generators and the
//! experiment-harness building blocks working together.

use hcsp::core::query::BatchSummary;
use hcsp::core::similarity::{QueryNeighborhood, SimilarityMatrix};
use hcsp::prelude::*;
use hcsp::workload::{random_query_set, similar_query_set, Dataset, DatasetScale, QuerySetSpec};
use hcsp_graph::traversal::reaches_within;
use hcsp_graph::GraphStats;

#[test]
fn every_dataset_analog_supports_the_default_workload() {
    for dataset in Dataset::ALL {
        let graph = dataset.build(DatasetScale::Tiny);
        let stats = GraphStats::compute(&graph);
        assert!(stats.num_edges > 0, "{dataset} must not be empty");

        let queries = random_query_set(&graph, QuerySetSpec::new(5, 23).with_hops(3, 4));
        assert!(
            !queries.is_empty(),
            "{dataset} must admit reachable query pairs"
        );
        for q in &queries {
            assert!(reaches_within(&graph, q.source, q.target, q.hop_limit));
        }
    }
}

#[test]
fn batch_engine_runs_on_every_smoke_dataset() {
    for dataset in Dataset::SMOKE {
        let graph = dataset.build(DatasetScale::Tiny);
        let queries = random_query_set(&graph, QuerySetSpec::new(10, 31).with_hops(3, 4));
        let (basic, _) =
            BatchEngine::with_algorithm(Algorithm::BasicEnumPlus).run_counting(&graph, &queries);
        let (batch, stats) =
            BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run_counting(&graph, &queries);
        assert_eq!(basic, batch, "{dataset}: result counts must agree");
        assert_eq!(stats.num_queries, queries.len());
    }
}

#[test]
fn similarity_controlled_sets_drive_more_sharing() {
    // Higher constructed similarity must translate into more computation sharing inside
    // BatchEnum (more shared sub-queries / cache splices), which is the mechanism behind
    // the Fig. 7 speed-ups.
    let graph = Dataset::WT.build(DatasetScale::Tiny);
    let spec = QuerySetSpec::new(20, 77).with_hops(3, 4);
    let low = similar_query_set(&graph, spec, 0.0);
    let high = similar_query_set(&graph, spec, 0.9);

    let shared = BatchEngine::builder()
        .algorithm(Algorithm::BatchEnumPlus)
        .gamma(0.5)
        .build();
    let unshared = BatchEngine::with_algorithm(Algorithm::BasicEnumPlus);
    let (_, stats_low) = shared.run_counting(&graph, &low);
    let (_, stats_high) = shared.run_counting(&graph, &high);

    assert!(
        stats_high.num_clusters <= stats_low.num_clusters.max(2),
        "high-similarity sets must cluster at least as aggressively: {} vs {}",
        stats_high.num_clusters,
        stats_low.num_clusters
    );

    // The real claim of Exp-1: relative to the non-sharing baseline on the *same* query
    // set, the shared algorithm saves a larger fraction of the traversal work when the
    // batch is more similar.
    let (_, base_low) = unshared.run_counting(&graph, &low);
    let (_, base_high) = unshared.run_counting(&graph, &high);
    let ratio_low = stats_low.counters.expanded_vertices as f64
        / base_low.counters.expanded_vertices.max(1) as f64;
    let ratio_high = stats_high.counters.expanded_vertices as f64
        / base_high.counters.expanded_vertices.max(1) as f64;
    assert!(
        ratio_high <= ratio_low * 1.05,
        "sharing must save relatively more work on the similar batch: {ratio_high:.3} vs {ratio_low:.3}"
    );
}

#[test]
fn measured_similarity_tracks_the_generator_knob() {
    let graph = hcsp_graph::generators::regular::grid(30, 30);
    let spec = QuerySetSpec::new(18, 5).with_hops(3, 4);
    let mut measured = Vec::new();
    for target in [0.0, 0.4, 0.8] {
        let queries = similar_query_set(&graph, spec, target);
        let summary = BatchSummary::of(&queries);
        let index = BatchIndex::build(
            &graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        let neighborhoods: Vec<QueryNeighborhood> = queries
            .iter()
            .map(|q| QueryNeighborhood::from_index(&index, q))
            .collect();
        measured.push(SimilarityMatrix::compute(&neighborhoods).average());
    }
    assert!(
        measured[0] < measured[1] && measured[1] < measured[2],
        "{measured:?}"
    );
}

#[test]
fn correctness_holds_on_similarity_controlled_batches() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let queries = similar_query_set(&graph, QuerySetSpec::new(12, 19).with_hops(3, 4), 0.7);
    let reference = BatchEngine::with_algorithm(Algorithm::PathEnum)
        .run_counting(&graph, &queries)
        .0;
    for algorithm in [
        Algorithm::BasicEnum,
        Algorithm::BatchEnum,
        Algorithm::BatchEnumPlus,
    ] {
        let (counts, _) = BatchEngine::with_algorithm(algorithm).run_counting(&graph, &queries);
        assert_eq!(counts, reference, "{algorithm}");
    }
}

#[test]
fn path_counts_grow_with_the_hop_constraint() {
    // The Exp-7 trend (Fig. 13): the average number of HC-s-t paths grows with k.
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let mut totals = Vec::new();
    for k in 3..=5u32 {
        let queries = random_query_set(&graph, QuerySetSpec::new(10, 41).with_hops(k, k));
        let (counts, _) =
            BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run_counting(&graph, &queries);
        totals.push(counts.iter().sum::<u64>());
    }
    assert!(
        totals[0] <= totals[1] && totals[1] <= totals[2],
        "{totals:?}"
    );
    assert!(totals[2] > 0);
}
