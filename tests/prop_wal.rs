//! Property-based tests of the WAL framing (proptest).
//!
//! The framing invariant the recovery protocol rests on: for **any** batch sequence and
//! **any** damage to the encoded byte stream — truncation at an arbitrary offset, a
//! single flipped bit — [`scan_wal`] either rejects the file (header damage) or returns
//! an *exact prefix* of the original batches. It never invents, reorders or alters a
//! batch, and it never resumes past damage: the CRC-framed log has no resynchronisation
//! points by design, because a "recovered" suffix with a missing middle would be a
//! wrong graph, not a conservative one.

use hcsp::graph::GraphUpdate;
use hcsp::storage::wal::{encode_frame, encode_wal_header, scan_wal, WAL_HEADER_LEN};
use proptest::prelude::*;

fn update_strategy() -> impl Strategy<Value = GraphUpdate> {
    (0u8..=1, 0u32..512, 0u32..512).prop_map(|(tag, u, v)| {
        if tag == 0 {
            GraphUpdate::insert(u, v)
        } else {
            GraphUpdate::delete(u, v)
        }
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<GraphUpdate>>> {
    proptest::collection::vec(proptest::collection::vec(update_strategy(), 1..=8), 1..=10)
}

/// Encodes a whole WAL file and returns the byte offsets of each frame boundary
/// (`boundaries[i]` = end of frame `i`; `boundaries` starts with the header end).
fn encode_wal(first_seq: u64, batches: &[Vec<GraphUpdate>]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = encode_wal_header(first_seq);
    let mut boundaries = vec![bytes.len()];
    for (i, batch) in batches.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(first_seq + i as u64, batch));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// An undamaged file round-trips exactly: every batch, in order, clean tail.
    #[test]
    fn undamaged_files_round_trip_exactly(
        first_seq in 0u64..1000,
        batches in batches_strategy(),
    ) {
        let (bytes, _) = encode_wal(first_seq, &batches);
        let scan = scan_wal(&bytes, Some(first_seq)).expect("intact file scans");
        prop_assert_eq!(&scan.batches, &batches);
        prop_assert_eq!(scan.first_seq, first_seq);
        prop_assert_eq!(scan.valid_len, bytes.len() as u64);
        prop_assert_eq!(scan.next_seq(), first_seq + batches.len() as u64);
        prop_assert!(scan.torn.is_none());
    }

    /// Truncation at *any* offset yields exactly the frames that fit whole: the prefix
    /// up to the last boundary at or before the cut, torn iff the cut is mid-frame.
    #[test]
    fn any_truncation_yields_the_exact_frame_prefix(
        first_seq in 0u64..1000,
        batches in batches_strategy(),
        cut_pick in 0.0f64..1.0,
    ) {
        let (bytes, boundaries) = encode_wal(first_seq, &batches);
        let cut = (cut_pick * bytes.len() as f64) as usize;
        if cut < WAL_HEADER_LEN {
            prop_assert!(scan_wal(&bytes[..cut], Some(first_seq)).is_err());
            return Ok(());
        }
        let scan = scan_wal(&bytes[..cut], Some(first_seq)).expect("truncation is a torn tail");
        // Frames whose end fits inside the cut survive, whole and in order.
        let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(scan.batches.len(), intact);
        prop_assert_eq!(&scan.batches[..], &batches[..intact]);
        prop_assert_eq!(scan.valid_len as usize, boundaries[intact]);
        prop_assert_eq!(scan.torn.is_some(), cut != boundaries[intact], "cut at {}", cut);
    }

    /// Flipping a single bit anywhere in the body never misparses: the scan returns an
    /// exact prefix that stops *before* the damaged frame (CRC32 detects every
    /// single-bit error), and flips inside the header reject the whole file.
    #[test]
    fn a_single_bit_flip_never_misparses(
        first_seq in 0u64..1000,
        batches in batches_strategy(),
        bit_pick in 0.0f64..1.0,
    ) {
        let (bytes, boundaries) = encode_wal(first_seq, &batches);
        let bit = (bit_pick * (bytes.len() * 8) as f64) as usize;
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        if bit / 8 < WAL_HEADER_LEN {
            prop_assert!(
                scan_wal(&damaged, Some(first_seq)).is_err(),
                "header damage must reject the file"
            );
            return Ok(());
        }
        let scan = scan_wal(&damaged, Some(first_seq)).expect("body damage is a torn tail");
        // The flip lands in exactly one frame; everything before it survives intact,
        // that frame and everything after is dropped.
        let hit = boundaries.iter().filter(|&&b| b <= bit / 8).count() - 1;
        prop_assert_eq!(scan.batches.len(), hit);
        prop_assert_eq!(&scan.batches[..], &batches[..hit]);
        prop_assert!(scan.torn.is_some());
        prop_assert_eq!(scan.valid_len as usize, boundaries[hit]);
    }

    /// A file whose header names a different first batch than the chain expects is
    /// stale (a leftover of some other life of the directory) and must be rejected.
    #[test]
    fn mismatched_first_seq_expectations_reject_the_file(
        first_seq in 0u64..1000,
        offset in 1u64..50,
        batches in batches_strategy(),
    ) {
        let (bytes, _) = encode_wal(first_seq, &batches);
        prop_assert!(scan_wal(&bytes, Some(first_seq + offset)).is_err());
        // Without an expectation the same file scans fine.
        prop_assert!(scan_wal(&bytes, None).is_ok());
    }
}
