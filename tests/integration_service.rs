//! Service mode is lossless: queries fed one-by-one through `PathService` — under any
//! batching policy — yield exactly the same per-query path sets as one offline
//! `BatchEnum+` run over the same workload, and a deadline of zero degenerates to
//! per-query execution.

use hcsp::prelude::*;
use hcsp::service::{BatchPolicy, PathService};
use hcsp::workload::{similar_query_set, ArrivalProcess, Dataset, DatasetScale, QuerySetSpec};
use std::collections::BTreeSet;
use std::time::Duration;

/// Canonical form of a path set: the sorted set of vertex-id sequences.
fn canonical(paths: &PathSet) -> BTreeSet<Vec<u32>> {
    paths
        .iter()
        .map(|p| p.iter().map(|v| v.raw()).collect())
        .collect()
}

/// The seeded service workload every case below replays: a similarity-heavy stream on the
/// EP dataset analog, the regime micro-batching is built for.
fn service_workload() -> (DiGraph, Vec<PathQuery>) {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let queries = similar_query_set(&graph, QuerySetSpec::new(24, 11).with_hops(3, 4), 0.5);
    assert!(!queries.is_empty());
    (graph, queries)
}

/// One offline `BatchEnum+` run: the ground truth the service must reproduce.
fn offline_reference(graph: &DiGraph, queries: &[PathQuery]) -> Vec<BTreeSet<Vec<u32>>> {
    let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(graph, queries);
    outcome.paths.iter().map(canonical).collect()
}

#[test]
fn service_is_lossless_under_every_batching_policy() {
    let (graph, queries) = service_workload();
    let reference = offline_reference(&graph, &queries);

    let policies = [
        ("immediate", BatchPolicy::immediate()),
        (
            "tiny_windows",
            BatchPolicy::by_size(3, Duration::from_millis(20)),
        ),
        (
            "mid_windows",
            BatchPolicy::by_size(8, Duration::from_millis(50)),
        ),
        (
            "one_batch",
            BatchPolicy::by_size(queries.len(), Duration::from_millis(200)),
        ),
    ];
    for (name, policy) in policies {
        let service = PathService::builder()
            .policy(policy)
            .start(graph.clone())
            .unwrap();
        let handles = service.submit_all(queries.iter().copied());
        for (i, handle) in handles.into_iter().enumerate() {
            let result = handle.wait();
            assert_eq!(
                canonical(&result.paths),
                reference[i],
                "policy {name}: query {} must match the offline batch run",
                queries[i]
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, queries.len(), "policy {name}");
        assert_eq!(
            stats.produced_paths,
            reference.iter().map(|p| p.len() as u64).sum::<u64>(),
            "policy {name}"
        );
    }
}

#[test]
fn zero_deadline_degenerates_to_per_query_execution() {
    let (graph, queries) = service_workload();
    let reference = offline_reference(&graph, &queries);

    let service = PathService::builder()
        .policy(BatchPolicy::new(64, Duration::ZERO))
        .start(graph)
        .unwrap();
    let handles = service.submit_all(queries.iter().copied());
    for (i, handle) in handles.into_iter().enumerate() {
        let result = handle.wait();
        assert_eq!(result.batch_size, 1, "zero deadline ⇒ singleton batches");
        assert_eq!(canonical(&result.paths), reference[i]);
    }
    let stats = service.shutdown();
    assert_eq!(stats.num_batches, stats.num_queries);
    assert_eq!(stats.max_batch_size, 1);
    assert_eq!(
        stats.sharing_ratio(),
        0.0,
        "no cross-query sharing possible"
    );
}

#[test]
fn replayed_poisson_stream_is_lossless_with_multiple_workers() {
    let (graph, queries) = service_workload();
    let reference = offline_reference(&graph, &queries);

    // A fast Poisson stream (mean gap 0.2 ms) over a 2-worker pool with small windows:
    // batch formation, index reuse and parallel dispatch all engaged at once.
    let schedule = ArrivalProcess::Poisson { rate_qps: 5000.0 }.schedule(&queries, 7);
    let service = PathService::builder()
        .workers(2)
        .policy(BatchPolicy::by_size(6, Duration::from_millis(5)))
        .start(graph)
        .unwrap();
    let handles = service.replay(schedule);
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(canonical(&handle.wait().paths), reference[i]);
    }
    let stats = service.shutdown();
    assert_eq!(stats.num_queries, queries.len());
}

#[test]
fn service_stats_expose_micro_batch_counters() {
    let (graph, queries) = service_workload();
    let service = PathService::builder()
        .policy(BatchPolicy::by_size(
            queries.len(),
            Duration::from_millis(200),
        ))
        .start(graph)
        .unwrap();
    let handles = service.submit_all(queries.iter().copied());
    for handle in handles {
        handle.wait();
    }
    let uptime = service.uptime();
    let stats = service.shutdown();
    assert!(stats.num_batches >= 1);
    assert!(
        stats.mean_batch_size() > 1.0,
        "the window must have batched"
    );
    assert!(
        stats.sharing_ratio() > 0.0,
        "a similarity-heavy stream in one window must cluster"
    );
    assert!(stats.total_exec_time > Duration::ZERO);
    assert!(stats.throughput_qps(uptime) > 0.0);
}
