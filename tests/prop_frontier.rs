//! Property-based equivalence of the frontier (batch-DFS) and recursive expansion
//! engines.
//!
//! The frontier engine is a pure execution-strategy change: for any graph, any batch,
//! any algorithm (and thereby both search orders — the `+` variants order candidates by
//! `DistanceThenDegree`, the others by `Degree`), any worker count, and any sink verdict
//! sequence, it must be *byte-identical* to the recursive engine — same paths, same
//! emission order, same traversal counters, same abort points.

use hcsp::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random directed graph with 2..=28 vertices and a moderate edge budget.
fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..=28).prop_flat_map(|n| {
        let max_edges = (n * (n - 1)).min(120);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| DiGraph::from_edge_list(n, &edges).expect("edges in range"))
    })
}

/// Strategy: a batch of 1..=6 queries on a graph with `n` vertices.
fn query_batch_strategy(n: usize) -> impl Strategy<Value = Vec<PathQuery>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=6), 1..=6).prop_map(|qs| {
        qs.into_iter()
            .map(|(s, t, k)| PathQuery::new(s, t, k))
            .collect()
    })
}

/// Strategy: a graph plus a query batch on it.
fn workload_strategy() -> impl Strategy<Value = (DiGraph, Vec<PathQuery>)> {
    graph_strategy().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), query_batch_strategy(n))
    })
}

fn engine_with(mode: ExpansionMode, algorithm: Algorithm) -> BatchEngine {
    BatchEngine::builder()
        .algorithm(algorithm)
        .expansion_mode(mode)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Sequential batches: identical paths (content *and* order) and identical traversal
    /// counters for every algorithm.
    #[test]
    fn frontier_matches_recursive_sequentially((graph, queries) in workload_strategy()) {
        for algorithm in Algorithm::ALL {
            let rec = engine_with(ExpansionMode::Recursive, algorithm).run(&graph, &queries);
            let fr = engine_with(ExpansionMode::Frontier, algorithm).run(&graph, &queries);
            prop_assert_eq!(&fr.paths, &rec.paths, "paths of {}", algorithm);
            prop_assert_eq!(fr.stats.counters, rec.stats.counters, "counters of {}", algorithm);
            prop_assert_eq!(fr.stats.num_clusters, rec.stats.num_clusters, "clusters of {}", algorithm);
            prop_assert_eq!(
                fr.stats.num_shared_subqueries,
                rec.stats.num_shared_subqueries,
                "shared subqueries of {}", algorithm
            );
        }
    }

    /// Mid-enumeration sink verdicts: a sink that answers `SkipQuery` after a per-query
    /// quota and `Stop` after a batch-wide budget must observe the identical accept
    /// sequence and leave identical counters — the abort lands mid-frontier-run instead
    /// of mid-recursion, and the work done up to the verdict must match exactly.
    #[test]
    fn sink_aborts_land_identically(
        (graph, queries) in workload_strategy(),
        per_query in 1u64..4,
        total in 1usize..6,
    ) {
        for algorithm in Algorithm::ALL {
            let run = |mode: ExpansionMode| {
                let mut seen: Vec<(usize, Vec<VertexId>)> = Vec::new();
                let mut per: Vec<u64> = vec![0; queries.len()];
                let mut accepted = 0usize;
                let stats = {
                    let mut sink = ControlSink::new(|q, p: &[VertexId]| {
                        seen.push((q, p.to_vec()));
                        accepted += 1;
                        per[q] += 1;
                        if accepted >= total {
                            SinkFlow::Stop
                        } else if per[q] >= per_query {
                            SinkFlow::SkipQuery
                        } else {
                            SinkFlow::Continue
                        }
                    });
                    engine_with(mode, algorithm).run_with_sink(&graph, &queries, &mut sink)
                };
                (seen, stats)
            };
            let (rec_seen, rec_stats) = run(ExpansionMode::Recursive);
            let (fr_seen, fr_stats) = run(ExpansionMode::Frontier);
            prop_assert_eq!(&fr_seen, &rec_seen, "abort sequence of {}", algorithm);
            prop_assert_eq!(fr_stats.counters, rec_stats.counters, "abort counters of {}", algorithm);
        }
    }

    /// Typed mixed-mode batches (`Exists` / `Count` / `FirstK` / `Collect`): identical
    /// responses under both engines, including the early-terminating modes.
    #[test]
    fn spec_responses_match_across_modes((graph, queries) in workload_strategy()) {
        let specs: Vec<QuerySpec> = queries
            .iter()
            .enumerate()
            .map(|(i, &q)| match i % 4 {
                0 => QuerySpec::exists(q),
                1 => QuerySpec::count(q),
                2 => QuerySpec::first_k(q, 2),
                _ => QuerySpec::collect(q),
            })
            .collect();
        for algorithm in Algorithm::ALL {
            let rec = engine_with(ExpansionMode::Recursive, algorithm).run_specs(&graph, &specs);
            let fr = engine_with(ExpansionMode::Frontier, algorithm).run_specs(&graph, &specs);
            prop_assert_eq!(&fr.responses, &rec.responses, "responses of {}", algorithm);
            prop_assert_eq!(fr.stats.counters, rec.stats.counters, "spec counters of {}", algorithm);
        }
    }
}

proptest! {
    // The parallel sweep runs 5 algorithms × 3 worker counts × 2 engines per case; fewer
    // cases keep the thread churn bounded while still crossing the interesting regimes.
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Parallel batches on 1, 2 and 4 workers: identical paths and counters, and a shard
    /// plan that does not depend on the expansion mode.
    #[test]
    fn frontier_matches_recursive_in_parallel((graph, queries) in workload_strategy()) {
        let graph = Arc::new(graph);
        for algorithm in Algorithm::ALL {
            for workers in [1usize, 2, 4] {
                let mut rec_engine =
                    Engine::new(graph.clone(), engine_with(ExpansionMode::Recursive, algorithm));
                let mut fr_engine =
                    Engine::new(graph.clone(), engine_with(ExpansionMode::Frontier, algorithm));
                let rec = rec_engine.run_batch_parallel(&queries, Parallelism::Fixed(workers));
                let fr = fr_engine.run_batch_parallel(&queries, Parallelism::Fixed(workers));
                prop_assert_eq!(
                    &fr.paths, &rec.paths,
                    "paths of {} on {} workers", algorithm, workers
                );
                prop_assert_eq!(
                    fr.stats.counters, rec.stats.counters,
                    "counters of {} on {} workers", algorithm, workers
                );
                prop_assert_eq!(
                    fr.stats.num_shards, rec.stats.num_shards,
                    "shard plan of {} on {} workers", algorithm, workers
                );
            }
        }
    }
}
