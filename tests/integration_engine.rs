//! Engine-level integration tests: sinks, statistics, the materialisation experiment,
//! γ sensitivity and graph sampling — the pieces the experiment harness is built from.

use hcsp::core::materialize::materialize_batch;
use hcsp::core::Stage;
use hcsp::prelude::*;
use hcsp::workload::{random_query_set, Dataset, DatasetScale, QuerySetSpec};
use hcsp_graph::sampling::sample_vertices;

fn small_workload() -> (DiGraph, Vec<PathQuery>) {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let queries = random_query_set(&graph, QuerySetSpec::new(15, 3).with_hops(3, 4));
    assert!(!queries.is_empty());
    (graph, queries)
}

#[test]
fn counting_and_collecting_sinks_agree() {
    let (graph, queries) = small_workload();
    let engine = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus);
    let (counts, _) = engine.run_counting(&graph, &queries);
    let outcome = engine.run(&graph, &queries);
    for (i, &c) in counts.iter().enumerate() {
        assert_eq!(c as usize, outcome.count(i), "query {i}");
    }
    assert_eq!(outcome.total(), counts.iter().sum::<u64>() as usize);
}

#[test]
fn every_emitted_path_is_a_valid_answer() {
    let (graph, queries) = small_workload();
    let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&graph, &queries);
    for (i, q) in queries.iter().enumerate() {
        for path in outcome.paths[i].iter() {
            assert_eq!(path[0], q.source);
            assert_eq!(*path.last().unwrap(), q.target);
            assert!((path.len() - 1) as u32 <= q.hop_limit);
            assert!(hcsp::core::path::vertices_are_distinct(path));
            // Every consecutive pair must be a real edge of the graph.
            for w in path.windows(2) {
                assert!(
                    graph.has_edge(w[0], w[1]),
                    "missing edge {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn stats_decomposition_matches_algorithm_structure() {
    let (graph, queries) = small_workload();

    // PathEnum / BasicEnum never cluster or detect sub-queries.
    let (_, basic) =
        BatchEngine::with_algorithm(Algorithm::BasicEnumPlus).run_counting(&graph, &queries);
    assert_eq!(
        basic.stage_time(Stage::ClusterQuery),
        std::time::Duration::ZERO
    );
    assert_eq!(
        basic.stage_time(Stage::IdentifySubquery),
        std::time::Duration::ZERO
    );
    assert!(basic.stage_time(Stage::BuildIndex) > std::time::Duration::ZERO);
    assert!(basic.stage_time(Stage::Enumeration) > std::time::Duration::ZERO);
    assert_eq!(basic.num_shared_subqueries, 0);

    // BatchEnum+ exercises all four stages.
    let (_, batch) =
        BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run_counting(&graph, &queries);
    for stage in Stage::ALL {
        assert!(
            batch.stage_time(stage) > std::time::Duration::ZERO,
            "stage {stage}"
        );
    }
    assert!(batch.total_time() >= batch.stage_time(Stage::Enumeration));
    assert!(!batch.decomposition_row().is_empty());
}

#[test]
fn materialisation_results_match_live_enumeration() {
    let (graph, queries) = small_workload();
    let (materialized, _) = materialize_batch(&graph, &queries, SearchOrder::DistanceThenDegree);
    let (counts, _) =
        BatchEngine::with_algorithm(Algorithm::PathEnum).run_counting(&graph, &queries);
    assert_eq!(materialized.num_queries(), queries.len());
    for (i, &c) in counts.iter().enumerate() {
        assert_eq!(materialized.paths(i).len() as u64, c, "query {i}");
        let (scanned, _) = materialized.scan(i);
        assert_eq!(scanned as u64, c);
    }
    let (total, _) = materialized.scan_all();
    assert_eq!(total as u64, counts.iter().sum::<u64>());
}

#[test]
fn gamma_sweep_preserves_results() {
    let (graph, queries) = small_workload();
    let reference = BatchEngine::with_algorithm(Algorithm::BasicEnum)
        .run_counting(&graph, &queries)
        .0;
    for gamma in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let engine = BatchEngine::builder()
            .algorithm(Algorithm::BatchEnumPlus)
            .gamma(gamma)
            .build();
        let (counts, stats) = engine.run_counting(&graph, &queries);
        assert_eq!(counts, reference, "gamma {gamma}");
        assert!(stats.num_clusters >= 1 && stats.num_clusters <= queries.len());
    }
}

#[test]
fn sampled_subgraphs_are_valid_inputs() {
    // The Exp-5 pipeline: sample the graph, regenerate queries, run the algorithms.
    let graph = Dataset::TW.build(DatasetScale::Tiny);
    for ratio in [0.4, 0.7, 1.0] {
        let sampled = sample_vertices(&graph, ratio, 9).unwrap();
        let queries = random_query_set(&sampled.graph, QuerySetSpec::new(8, 11).with_hops(3, 4));
        if queries.is_empty() {
            continue;
        }
        let a = BatchEngine::with_algorithm(Algorithm::BasicEnumPlus)
            .run_counting(&sampled.graph, &queries)
            .0;
        let b = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus)
            .run_counting(&sampled.graph, &queries)
            .0;
        assert_eq!(a, b, "ratio {ratio}");
    }
}

#[test]
fn callback_sink_streams_all_results() {
    let (graph, queries) = small_workload();
    let mut streamed = 0u64;
    {
        let mut sink = CallbackSink::new(|_, _: &[VertexId]| streamed += 1);
        BatchEngine::with_algorithm(Algorithm::BatchEnum)
            .run_with_sink(&graph, &queries, &mut sink);
    }
    let (counts, _) =
        BatchEngine::with_algorithm(Algorithm::BatchEnum).run_counting(&graph, &queries);
    assert_eq!(streamed, counts.iter().sum::<u64>());
}

#[test]
fn larger_batches_on_multiple_datasets_stay_consistent() {
    for dataset in [Dataset::WT, Dataset::LJ] {
        let graph = dataset.build(DatasetScale::Tiny);
        let queries = random_query_set(&graph, QuerySetSpec::new(25, 17).with_hops(3, 5));
        let a = BatchEngine::with_algorithm(Algorithm::BasicEnum)
            .run_counting(&graph, &queries)
            .0;
        let b = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus)
            .run_counting(&graph, &queries)
            .0;
        assert_eq!(a, b, "{dataset}");
    }
}
