//! Cross-validation of the typed request/response API: for every algorithm, sequential
//! and parallel, offline and through the service, the weak result modes must agree with
//! full enumeration — `Exists ⇔ count > 0`, `Count` equals the full result count,
//! `FirstK(k)` is a prefix of `Collect` — while mixed-mode batches stay byte-identical
//! between sequential and parallel execution.

use hcsp::prelude::*;
use hcsp::service::{BatchPolicy, PathService};
use hcsp::workload::{
    mixed_mode_query_set, similar_query_set, Dataset, DatasetScale, ModeMix, QuerySetSpec,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

/// Canonical form of a path set: the sorted set of vertex-id sequences.
fn canonical(paths: &PathSet) -> BTreeSet<Vec<u32>> {
    paths
        .iter()
        .map(|p| p.iter().map(|v| v.raw()).collect())
        .collect()
}

/// The workload every offline case below shares: an overlapping query set on the EP
/// analog (dense enough that early termination has something to terminate).
fn workload() -> (DiGraph, Vec<PathQuery>) {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let queries = similar_query_set(&graph, QuerySetSpec::new(16, 11).with_hops(3, 5), 0.5);
    assert!(!queries.is_empty());
    (graph, queries)
}

/// Asserts the cross-mode invariants of one batch of responses against the `Collect`
/// ground truth.
fn assert_modes_agree(
    label: &str,
    queries: &[PathQuery],
    collect: &[QueryResponse],
    exists: &[QueryResponse],
    counts: &[QueryResponse],
    first_k: &[QueryResponse],
    k: usize,
) {
    for (i, query) in queries.iter().enumerate() {
        let full = collect[i].paths().expect("collect yields paths");
        assert_eq!(
            exists[i],
            QueryResponse::Exists(!full.is_empty()),
            "{label}: exists({query})"
        );
        assert_eq!(
            counts[i],
            QueryResponse::Count(full.len() as u64),
            "{label}: count({query})"
        );
        let first = first_k[i].paths().expect("firstk yields paths");
        assert_eq!(
            first.len(),
            full.len().min(k),
            "{label}: firstk len({query})"
        );
        for (j, p) in first.iter().enumerate() {
            assert_eq!(
                p,
                full.get(j),
                "{label}: firstk({query}) must be a prefix of collect"
            );
        }
    }
}

#[test]
fn modes_agree_with_full_enumeration_for_every_algorithm() {
    let (graph, queries) = workload();
    const K: usize = 3;
    for algorithm in Algorithm::ALL {
        let mut engine = Engine::with_algorithm(graph.clone(), algorithm);
        // Collect equals the classic untyped run.
        let classic = Engine::with_algorithm(graph.clone(), algorithm).run(&queries);
        let collect = engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::collect(q))
                .collect::<Vec<_>>(),
        );
        for (i, response) in collect.responses.iter().enumerate() {
            assert_eq!(
                response.paths().unwrap(),
                &classic.paths[i],
                "{algorithm}: collect mode must equal the untyped run"
            );
        }
        let exists = engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::exists(q))
                .collect::<Vec<_>>(),
        );
        let counts = engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::count(q))
                .collect::<Vec<_>>(),
        );
        let first_k = engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::first_k(q, K))
                .collect::<Vec<_>>(),
        );
        assert_modes_agree(
            &format!("{algorithm} sequential"),
            &queries,
            &collect.responses,
            &exists.responses,
            &counts.responses,
            &first_k.responses,
            K,
        );
    }
}

#[test]
fn parallel_spec_runs_match_sequential_for_every_algorithm() {
    let (graph, queries) = workload();
    // A mixed-mode batch: every mode in one admission, sharing one index.
    let specs: Vec<QuerySpec> = queries
        .iter()
        .enumerate()
        .map(|(i, &q)| match i % 4 {
            0 => QuerySpec::exists(q),
            1 => QuerySpec::count(q),
            2 => QuerySpec::first_k(q, 2),
            _ => QuerySpec::collect(q),
        })
        .collect();
    for algorithm in Algorithm::ALL {
        let mut sequential = Engine::with_algorithm(graph.clone(), algorithm);
        let expected = sequential.run_specs(&specs);
        for workers in [2, 4] {
            let mut engine = Engine::with_algorithm(graph.clone(), algorithm);
            let outcome = engine.run_specs_parallel(&specs, Parallelism::Fixed(workers));
            assert_eq!(
                outcome.responses, expected.responses,
                "{algorithm} at {workers} threads must be byte-identical to sequential"
            );
        }
    }
}

#[test]
fn early_termination_saves_search_work_on_the_dense_workload() {
    let (graph, queries) = workload();
    for algorithm in [Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
        let mut collect_engine = Engine::with_algorithm(graph.clone(), algorithm);
        let collect = collect_engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::collect(q))
                .collect::<Vec<_>>(),
        );
        let mut exists_engine = Engine::with_algorithm(graph.clone(), algorithm);
        let exists = exists_engine.run_specs(
            &queries
                .iter()
                .map(|&q| QuerySpec::exists(q))
                .collect::<Vec<_>>(),
        );
        assert!(collect.stats.counters.expanded_vertices > 0);
        assert_eq!(
            exists.stats.counters.expanded_vertices, 0,
            "{algorithm}: exists probes are answered from the shared index"
        );
    }
    // The streaming join of the per-query pipeline strictly reduces DFS work.
    let mut first_engine = Engine::with_algorithm(graph.clone(), Algorithm::BasicEnumPlus);
    let first = first_engine.run_specs(
        &queries
            .iter()
            .map(|&q| QuerySpec::first_k(q, 1))
            .collect::<Vec<_>>(),
    );
    let mut full_engine = Engine::with_algorithm(graph, Algorithm::BasicEnumPlus);
    let full = full_engine.run_specs(
        &queries
            .iter()
            .map(|&q| QuerySpec::collect(q))
            .collect::<Vec<_>>(),
    );
    assert!(
        first.stats.counters.expanded_vertices < full.stats.counters.expanded_vertices,
        "FirstK(1) must abort the forward DFS early ({} vs {})",
        first.stats.counters.expanded_vertices,
        full.stats.counters.expanded_vertices
    );
}

#[test]
fn mixed_mode_batches_are_lossless_through_the_service() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let specs = mixed_mode_query_set(
        &graph,
        QuerySetSpec::new(24, 5).with_hops(3, 4),
        ModeMix::default(),
    );
    assert!(!specs.is_empty());
    // Ground truth per query from a full offline enumeration.
    let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
    let reference = BatchEngine::default().run(&graph, &queries);

    for (policy_label, policy, workers, exec_threads) in [
        ("immediate", BatchPolicy::immediate(), 1, 1),
        (
            "windows",
            BatchPolicy::by_size(6, Duration::from_millis(30)),
            2,
            1,
        ),
        (
            "parallel-exec",
            BatchPolicy::by_size(8, Duration::from_millis(30)).with_exec_threads(2),
            1,
            2,
        ),
    ] {
        assert!(exec_threads >= 1);
        let service = PathService::builder()
            .policy(policy)
            .workers(workers)
            .start(graph.clone())
            .unwrap();
        let handles = service.submit_specs(specs.clone());
        for ((handle, spec), full) in handles.into_iter().zip(&specs).zip(&reference.paths) {
            let result = handle.wait();
            match spec.mode {
                ResultMode::Exists => assert_eq!(
                    result.response,
                    QueryResponse::Exists(!full.is_empty()),
                    "{policy_label}: {spec}"
                ),
                ResultMode::Count => assert_eq!(
                    result.response,
                    QueryResponse::Count(full.len() as u64),
                    "{policy_label}: {spec}"
                ),
                ResultMode::FirstK(k) => {
                    let got = result.response.paths().expect("firstk yields paths");
                    assert_eq!(got.len(), full.len().min(k), "{policy_label}: {spec}");
                    // The k paths depend on the executed micro-batch, but are always
                    // genuine result paths of the query.
                    let all = canonical(full);
                    for p in got.iter() {
                        let ids: Vec<u32> = p.iter().map(|v| v.raw()).collect();
                        assert!(
                            all.contains(&ids),
                            "{policy_label}: {spec} returned {ids:?}"
                        );
                    }
                }
                ResultMode::Collect => {
                    let got = result.response.paths().expect("collect yields paths");
                    assert_eq!(canonical(got), canonical(full), "{policy_label}: {spec}");
                }
            }
        }
        service.shutdown();
    }
}

#[test]
fn budgets_and_degenerate_specs_behave() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let queries = similar_query_set(&graph, QuerySetSpec::new(4, 3).with_hops(4, 5), 0.8);
    let q = queries[0];
    let mut engine = Engine::new(graph, BatchEngine::default());
    let total = {
        let outcome = engine.run_specs(&[QuerySpec::count(q)]);
        outcome.responses[0].count().unwrap()
    };
    assert!(total > 2, "the workload must be dense enough to truncate");
    let outcome = engine.run_specs(&[
        QuerySpec::count(q).with_path_budget(2),
        QuerySpec::first_k(q, 0),
        QuerySpec::collect(q).with_path_budget(1),
        QuerySpec::exists(q).with_path_budget(5),
    ]);
    assert_eq!(outcome.responses[0], QueryResponse::Count(2));
    assert_eq!(outcome.responses[1].count(), Some(0));
    assert_eq!(outcome.responses[2].count(), Some(1));
    assert_eq!(outcome.responses[3], QueryResponse::Exists(true));
}

/// Strategy: a random directed graph with 2..=20 vertices and a moderate edge budget.
fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..=20).prop_flat_map(|n| {
        let max_edges = (n * (n - 1)).min(90);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| DiGraph::from_edge_list(n, &edges).expect("edges in range"))
    })
}

/// Strategy: a graph plus a batch of 1..=5 queries on it.
fn workload_strategy() -> impl Strategy<Value = (DiGraph, Vec<PathQuery>)> {
    graph_strategy().prop_flat_map(|g| {
        let n = g.num_vertices();
        let queries = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=5), 1..=5)
            .prop_map(|qs| {
                qs.into_iter()
                    .map(|(s, t, k)| PathQuery::new(s, t, k))
                    .collect::<Vec<PathQuery>>()
            });
        (Just(g), queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// On arbitrary workloads, every algorithm's weak modes agree with its full
    /// enumeration: exists ⇔ count > 0, counts match, FirstK ⊆ Collect (as a prefix).
    #[test]
    fn response_modes_are_consistent((graph, queries) in workload_strategy()) {
        const K: usize = 2;
        for algorithm in [Algorithm::PathEnum, Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
            let engine = BatchEngine::with_algorithm(algorithm);
            let collect = engine.run_specs(
                &graph,
                &queries.iter().map(|&q| QuerySpec::collect(q)).collect::<Vec<_>>(),
            );
            let exists = engine.run_specs(
                &graph,
                &queries.iter().map(|&q| QuerySpec::exists(q)).collect::<Vec<_>>(),
            );
            let counts = engine.run_specs(
                &graph,
                &queries.iter().map(|&q| QuerySpec::count(q)).collect::<Vec<_>>(),
            );
            let first = engine.run_specs(
                &graph,
                &queries.iter().map(|&q| QuerySpec::first_k(q, K)).collect::<Vec<_>>(),
            );
            for (i, q) in queries.iter().enumerate() {
                let full = collect.responses[i].paths().expect("collect yields paths");
                prop_assert_eq!(
                    &exists.responses[i],
                    &QueryResponse::Exists(!full.is_empty()),
                    "{} exists({})", algorithm, q
                );
                prop_assert_eq!(
                    &counts.responses[i],
                    &QueryResponse::Count(full.len() as u64),
                    "{} count({})", algorithm, q
                );
                let first_paths = first.responses[i].paths().expect("firstk yields paths");
                prop_assert_eq!(first_paths.len(), full.len().min(K));
                for (j, p) in first_paths.iter().enumerate() {
                    prop_assert_eq!(p, full.get(j), "{} firstk({}) prefix", algorithm, q);
                }
            }
        }
    }
}
