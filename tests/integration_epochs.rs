//! Integration: epoch-pinned snapshot reads cross-validated against scratch rebuilds.
//!
//! The epoch protocol's promise is that *pinning* is free of coordination: a batch
//! pinned to epoch `e` answers byte-identically to a fresh engine built from scratch
//! over the epoch-`e` graph, no matter how many later epochs have been published in the
//! meantime, and no matter how far behind the executing engine's cached index was when
//! the batch arrived (incremental delta catch-up and the invalidation fallback must be
//! equally invisible). The service-level stress test swaps the only route between two
//! alternatives, epoch after epoch, under concurrent readers: any torn read — a query
//! observing half an update — would return zero or two paths instead of exactly one.

use hcsp::prelude::*;
use hcsp::workload::{update_stream, Dataset, DatasetScale, StreamEvent, UpdateStreamSpec};
use std::sync::Arc;
use std::time::Duration;

/// A query batch pinned to the epoch that was the tip when it was admitted.
type PinnedBatch = (Arc<Epoch>, Vec<PathQuery>);

/// Walks a delete-heavy mixed stream, publishing every update as an epoch and grouping
/// the queries between updates under the epoch they would pin at admission. Returns the
/// per-epoch query batches (only the non-empty ones).
fn pinned_batches(graph: &DiGraph, spec: UpdateStreamSpec) -> (Vec<PinnedBatch>, usize) {
    let events = update_stream(graph, spec);
    assert!(
        events.iter().any(|e| !e.is_query()) && events.iter().any(StreamEvent::is_query),
        "the stream must interleave queries and updates"
    );
    let mut publisher = EpochPublisher::new(graph.clone());
    let mut batches: Vec<PinnedBatch> = Vec::new();
    let mut pending: Vec<PathQuery> = Vec::new();
    let mut epochs_published = 0usize;
    for event in &events {
        match event {
            StreamEvent::Query(q) => pending.push(*q),
            StreamEvent::Update(batch) => {
                if !pending.is_empty() {
                    batches.push((publisher.tip(), std::mem::take(&mut pending)));
                }
                let before = publisher.tip().id();
                let (tip, summary) = publisher.publish(batch);
                assert_eq!(summary.applied, batch.len(), "stream updates always apply");
                if tip.id() != before {
                    epochs_published += 1;
                }
            }
        }
    }
    if !pending.is_empty() {
        batches.push((publisher.tip(), pending));
    }
    (batches, epochs_published)
}

/// Executes every pinned batch twice — on a live engine advanced to each batch's epoch,
/// and on a laggard engine that also serves every batch but whose advances therefore
/// cross multiple epochs at once whenever consecutive batches skip epochs — comparing
/// both, per batch, against a fresh engine built from scratch at the pinned epoch.
///
/// Crucially, *every* epoch is already published before the first batch executes: the
/// pinned snapshots must be unaffected by the later updates that have long since landed.
fn cross_validate_pinned_reads(algorithm: Algorithm, parallelism: Option<usize>) {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let spec = UpdateStreamSpec::delete_heavy(18, 7, 31).with_hops(3, 4);
    let (batches, epochs_published) = pinned_batches(&graph, spec);
    assert!(epochs_published >= 2, "need several epochs to cross");

    let config = BatchEngine::with_algorithm(algorithm);
    let mut live = Engine::at_epoch(&batches[0].0, config);
    // The laggard serves only every other batch, so its advances cross wider gaps
    // (including, on long streams, the delta window's invalidation fallback).
    let mut laggard = Engine::at_epoch(&batches[0].0, config);

    let run = |engine: &mut Engine, queries: &[PathQuery]| match parallelism {
        Some(threads) => engine.run_batch_parallel(queries, Parallelism::Fixed(threads)),
        None => engine.run(queries),
    };

    for (i, (epoch, queries)) in batches.iter().enumerate() {
        let mut fresh = Engine::at_epoch(epoch, config);
        let expected = fresh.run(queries);

        let advance = live.advance_to_epoch(epoch);
        assert_eq!(live.epoch_id(), epoch.id());
        assert!(!advance.invalidated || advance.epochs_crossed > 0);
        let outcome = run(&mut live, queries);
        assert_eq!(
            outcome.paths,
            expected.paths,
            "{algorithm} (parallelism {parallelism:?}) diverged from the scratch rebuild \
             at epoch {} on batch {i}",
            epoch.id()
        );

        if i % 2 == 0 {
            laggard.advance_to_epoch(epoch);
            let outcome = run(&mut laggard, queries);
            assert_eq!(
                outcome.paths,
                expected.paths,
                "laggard {algorithm} (parallelism {parallelism:?}) diverged at epoch {}",
                epoch.id()
            );
        }
    }

    let reuse = live.index_reuse();
    assert!(
        reuse.epoch_advances >= 1,
        "the live engine must have advanced through epochs: {reuse:?}"
    );
}

#[test]
fn pinned_reads_match_scratch_rebuilds_path_enum() {
    cross_validate_pinned_reads(Algorithm::PathEnum, None);
}

#[test]
fn pinned_reads_match_scratch_rebuilds_basic_enum() {
    cross_validate_pinned_reads(Algorithm::BasicEnum, None);
}

#[test]
fn pinned_reads_match_scratch_rebuilds_basic_enum_plus() {
    cross_validate_pinned_reads(Algorithm::BasicEnumPlus, None);
}

#[test]
fn pinned_reads_match_scratch_rebuilds_batch_enum() {
    cross_validate_pinned_reads(Algorithm::BatchEnum, None);
}

#[test]
fn pinned_reads_match_scratch_rebuilds_batch_enum_plus() {
    cross_validate_pinned_reads(Algorithm::BatchEnumPlus, None);
}

#[test]
fn pinned_reads_match_scratch_rebuilds_parallel_2_threads() {
    cross_validate_pinned_reads(Algorithm::BasicEnumPlus, Some(2));
    cross_validate_pinned_reads(Algorithm::BatchEnumPlus, Some(2));
}

#[test]
fn pinned_reads_match_scratch_rebuilds_parallel_4_threads() {
    cross_validate_pinned_reads(Algorithm::BatchEnumPlus, Some(4));
}

/// A laggard further behind than the retained delta window must fall back to an index
/// invalidation — and still answer byte-identically.
#[test]
fn catching_up_past_the_delta_window_stays_byte_identical() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let mut publisher = EpochPublisher::new(graph.clone());
    let start = publisher.tip();

    // Publish MAX_EPOCH_DELTAS + 3 effective delete epochs, so `start` is far behind.
    for (u, v) in graph.edges() {
        if publisher.tip().id() >= (MAX_EPOCH_DELTAS + 3) as u64 {
            break;
        }
        publisher.publish(&[GraphUpdate::Delete(u, v)]);
    }
    let tip = publisher.tip();
    assert!(tip.id() > MAX_EPOCH_DELTAS as u64);

    let queries: Vec<PathQuery> = graph
        .edges()
        .take(6)
        .map(|(u, v)| PathQuery::new(u, v, 4))
        .collect();

    let mut engine = Engine::at_epoch(&start, BatchEngine::default());
    let warm = engine.run(&queries); // build the cached index at the start epoch
    assert!(!warm.paths.iter().all(|p| p.is_empty()));

    let advance = engine.advance_to_epoch(&tip);
    assert!(advance.invalidated, "the gap exceeds the retained window");
    assert_eq!(advance.epochs_crossed, tip.id());

    let outcome = engine.run(&queries);
    let mut fresh = Engine::at_epoch(&tip, BatchEngine::default());
    assert_eq!(outcome.paths, fresh.run(&queries).paths);
}

/// Service-level torn-read stress: the graph always contains exactly one 2-hop route
/// from 0 to 3 — through 1 on even epochs, through 2 on odd epochs — and a writer swaps
/// the route while reader threads hammer the service. Every answer must be exactly one
/// of the two legal routes, never zero paths (a half-applied swap) and never both.
#[test]
fn route_swap_updates_never_tear_under_concurrent_readers() {
    let route_a = [VertexId(0), VertexId(1), VertexId(3)];
    let route_b = [VertexId(0), VertexId(2), VertexId(3)];
    let swaps = 24usize;
    let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
    let q = PathQuery::new(0u32, 3u32, 2);

    let service = hcsp::service::PathService::builder()
        .workers(2)
        .policy(BatchPolicy::by_size(4, Duration::from_millis(1)))
        .start(graph)
        .unwrap();

    let results: Vec<QueryResult> = std::thread::scope(|scope| {
        let service = &service;
        let writer = scope.spawn(move || {
            for i in 0..swaps {
                let to_b = i % 2 == 0;
                let (gone, fresh) = if to_b {
                    (route_a, route_b)
                } else {
                    (route_b, route_a)
                };
                let summary = service
                    .update(vec![
                        GraphUpdate::Delete(gone[0], gone[1]),
                        GraphUpdate::Delete(gone[1], gone[2]),
                        GraphUpdate::Insert(fresh[0], fresh[1]),
                        GraphUpdate::Insert(fresh[1], fresh[2]),
                    ])
                    .wait();
                assert_eq!(summary.applied, 4, "swap {i} must fully apply");
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let readers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let handles: Vec<QueryHandle> = (0..60)
                        .map(|_| {
                            std::thread::sleep(Duration::from_micros(100));
                            service.submit(q)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.wait())
                        .collect::<Vec<QueryResult>>()
                })
            })
            .collect();
        writer.join().unwrap();
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect()
    });

    assert_eq!(results.len(), 120);
    for result in &results {
        assert_eq!(
            result.paths.len(),
            1,
            "a torn route swap would yield 0 or 2 paths"
        );
        let path = result.paths.get(0);
        assert!(
            path == route_a.as_slice() || path == route_b.as_slice(),
            "unexpected route {path:?}"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.num_queries, 120);
    assert_eq!(stats.epochs_published, swaps);
    assert_eq!(stats.updates_applied, 4 * swaps);
}
