//! End-to-end tests of the network front-end: a real [`PathServer`] on loopback,
//! driven over TCP, checked against an **in-process oracle**.
//!
//! The central property is byte identity: for a mixed statement stream — `PATHS` (with
//! and without `LIMIT`), `EXISTS`, `COUNT`, and interleaved `INSERT`/`DELETE EDGE`
//! updates — the raw response frame payloads the server streams must be exactly the
//! bytes produced by encoding an in-process [`Engine::run_specs`] answer over the same
//! epoch history. The wire, the parser, the fallible admission path and the response
//! chunking may add nothing and lose nothing.
//!
//! The service runs `BatchPolicy::immediate()` with one worker here: `FirstK` answers
//! depend on batch composition by design, so byte identity is only defined when every
//! statement forms its own batch — the same reason the oracle runs one spec at a time.

use hcsp::core::{BatchEngine, Engine, EpochPublisher};
use hcsp::prelude::{
    BatchPolicy, Client, DiGraph, DurabilityOptions, FsyncPolicy, PathServer, PathService, Reply,
    ServerConfig,
};
use hcsp::server::{response_frames, run_load, ErrorCode, Response};
use hcsp::workload::{random_query_set, ArrivalProcess, Dataset, DatasetScale, QuerySetSpec};
use std::sync::Arc;
use std::time::Duration;

/// A server over an immediate-policy service on `graph`; returns the pieces the tests
/// drive. The service is epoch-identical to an [`EpochPublisher`] fed the same updates.
fn serve(graph: DiGraph, config: ServerConfig) -> (PathServer, Arc<PathService>) {
    let service = Arc::new(
        PathService::builder()
            .workers(1)
            .policy(BatchPolicy::immediate())
            .start(graph)
            .expect("an ephemeral service start cannot fail"),
    );
    let server = PathServer::bind(Arc::clone(&service), ("127.0.0.1", 0), config)
        .expect("bind a loopback server");
    (server, service)
}

/// The mixed-mode statement stream for `graph`: every query verb, `LIMIT` variants,
/// and interleaved edge churn (each delete later re-inserted, plus a vertex-growing
/// insert to exercise validation against the *current* epoch).
fn mixed_statements(graph: &DiGraph, queries_seed: u64) -> Vec<String> {
    let queries = random_query_set(graph, QuerySetSpec::new(12, queries_seed).with_hops(3, 4));
    assert!(!queries.is_empty(), "the dataset must admit queries");
    let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.0, v.0)).collect();
    let mut statements = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let (s, t, k) = (q.source.0, q.target.0, q.hop_limit);
        statements.push(match i % 5 {
            0 => format!("PATHS FROM {s} TO {t} WITHIN {k}"),
            1 => format!("PATHS FROM {s} TO {t} WITHIN {k} LIMIT 3"),
            2 => format!("EXISTS FROM {s} TO {t} WITHIN {k}"),
            3 => format!("COUNT FROM {s} TO {t} WITHIN {k}"),
            _ => format!("COUNT FROM {s} TO {t} WITHIN {k} LIMIT 5"),
        });
        // Interleave updates: churn a real edge (delete now, re-insert two statements
        // later would complicate the oracle — re-insert immediately instead) and
        // occasionally insert a brand-new edge.
        if i % 3 == 1 {
            let (u, v) = edges[i % edges.len()];
            statements.push(format!("DELETE EDGE {u} {v}"));
            statements.push(format!("INSERT EDGE {u} {v}"));
        }
        if i == queries.len() / 2 {
            // Grows the vertex space; later statements validate against the new size.
            let fresh = graph.num_vertices() as u32;
            statements.push(format!("INSERT EDGE {s} {fresh}"));
            statements.push(format!("INSERT EDGE {fresh} {t}"));
        }
    }
    statements
}

/// The oracle: replays the same statements against an in-process [`EpochPublisher`] +
/// [`Engine::run_specs`], and encodes each answer with the same [`response_frames`]
/// chunking the server uses. Returns the expected frame payload bytes per statement.
fn oracle_payloads(graph: DiGraph, statements: &[String], first_id: u64) -> Vec<Vec<Vec<u8>>> {
    let mut publisher = EpochPublisher::new(graph);
    statements
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let id = first_id + i as u64;
            let statement = hcsp::server::parse(text).expect("test statements are valid");
            let frames = match statement {
                hcsp::server::Statement::Query(q) => {
                    let mut engine = Engine::at_epoch(&publisher.tip(), BatchEngine::default());
                    let outcome = engine.run_specs(&[q.to_spec()]);
                    response_frames(id, &outcome.responses[0])
                }
                hcsp::server::Statement::Update(u) => {
                    let (_, summary) = publisher.publish(&[u.to_update()]);
                    vec![Response::UpdateDone {
                        id,
                        applied: summary.applied as u64,
                        ignored: summary.ignored as u64,
                    }]
                }
            };
            frames.iter().map(Response::encode).collect()
        })
        .collect()
}

/// The tentpole acceptance test: over TCP, every response to the mixed-mode stream —
/// updates interleaved with all four query shapes — is byte-identical to the
/// in-process engine's answer over the same epoch history.
#[test]
fn tcp_responses_are_byte_identical_to_the_in_process_engine() {
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    let statements = mixed_statements(&graph, 0xFEED);
    assert!(
        statements.iter().any(|s| s.starts_with("INSERT")),
        "the stream must interleave updates"
    );
    let expected = oracle_payloads(graph.clone(), &statements, 1);

    let (server, service) = serve(graph, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for (statement, want) in statements.iter().zip(&expected) {
        let got = client.request_raw(statement).expect("request");
        assert_eq!(
            &got, want,
            "payload bytes diverge from the engine oracle for {statement:?}"
        );
    }
    drop(client);
    server.shutdown();
    let stats = Arc::try_unwrap(service).expect("last reference").shutdown();
    assert_eq!(
        stats.num_queries,
        statements.iter().filter(|s| !s.contains("EDGE")).count(),
        "every query statement reached the service"
    );
}

/// Refusals become error frames and the connection survives them: a parse error, an
/// out-of-range endpoint, then a well-formed statement on the same connection.
#[test]
fn refusals_are_error_frames_and_the_connection_survives() {
    let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
    let (server, _service) = serve(graph, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    match client.request("FROBNICATE 1").expect("reply") {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::Parse);
            assert!(message.contains("FROBNICATE"), "diagnosis: {message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    match client
        .request("PATHS FROM 0 TO 99 WITHIN 3")
        .expect("reply")
    {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::InvalidEndpoint);
            assert!(message.contains("out of range"), "diagnosis: {message}");
        }
        other => panic!("expected an endpoint refusal, got {other:?}"),
    }
    match client
        .request("EXISTS FROM 0 TO 3 WITHIN 3")
        .expect("reply")
    {
        Reply::Exists(true) => {}
        other => panic!("the connection must still serve queries, got {other:?}"),
    }
    assert_eq!(
        client.request("PATHS FROM 0 TO 3 WITHIN 3").expect("reply"),
        Reply::Paths(vec![vec![0, 1, 3], vec![0, 2, 3]])
    );
    assert_eq!(
        client.request("COUNT FROM 0 TO 3 WITHIN 3").expect("reply"),
        Reply::Count(2)
    );
    assert_eq!(
        client.request("DELETE EDGE 0 1").expect("reply"),
        Reply::Update {
            applied: 1,
            ignored: 0
        }
    );
    assert_eq!(
        client.request("DELETE EDGE 0 1").expect("reply"),
        Reply::Update {
            applied: 0,
            ignored: 1
        }
    );
    assert_eq!(
        client.request("COUNT FROM 0 TO 3 WITHIN 3").expect("reply"),
        Reply::Count(1)
    );
}

/// Pipelining: many statements sent before any reply is read come back FIFO, each
/// tagged with its request id.
#[test]
fn pipelined_requests_answer_in_order() {
    let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
    let (server, _service) = serve(graph, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut sent = Vec::new();
    for i in 0..24 {
        let statement = match i % 3 {
            0 => "EXISTS FROM 0 TO 3 WITHIN 3",
            1 => "COUNT FROM 0 TO 3 WITHIN 3",
            _ => "PATHS FROM 0 TO 3 WITHIN 3 LIMIT 1",
        };
        sent.push(client.send(statement).expect("send"));
    }
    for want_id in sent {
        let (id, reply) = client.recv().expect("recv");
        assert_eq!(id, want_id, "replies must be FIFO with requests");
        assert!(
            matches!(
                reply,
                Reply::Exists(true) | Reply::Count(2) | Reply::Paths(_)
            ),
            "unexpected reply {reply:?}"
        );
    }
}

/// The connection cap: an over-cap client completes the handshake, receives one `Busy`
/// error frame, and is closed; capacity freed by a disconnect is reusable.
#[test]
fn over_cap_connections_get_a_busy_frame() {
    let graph = DiGraph::from_edge_list(2, &[(0, 1)]).unwrap();
    let (server, _service) = serve(graph, ServerConfig::default().max_connections(1));
    let addr = server.local_addr();

    let mut first = Client::connect(addr).expect("first connection");
    assert_eq!(
        first.request("EXISTS FROM 0 TO 1 WITHIN 1").expect("reply"),
        Reply::Exists(true)
    );
    let mut second = Client::connect(addr).expect("the handshake still completes");
    match second.recv() {
        Ok((0, Reply::Error { code, .. })) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected an unsolicited Busy frame, got {other:?}"),
    }
    drop(second);
    drop(first); // frees the slot …
    for _ in 0..50 {
        // … but asynchronously: the server notices the close on its own schedule.
        let mut retry = Client::connect(addr).expect("reconnect");
        match retry
            .send("EXISTS FROM 0 TO 1 WITHIN 1")
            .and_then(|_| retry.recv())
        {
            Ok((_, Reply::Exists(true))) => return,
            Ok((
                _,
                Reply::Error {
                    code: ErrorCode::Busy,
                    ..
                },
            )) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected outcome while waiting for the slot: {other:?}"),
        }
    }
    panic!("the freed connection slot never became reusable");
}

/// The load generator drives a durable group-committing service over TCP end to end:
/// every reply decodes, updates are acknowledged durably, and the group-commit counter
/// moved.
#[test]
fn load_generator_drives_a_durable_service_end_to_end() {
    let fs = hcsp::storage::FailpointFs::new();
    let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
    let service = Arc::new(
        PathService::builder()
            .workers(2)
            .policy(BatchPolicy::by_size(4, Duration::from_millis(1)))
            .durability(DurabilityOptions::vfs(fs.as_vfs()).fsync(FsyncPolicy::Always))
            .start(graph)
            .expect("create the durable service"),
    );
    let server = PathServer::bind(
        Arc::clone(&service),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .expect("bind");

    let mut statements = Vec::new();
    for i in 0..40 {
        statements.push(match i % 4 {
            0 => "PATHS FROM 0 TO 3 WITHIN 3 LIMIT 2".to_string(),
            1 => "COUNT FROM 0 TO 3 WITHIN 3".to_string(),
            2 => format!("INSERT EDGE 1 {}", 2 + i % 2),
            _ => "EXISTS FROM 0 TO 3 WITHIN 3".to_string(),
        });
    }
    let arrivals = ArrivalProcess::Bursty {
        burst_size: 8,
        gap: Duration::from_millis(2),
    };
    let report = run_load(server.local_addr(), &statements, &arrivals, 7).expect("load run");
    assert_eq!(report.replies.len(), statements.len());
    assert_eq!(report.latencies.len(), statements.len());
    assert!(
        !report
            .replies
            .iter()
            .any(|r| matches!(r, Reply::Error { .. })),
        "no statement may be refused: {:?}",
        report.replies
    );
    assert!(report.p50() <= report.p99(), "percentiles are ordered");
    assert!(report.qps() > 0.0);

    server.shutdown();
    let stats = Arc::try_unwrap(service).expect("last reference").shutdown();
    assert_eq!(stats.update_batches, 10, "every INSERT was applied");
    assert!(
        stats.group_commit_batches >= 1,
        "an Always-fsync service acknowledges through group commit"
    );
    assert!(
        stats.group_commit_batches as usize <= stats.update_batches,
        "group commit never fsyncs more often than once per batch"
    );
}
