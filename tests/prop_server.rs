//! Property-based tests of the network front-end (proptest): the query language's
//! parse ↔ display round-trip, and the wire framing's damage behaviour, mirroring the
//! WAL framing properties of `prop_wal.rs`.
//!
//! The framing invariant: for **any** response sequence and **any** damage to the
//! encoded byte stream — truncation at an arbitrary offset, a single flipped bit — the
//! frame reader either reports an error or returns an *exact prefix* of the original
//! frames. It never invents or alters a frame, and it never resumes past damage: like
//! the WAL, the stream has no resynchronisation points, which is why the server closes
//! a connection after the first damaged frame.

use hcsp::server::{parse, read_frame_opt, write_frame, Response, Statement, MAX_FRAME_LEN};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Query language: parse(display(ast)) == ast, for every valid statement.
// ---------------------------------------------------------------------------

fn statement_strategy() -> impl Strategy<Value = String> {
    // One flat tuple covers both statement families: tags 0..=2 are the query verbs,
    // 3..=4 the update ops.
    (
        0u8..=4,
        0u32..=u32::MAX,
        0u32..=u32::MAX,
        0u32..64,
        0u64..10_000,
    )
        .prop_map(|(tag, s, t, k, limit)| match tag {
            // EXISTS takes no LIMIT; elsewhere LIMIT 0 is a parse error.
            0 if limit > 0 => format!("PATHS FROM {s} TO {t} WITHIN {k} LIMIT {limit}"),
            0 => format!("PATHS FROM {s} TO {t} WITHIN {k}"),
            1 => format!("EXISTS FROM {s} TO {t} WITHIN {k}"),
            2 if limit > 0 => format!("COUNT FROM {s} TO {t} WITHIN {k} LIMIT {limit}"),
            2 => format!("COUNT FROM {s} TO {t} WITHIN {k}"),
            3 => format!("INSERT EDGE {s} {t}"),
            _ => format!("DELETE EDGE {s} {t}"),
        })
}

/// Re-spells a canonical statement with random case and random extra whitespace,
/// which must parse to the same AST.
fn mangle(canonical: &str, case_seed: u64, pad_seed: u64) -> String {
    let mut out = String::new();
    for (i, word) in canonical.split(' ').enumerate() {
        for _ in 0..(pad_seed >> (i % 16) & 0x3) {
            out.push(' ');
        }
        if i > 0 {
            out.push(' ');
        }
        for (j, c) in word.chars().enumerate() {
            if case_seed >> ((i + j) % 32) & 1 == 1 {
                out.extend(c.to_lowercase());
            } else {
                out.push(c);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Wire framing: encode a stream of response frames, damage it, read it back.
// ---------------------------------------------------------------------------

fn response_strategy() -> impl Strategy<Value = Response> {
    // One flat tuple per frame: a variant tag, an id, two u64 payload words and a
    // path set (only used by the variant that needs each piece).
    (
        0u8..=4,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        proptest::collection::vec(proptest::collection::vec(0u32..=u32::MAX, 1..=6), 0..=4),
    )
        .prop_map(|(tag, id, a, b, paths)| match tag {
            0 => Response::Exists {
                id,
                exists: a & 1 == 1,
            },
            1 => Response::Count { id, count: a },
            2 => Response::PathChunk { id, paths },
            3 => Response::PathsDone { id, total: a },
            _ => Response::UpdateDone {
                id,
                applied: a,
                ignored: b,
            },
        })
}

fn frames_strategy() -> impl Strategy<Value = Vec<Response>> {
    proptest::collection::vec(response_strategy(), 1..=10)
}

/// Encodes a whole frame stream and returns the byte offsets of each frame boundary
/// (`boundaries[i]` = end of frame `i`; starts with offset 0).
fn encode_stream(frames: &[Response]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0];
    for frame in frames {
        write_frame(&mut bytes, &frame.encode()).expect("writing to a Vec cannot fail");
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Reads frames until an error or EOF; returns the decoded prefix and whether the
/// stream ended cleanly (EOF at a frame boundary) or in an error.
fn read_stream(bytes: &[u8]) -> (Vec<Response>, bool) {
    let mut cursor = bytes;
    let mut decoded = Vec::new();
    loop {
        match read_frame_opt(&mut cursor, MAX_FRAME_LEN) {
            Ok(Some(payload)) => match Response::decode(&payload) {
                Ok(frame) => decoded.push(frame),
                Err(_) => return (decoded, false),
            },
            Ok(None) => return (decoded, true),
            Err(_) => return (decoded, false),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Every valid statement round-trips: parse → display → parse is the identity, and
    /// the displayed form is the canonical fixed point.
    #[test]
    fn statements_round_trip_through_display(text in statement_strategy()) {
        let ast = parse(&text).expect("generated statements are valid");
        let canonical = ast.to_string();
        let reparsed = parse(&canonical).expect("canonical form parses");
        prop_assert_eq!(&reparsed, &ast);
        prop_assert_eq!(reparsed.to_string(), canonical);
    }

    /// Keyword case and extra whitespace are immaterial: any re-spelling of a valid
    /// statement parses to the same AST.
    #[test]
    fn case_and_whitespace_do_not_change_the_ast(
        text in statement_strategy(),
        case_seed in 0u64..=u64::MAX,
        pad_seed in 0u64..=u64::MAX,
    ) {
        let ast = parse(&text).expect("generated statements are valid");
        let mangled = mangle(&ast.to_string(), case_seed, pad_seed);
        prop_assert_eq!(parse(&mangled).expect("mangled spelling still parses"), ast);
    }

    /// The parser never panics, whatever bytes arrive — it answers `Ok` or `Err`.
    #[test]
    fn arbitrary_input_never_panics_the_parser(
        bytes in proptest::collection::vec(0u8..=255, 0..=64),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _: Result<Statement, _> = parse(&text);
    }

    /// An undamaged stream round-trips exactly: every frame, in order, clean EOF.
    #[test]
    fn undamaged_streams_round_trip_exactly(frames in frames_strategy()) {
        let (bytes, _) = encode_stream(&frames);
        let (decoded, clean) = read_stream(&bytes);
        prop_assert!(clean, "an undamaged stream ends cleanly");
        prop_assert_eq!(decoded, frames);
    }

    /// Truncation at *any* offset yields exactly the frames that fit whole, and ends
    /// cleanly iff the cut lands on a frame boundary.
    #[test]
    fn any_truncation_yields_the_exact_frame_prefix(
        frames in frames_strategy(),
        cut_pick in 0.0f64..1.0,
    ) {
        let (bytes, boundaries) = encode_stream(&frames);
        let cut = (cut_pick * bytes.len() as f64) as usize;
        let (decoded, clean) = read_stream(&bytes[..cut]);
        let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(decoded.len(), intact);
        prop_assert_eq!(&decoded[..], &frames[..intact]);
        prop_assert_eq!(clean, cut == boundaries[intact], "cut at {}", cut);
    }

    /// Flipping a single bit anywhere never misparses: the reader returns an exact
    /// prefix that stops before the damaged frame (CRC32 detects every single-bit
    /// payload error; length-prefix damage surfaces as a too-large, truncated or
    /// CRC-failed read).
    #[test]
    fn a_single_bit_flip_never_misparses(
        frames in frames_strategy(),
        bit_pick in 0.0f64..1.0,
    ) {
        let (bytes, boundaries) = encode_stream(&frames);
        let bit = (bit_pick * (bytes.len() * 8) as f64) as usize;
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        let (decoded, clean) = read_stream(&damaged);
        // The flip lands in exactly one frame; everything before it is an exact
        // prefix, and the stream must NOT read to a clean end-of-stream.
        let hit = boundaries.iter().filter(|&&b| b <= bit / 8).count() - 1;
        prop_assert!(decoded.len() <= hit + 1);
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()]);
        prop_assert!(
            !clean || decoded.len() < frames.len(),
            "damage must never round-trip as a full clean stream"
        );
    }
}
