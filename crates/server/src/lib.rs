//! # hcsp-server
//!
//! The network front-end of the reproduction: a versioned, CRC-framed binary wire
//! protocol ([`frame`]), a small text query language compiled into the service's typed
//! requests ([`lang`]), a blocking thread-per-connection TCP server over a shared
//! [`hcsp_service::PathService`] ([`server`]), and the matching blocking client and
//! open-loop load generator ([`client`], [`load`]).
//!
//! The serving pipeline end to end:
//!
//! ```text
//! client ──frame──▶ reader ──parse──▶ try_submit_spec / try_update ──▶ PathService
//!   ▲                                        │ (admission refusals → error frames)
//!   └────frames──── writer ◀──wait_result────┘
//! ```
//!
//! Everything rides the **fallible** service surface: a malformed statement, an
//! out-of-range endpoint or a shutting-down service becomes a typed error *frame* on
//! the wire, never a panic in the serving process. Responses are byte-deterministic —
//! the same statement against the same graph state yields the same frame payloads the
//! in-process engine would produce, which the integration suite pins down against an
//! [`hcsp_core::Engine`] oracle.
//!
//! See the `server_demo` example for a runnable tour, and `docs/ARCHITECTURE.md` for
//! where this layer sits in the system.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod frame;
pub mod lang;
pub mod load;
pub mod server;

pub use client::{Client, Reply};
pub use frame::{
    read_frame, read_frame_opt, response_frames, write_frame, ErrorCode, FrameError, Request,
    Response, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use lang::{
    parse, ParseError, QueryStatement, QueryVerb, Statement, UpdateOp, UpdateStatement,
};
pub use load::{run_load, LoadReport};
pub use server::{PathServer, ServerConfig};
