//! An open-loop load generator for the wire protocol.
//!
//! [`run_load`] replays a list of statements against a server over one pipelined
//! connection, pacing sends with an [`ArrivalProcess`] schedule (the same open-loop
//! model the in-process service experiments use). A sender thread writes statements at
//! their scheduled offsets while the receiver decodes replies FIFO; each request's
//! latency is *send instant → terminal response frame*, so it includes queueing in the
//! server's admission window — the quantity the batch-policy experiments trade off.

use crate::client::Reply;
use crate::frame::{client_handshake, read_frame, write_frame, FrameError, Request, Response};
use hcsp_workload::ArrivalProcess;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// The outcome of one load run: per-request latencies (request order) and replies.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-request latency, send to terminal frame, in request order.
    pub latencies: Vec<Duration>,
    /// Per-request decoded reply, in request order.
    pub replies: Vec<Reply>,
    /// Wall-clock span of the whole run (first send to last reply).
    pub elapsed: Duration,
}

impl LoadReport {
    /// The `q`-quantile latency (nearest-rank on the sorted latencies), `0.0 ≤ q ≤ 1.0`.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }

    /// Completed requests per second over the run.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.replies.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Replays `statements` against the server at `addr`, pacing sends with `arrivals`.
///
/// Opens one connection; a sender thread sleeps each statement to its scheduled offset
/// and records the send instant, while the calling thread receives replies in order.
/// Returns once every reply has arrived.
pub fn run_load(
    addr: impl ToSocketAddrs,
    statements: &[String],
    arrivals: &ArrivalProcess,
    seed: u64,
) -> Result<LoadReport, FrameError> {
    let mut stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
    client_handshake(&mut stream).map_err(FrameError::Io)?;
    let write_half = stream.try_clone().map_err(FrameError::Io)?;
    let offsets = arrivals.offsets(statements.len(), seed);
    let to_send: Vec<String> = statements.to_vec();

    let (sent_tx, sent_rx) = std::sync::mpsc::channel::<Instant>();
    let sender = std::thread::spawn(move || -> Result<(), FrameError> {
        let mut writer = BufWriter::new(write_half);
        let start = Instant::now();
        for (i, (statement, offset)) in to_send.iter().zip(offsets).enumerate() {
            if let Some(wait) = offset.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let request = Request::Statement {
                id: i as u64 + 1,
                text: statement.clone(),
            };
            write_frame(&mut writer, &request.encode())?;
            writer.flush()?;
            // An open-loop arrival "happens" when its bytes hit the socket.
            if sent_tx.send(Instant::now()).is_err() {
                return Ok(()); // the receiver bailed; stop offering load
            }
        }
        Ok(())
    });

    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(statements.len());
    let mut replies = Vec::with_capacity(statements.len());
    let run_start = Instant::now();
    let result = (|| -> Result<(), FrameError> {
        for _ in 0..statements.len() {
            let sent_at = sent_rx
                .recv()
                .expect("the sender records an instant per request");
            let mut paths: Vec<Vec<u32>> = Vec::new();
            let reply = loop {
                let payload = read_frame(&mut reader, crate::frame::MAX_FRAME_LEN)?;
                match Response::decode(&payload)? {
                    Response::Exists { exists, .. } => break Reply::Exists(exists),
                    Response::Count { count, .. } => break Reply::Count(count),
                    Response::PathChunk { paths: chunk, .. } => paths.extend(chunk),
                    Response::PathsDone { .. } => break Reply::Paths(std::mem::take(&mut paths)),
                    Response::UpdateDone {
                        applied, ignored, ..
                    } => break Reply::Update { applied, ignored },
                    Response::Error { code, message, .. } => break Reply::Error { code, message },
                }
            };
            latencies.push(sent_at.elapsed());
            replies.push(reply);
        }
        Ok(())
    })();
    drop(sent_rx);
    let sender_result = sender.join().expect("load sender must not panic");
    result?;
    sender_result?;
    Ok(LoadReport {
        latencies,
        replies,
        elapsed: run_start.elapsed(),
    })
}
