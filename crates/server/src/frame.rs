//! The wire format: length-prefixed, CRC-framed payloads over a byte stream.
//!
//! ```text
//! handshake   client → server:  "HCSP" [u16 LE min_version] [u16 LE max_version]
//!             server → client:  "HCSP" [u16 LE chosen_version]   (0 = rejected, close)
//! frame       [u32 LE payload_len] [payload bytes] [u32 LE crc32(payload)]
//! payload     [u8 kind] [u64 LE request_id] [body…]
//! ```
//!
//! Every frame is independently verifiable: a flipped bit anywhere in the payload or
//! trailer fails the CRC (the same IEEE polynomial the WAL uses), a damaged length
//! prefix yields a too-large or truncated read — a decoder never acts on damaged bytes.
//! Responses to one request may span several frames: `Collect`/`FirstK` results stream
//! as [`Response::PathChunk`] frames closed by a [`Response::PathsDone`], so a large
//! path set never buffers whole on either side of the connection.

use hcsp_core::QueryResponse;
use hcsp_storage::crc32::crc32;
use std::io::{self, Read, Write};

/// The protocol magic opening both halves of the handshake.
pub const MAGIC: [u8; 4] = *b"HCSP";

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Default cap on a single frame's payload length (requests are statements, so frames
/// beyond this are garbage or abuse, not queries).
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Target number of path vertices per [`Response::PathChunk`] frame: large result sets
/// stream as a sequence of bounded frames instead of one giant buffer.
pub const CHUNK_VERTEX_BUDGET: usize = 8 << 10;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes truncation mid-frame as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// The length prefix exceeds the configured cap; the stream cannot be trusted.
    TooLarge {
        /// The length the prefix claimed.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload failed its CRC: the frame was damaged in flight.
    BadCrc,
    /// The payload parsed structurally but carried an unknown kind or a malformed body.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the cap of {max} bytes")
            }
            FrameError::BadCrc => f.write_str("frame payload failed its CRC32 check"),
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix, payload, CRC trailer) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one frame's payload from `r`, verifying the CRC trailer.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    match read_frame_opt(r, max_len)? {
        Some(payload) => Ok(payload),
        None => Err(FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a frame",
        ))),
    }
}

/// [`read_frame`], but a clean EOF *at a frame boundary* returns `None` (the peer hung
/// up between frames — the normal end of a connection, not an error).
pub fn read_frame_opt(r: &mut impl Read, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean close lands exactly here: zero bytes of the next length prefix.
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    if u32::from_le_bytes(crc_buf) != crc32(&payload) {
        return Err(FrameError::BadCrc);
    }
    Ok(Some(payload))
}

/// Performs the client half of the handshake on `stream`, returning the negotiated
/// version.
pub fn client_handshake(stream: &mut (impl Read + Write)) -> io::Result<u16> {
    let mut hello = Vec::with_capacity(8);
    hello.extend_from_slice(&MAGIC);
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    stream.write_all(&hello)?;
    let mut reply = [0u8; 6];
    stream.read_exact(&mut reply)?;
    if reply[..4] != MAGIC {
        return Err(io::Error::other("server did not speak the HCSP protocol"));
    }
    let version = u16::from_le_bytes([reply[4], reply[5]]);
    if version == 0 {
        return Err(io::Error::other(
            "server rejected the protocol version range",
        ));
    }
    Ok(version)
}

/// Performs the server half of the handshake on `stream`: validates the magic, picks
/// [`PROTOCOL_VERSION`] when the client's range covers it, and replies. Returns the
/// chosen version, or an error when the greeting was not HCSP (the reply `version 0`
/// tells a well-formed client the range was unacceptable).
pub fn server_handshake(stream: &mut (impl Read + Write)) -> io::Result<u16> {
    let mut hello = [0u8; 8];
    stream.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        return Err(io::Error::other("client did not speak the HCSP protocol"));
    }
    let min = u16::from_le_bytes([hello[4], hello[5]]);
    let max = u16::from_le_bytes([hello[6], hello[7]]);
    let chosen = if (min..=max).contains(&PROTOCOL_VERSION) {
        PROTOCOL_VERSION
    } else {
        0
    };
    let mut reply = Vec::with_capacity(6);
    reply.extend_from_slice(&MAGIC);
    reply.extend_from_slice(&chosen.to_le_bytes());
    stream.write_all(&reply)?;
    if chosen == 0 {
        return Err(io::Error::other(format!(
            "no common protocol version (client speaks {min}..={max})"
        )));
    }
    Ok(chosen)
}

// Payload kind tags. Requests are < 0x10, responses >= 0x10.
const KIND_STATEMENT: u8 = 0x01;
const KIND_EXISTS: u8 = 0x10;
const KIND_COUNT: u8 = 0x11;
const KIND_PATH_CHUNK: u8 = 0x12;
const KIND_PATHS_DONE: u8 = 0x13;
const KIND_UPDATE_DONE: u8 = 0x14;
const KIND_ERROR: u8 = 0x1F;

/// Why the server refused a request (the `code` byte of an error frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The statement did not parse; the message carries the parser's diagnosis.
    Parse = 1,
    /// The query names a vertex outside the served graph.
    InvalidEndpoint = 2,
    /// The service is shutting down.
    ShuttingDown = 3,
    /// The service refuses writes (poisoned admission or a latched durable store).
    Poisoned = 4,
    /// The server is at its connection cap; retry later on a new connection.
    Busy = 5,
    /// The request was admitted but its worker died before answering.
    Abandoned = 6,
    /// The frame or payload was structurally invalid.
    Malformed = 7,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Parse,
            2 => ErrorCode::InvalidEndpoint,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::Poisoned,
            5 => ErrorCode::Busy,
            6 => ErrorCode::Abandoned,
            7 => ErrorCode::Malformed,
            _ => return None,
        })
    }
}

/// One decoded request payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A statement of the text query language, to be parsed and planned server-side.
    Statement {
        /// The client-chosen request id, echoed on every response frame.
        id: u64,
        /// The statement text.
        text: String,
    },
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Statement { id, text } => {
                let mut out = Vec::with_capacity(9 + text.len());
                out.push(KIND_STATEMENT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
        }
    }

    /// Decodes a frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        let (kind, id, body) = split_payload(payload)?;
        match kind {
            KIND_STATEMENT => {
                let text = std::str::from_utf8(body)
                    .map_err(|_| FrameError::Malformed("statement is not UTF-8"))?;
                Ok(Request::Statement {
                    id,
                    text: text.to_string(),
                })
            }
            _ => Err(FrameError::Malformed("unknown request kind")),
        }
    }
}

/// One decoded response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to an `EXISTS` statement.
    Exists {
        /// The request id this answers.
        id: u64,
        /// Whether at least one path exists.
        exists: bool,
    },
    /// Answer to a `COUNT` statement.
    Count {
        /// The request id this answers.
        id: u64,
        /// The number of paths (saturated at the statement's `LIMIT`, if any).
        count: u64,
    },
    /// One chunk of a streamed `PATHS` result (zero or more precede a
    /// [`Response::PathsDone`]).
    PathChunk {
        /// The request id this answers.
        id: u64,
        /// The chunk's paths, each a source-to-target vertex sequence.
        paths: Vec<Vec<u32>>,
    },
    /// Terminates a streamed `PATHS` result.
    PathsDone {
        /// The request id this answers.
        id: u64,
        /// Total paths streamed across the preceding chunks.
        total: u64,
    },
    /// Answer to an `INSERT`/`DELETE` statement.
    UpdateDone {
        /// The request id this answers.
        id: u64,
        /// Updates that changed the graph.
        applied: u64,
        /// No-op updates (inserting an existing edge, deleting an absent one).
        ignored: u64,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// The request id this answers (0 when no request could be attributed).
        id: u64,
        /// What failed.
        code: ErrorCode,
        /// Human-readable diagnosis.
        message: String,
    },
}

impl Response {
    /// The request id the response refers to.
    pub fn id(&self) -> u64 {
        match self {
            Response::Exists { id, .. }
            | Response::Count { id, .. }
            | Response::PathChunk { id, .. }
            | Response::PathsDone { id, .. }
            | Response::UpdateDone { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Whether this frame terminates its request (path chunks are the only
    /// continuation frames).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::PathChunk { .. })
    }

    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Exists { id, exists } => {
                out.push(KIND_EXISTS);
                out.extend_from_slice(&id.to_le_bytes());
                out.push(u8::from(*exists));
            }
            Response::Count { id, count } => {
                out.push(KIND_COUNT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            Response::PathChunk { id, paths } => {
                out.push(KIND_PATH_CHUNK);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(paths.len() as u32).to_le_bytes());
                for path in paths {
                    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                    for v in path {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Response::PathsDone { id, total } => {
                out.push(KIND_PATHS_DONE);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
            }
            Response::UpdateDone {
                id,
                applied,
                ignored,
            } => {
                out.push(KIND_UPDATE_DONE);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&applied.to_le_bytes());
                out.extend_from_slice(&ignored.to_le_bytes());
            }
            Response::Error { id, code, message } => {
                out.push(KIND_ERROR);
                out.extend_from_slice(&id.to_le_bytes());
                out.push(*code as u8);
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Response, FrameError> {
        let (kind, id, body) = split_payload(payload)?;
        match kind {
            KIND_EXISTS => match body {
                [0] => Ok(Response::Exists { id, exists: false }),
                [1] => Ok(Response::Exists { id, exists: true }),
                _ => Err(FrameError::Malformed("exists body must be one bool byte")),
            },
            KIND_COUNT => Ok(Response::Count {
                id,
                count: read_u64(body, "count")?,
            }),
            KIND_PATH_CHUNK => {
                let mut cursor = body;
                let num_paths = read_u32_prefix(&mut cursor, "path count")?;
                let mut paths = Vec::new();
                for _ in 0..num_paths {
                    let len = read_u32_prefix(&mut cursor, "path length")? as usize;
                    if cursor.len() < len * 4 {
                        return Err(FrameError::Malformed("path vertices truncated"));
                    }
                    let (raw, rest) = cursor.split_at(len * 4);
                    cursor = rest;
                    paths.push(
                        raw.chunks_exact(4)
                            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                            .collect(),
                    );
                }
                if !cursor.is_empty() {
                    return Err(FrameError::Malformed("trailing bytes after path chunk"));
                }
                Ok(Response::PathChunk { id, paths })
            }
            KIND_PATHS_DONE => Ok(Response::PathsDone {
                id,
                total: read_u64(body, "total")?,
            }),
            KIND_UPDATE_DONE => {
                if body.len() != 16 {
                    return Err(FrameError::Malformed("update body must be 16 bytes"));
                }
                Ok(Response::UpdateDone {
                    id,
                    applied: read_u64(&body[..8], "applied")?,
                    ignored: read_u64(&body[8..], "ignored")?,
                })
            }
            KIND_ERROR => {
                let (&code, message) = body
                    .split_first()
                    .ok_or(FrameError::Malformed("error body missing code"))?;
                let code =
                    ErrorCode::from_u8(code).ok_or(FrameError::Malformed("unknown error code"))?;
                let message = std::str::from_utf8(message)
                    .map_err(|_| FrameError::Malformed("error message is not UTF-8"))?
                    .to_string();
                Ok(Response::Error { id, code, message })
            }
            _ => Err(FrameError::Malformed("unknown response kind")),
        }
    }
}

/// Splits a payload into `(kind, request_id, body)`.
fn split_payload(payload: &[u8]) -> Result<(u8, u64, &[u8]), FrameError> {
    if payload.len() < 9 {
        return Err(FrameError::Malformed("payload shorter than its header"));
    }
    let kind = payload[0];
    let id = u64::from_le_bytes(payload[1..9].try_into().expect("nine-byte header"));
    Ok((kind, id, &payload[9..]))
}

fn read_u64(body: &[u8], what: &'static str) -> Result<u64, FrameError> {
    let bytes: [u8; 8] = body.try_into().map_err(|_| FrameError::Malformed(what))?;
    Ok(u64::from_le_bytes(bytes))
}

fn read_u32_prefix(cursor: &mut &[u8], what: &'static str) -> Result<u32, FrameError> {
    if cursor.len() < 4 {
        return Err(FrameError::Malformed(what));
    }
    let (raw, rest) = cursor.split_at(4);
    *cursor = rest;
    Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
}

/// Renders one executed [`QueryResponse`] as the exact frame sequence the server
/// streams for request `id` — the single source of truth both the server's writer and
/// the byte-identity tests encode with.
///
/// `Exists`/`Count` are one frame; `Paths` is a sequence of [`Response::PathChunk`]
/// frames of at most [`CHUNK_VERTEX_BUDGET`] vertices each (always at least one path
/// per chunk), closed by [`Response::PathsDone`].
pub fn response_frames(id: u64, response: &QueryResponse) -> Vec<Response> {
    match response {
        QueryResponse::Exists(exists) => vec![Response::Exists {
            id,
            exists: *exists,
        }],
        QueryResponse::Count(count) => vec![Response::Count { id, count: *count }],
        QueryResponse::Paths(paths) => {
            let mut frames = Vec::new();
            let mut chunk: Vec<Vec<u32>> = Vec::new();
            let mut chunk_vertices = 0;
            for path in paths.iter() {
                if !chunk.is_empty() && chunk_vertices + path.len() > CHUNK_VERTEX_BUDGET {
                    frames.push(Response::PathChunk {
                        id,
                        paths: std::mem::take(&mut chunk),
                    });
                    chunk_vertices = 0;
                }
                chunk_vertices += path.len();
                chunk.push(path.iter().map(|v| v.0).collect());
            }
            if !chunk.is_empty() {
                frames.push(Response::PathChunk { id, paths: chunk });
            }
            frames.push(Response::PathsDone {
                id,
                total: paths.len() as u64,
            });
            frames
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::PathSet;

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let responses = vec![
            Response::Exists {
                id: 7,
                exists: true,
            },
            Response::Count { id: 8, count: 42 },
            Response::PathChunk {
                id: 9,
                paths: vec![vec![0, 1, 2], vec![0, 3]],
            },
            Response::PathsDone { id: 9, total: 2 },
            Response::UpdateDone {
                id: 10,
                applied: 3,
                ignored: 1,
            },
            Response::Error {
                id: 11,
                code: ErrorCode::Parse,
                message: "expected TO".to_string(),
            },
        ];
        let mut stream = Vec::new();
        for r in &responses {
            write_frame(&mut stream, &r.encode()).unwrap();
        }
        let mut cursor = &stream[..];
        for r in &responses {
            let payload = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
            assert_eq!(&Response::decode(&payload).unwrap(), r);
        }
        assert!(read_frame_opt(&mut cursor, MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }

    #[test]
    fn requests_round_trip() {
        let r = Request::Statement {
            id: 3,
            text: "PATHS FROM 0 TO 5 WITHIN 4".to_string(),
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn oversized_length_prefixes_are_refused() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            read_frame(&mut &stream[..], MAX_FRAME_LEN),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn response_frames_chunk_large_path_sets() {
        let mut paths = PathSet::new();
        let long: Vec<hcsp_graph::VertexId> = (0..100u32).map(hcsp_graph::VertexId).collect();
        for _ in 0..200 {
            paths.push_slice(&long);
        }
        let frames = response_frames(1, &QueryResponse::Paths(paths));
        let chunks = frames.len() - 1;
        assert!(chunks > 1, "20k vertices must split into several chunks");
        let total: usize = frames[..chunks]
            .iter()
            .map(|f| match f {
                Response::PathChunk { paths, .. } => paths.len(),
                _ => panic!("chunk expected"),
            })
            .sum();
        assert_eq!(total, 200);
        assert_eq!(frames[chunks], Response::PathsDone { id: 1, total: 200 });
    }
}
