//! A blocking client for the wire protocol: connect, send statements, read replies.
//!
//! [`Client::request`] is the simple synchronous surface (one statement, one decoded
//! [`Reply`]). The split [`Client::send`] / [`Client::recv`] pair pipelines: send
//! several statements before reading any reply — the server answers each connection's
//! requests in order, so replies come back FIFO. [`Client::request_raw`] returns the
//! raw frame payload bytes, which the integration suite compares byte-for-byte against
//! an in-process oracle.

use crate::frame::{
    client_handshake, read_frame, write_frame, ErrorCode, FrameError, Request, Response,
    MAX_FRAME_LEN,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The decoded answer to one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Answer to `EXISTS`.
    Exists(bool),
    /// Answer to `COUNT`.
    Count(u64),
    /// Answer to `PATHS` (the streamed chunks, reassembled).
    Paths(Vec<Vec<u32>>),
    /// Answer to `INSERT`/`DELETE`.
    Update {
        /// Updates that changed the graph.
        applied: u64,
        /// No-op updates.
        ignored: u64,
    },
    /// The server refused or failed the request; the connection stays usable.
    Error {
        /// Why.
        code: ErrorCode,
        /// The server's diagnosis.
        message: String,
    },
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_len: usize,
}

impl Client {
    /// Connects to a [`crate::PathServer`] and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        client_handshake(&mut stream)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 1,
            max_frame_len: MAX_FRAME_LEN,
        })
    }

    /// Sends one statement without waiting for its reply; returns the request id.
    /// Replies to pipelined statements arrive in send order via [`Client::recv`].
    pub fn send(&mut self, statement: &str) -> Result<u64, FrameError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request::Statement {
            id,
            text: statement.to_string(),
        };
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next reply: all frames up to and including the terminal one, decoded
    /// and reassembled. Returns the request id the reply answers.
    pub fn recv(&mut self) -> Result<(u64, Reply), FrameError> {
        let mut paths: Vec<Vec<u32>> = Vec::new();
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame_len)?;
            let response = Response::decode(&payload)?;
            let id = response.id();
            match response {
                Response::Exists { exists, .. } => return Ok((id, Reply::Exists(exists))),
                Response::Count { count, .. } => return Ok((id, Reply::Count(count))),
                Response::PathChunk { paths: chunk, .. } => paths.extend(chunk),
                Response::PathsDone { total, .. } => {
                    debug_assert_eq!(paths.len() as u64, total, "chunk totals disagree");
                    return Ok((id, Reply::Paths(std::mem::take(&mut paths))));
                }
                Response::UpdateDone {
                    applied, ignored, ..
                } => return Ok((id, Reply::Update { applied, ignored })),
                Response::Error { code, message, .. } => {
                    return Ok((id, Reply::Error { code, message }))
                }
            }
        }
    }

    /// Sends one statement and blocks for its decoded reply.
    pub fn request(&mut self, statement: &str) -> Result<Reply, FrameError> {
        let sent = self.send(statement)?;
        let (id, reply) = self.recv()?;
        debug_assert_eq!(id, sent, "server answered out of order");
        Ok(reply)
    }

    /// Sends one statement and returns the *raw payload bytes* of every response frame
    /// up to and including the terminal one — the byte-identity surface the
    /// integration suite compares against an in-process oracle.
    pub fn request_raw(&mut self, statement: &str) -> Result<Vec<Vec<u8>>, FrameError> {
        self.send(statement)?;
        let mut payloads = Vec::new();
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame_len)?;
            let done = Response::decode(&payload)?.is_terminal();
            payloads.push(payload);
            if done {
                return Ok(payloads);
            }
        }
    }
}
