//! The TCP server: a blocking thread-per-connection front-end over a shared
//! [`PathService`].
//!
//! Each accepted connection performs the protocol handshake and then splits into a
//! *reader* and a *writer* thread joined by a bounded channel:
//!
//! * the reader decodes statement frames, parses them, and admits them into the
//!   service through the **fallible** surface ([`PathService::try_submit_spec`] /
//!   [`PathService::try_update`]) — every refusal becomes an error *frame*, never a
//!   panic inside the serving process;
//! * the writer waits on the admitted handles in request order and streams the
//!   response frames, so responses per connection are FIFO with their requests.
//!
//! The channel's bound is the per-connection in-flight window: once that many requests
//! are admitted but unanswered, the reader blocks and TCP backpressure pushes back on
//! the client. A configurable accept cap bounds the total number of live connections;
//! over-cap connections get a handshake plus one `Busy` error frame, then close.

use crate::frame::{
    read_frame_opt, response_frames, server_handshake, write_frame, ErrorCode, FrameError, Request,
    Response, MAX_FRAME_LEN,
};
use crate::lang::{parse, Statement};
use hcsp_service::{AdmissionError, PathService, SpecHandle, UpdateHandle};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs of a [`PathServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously served connections; further clients are greeted with a
    /// `Busy` error frame and closed.
    pub max_connections: usize,
    /// Per-connection in-flight window: requests admitted into the service but not yet
    /// answered. Once full, the connection's reader blocks (TCP backpressure).
    pub inflight_window: usize,
    /// Cap on a single frame's payload length.
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            inflight_window: 32,
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl ServerConfig {
    /// Returns the config with a connection cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Returns the config with a per-connection in-flight window.
    pub fn inflight_window(mut self, window: usize) -> Self {
        self.inflight_window = window.max(1);
        self
    }
}

/// What the reader hands the writer for one request, in admission order.
enum Work {
    /// An admitted query; the writer waits and streams its response frames.
    Spec { id: u64, handle: SpecHandle },
    /// An admitted update; the writer waits and reports the summary.
    Update { id: u64, handle: UpdateHandle },
    /// A request refused before admission (parse error, invalid endpoint, …).
    Fail {
        id: u64,
        code: ErrorCode,
        message: String,
    },
}

/// A running TCP front-end over a shared [`PathService`].
///
/// Bind with [`PathServer::bind`], connect clients to [`PathServer::local_addr`], stop
/// with [`PathServer::shutdown`] (dropping the server also shuts it down).
pub struct PathServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State shared between the server handle, the accept loop and every connection.
struct Shared {
    service: Arc<PathService>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    live: AtomicUsize,
    next_conn: AtomicU64,
    /// Read-half clones of live connections, so shutdown can unblock blocking reads.
    streams: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl PathServer {
    /// Binds `addr` and starts accepting connections against `service`.
    pub fn bind(
        service: Arc<PathService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<PathServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            service,
            config,
            stop: Arc::clone(&stop),
            live: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            streams: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("hcsp-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(PathServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            shared,
        })
    }

    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, unblocks and joins every connection thread, and returns.
    /// In-flight requests already admitted into the service still complete service-side;
    /// their connections close without a response.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock readers parked in a blocking read.
        for stream in self.shared.streams.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.shared.conn_threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for PathServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(format!("hcsp-conn-{conn_id}"))
            .spawn(move || serve_connection(stream, conn_id, conn_shared));
        match thread {
            Ok(handle) => shared.conn_threads.lock().unwrap().push(handle),
            Err(_) => continue, // spawn failed; the dropped stream closes the socket
        }
    }
}

/// Runs one connection to completion: handshake, cap check, then the reader loop with
/// a writer thread alongside.
fn serve_connection(mut stream: TcpStream, conn_id: u64, shared: Arc<Shared>) {
    if server_handshake(&mut stream).is_err() {
        return;
    }
    // The cap counts connections that passed the handshake; over-cap clients get one
    // well-formed Busy frame so they can tell refusal from failure.
    if shared.live.fetch_add(1, Ordering::SeqCst) >= shared.config.max_connections {
        shared.live.fetch_sub(1, Ordering::SeqCst);
        let busy = Response::Error {
            id: 0,
            code: ErrorCode::Busy,
            message: "server connection cap reached; retry later".to_string(),
        };
        let _ = write_frame(&mut stream, &busy.encode());
        let _ = stream.flush();
        return;
    }
    if let Ok(read_half) = stream.try_clone() {
        shared.streams.lock().unwrap().insert(conn_id, read_half);
    }
    run_connection(stream, &shared);
    shared.streams.lock().unwrap().remove(&conn_id);
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

fn run_connection(stream: TcpStream, shared: &Shared) {
    let write_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let (tx, rx) = sync_channel::<Work>(shared.config.inflight_window.max(1));
    let writer = std::thread::Builder::new()
        .name("hcsp-conn-writer".to_string())
        .spawn(move || write_loop(write_half, rx));
    let writer = match writer {
        Ok(handle) => handle,
        Err(_) => return,
    };
    read_loop(stream, shared, &tx);
    // Dropping the sender lets the writer drain the in-flight window and exit.
    drop(tx);
    let _ = writer.join();
}

/// Decodes and admits requests until the client hangs up, the stream dies, or a frame
/// arrives damaged (after damage the stream cannot be re-synchronised, so the
/// connection closes after a best-effort `Malformed` report).
fn read_loop(stream: TcpStream, shared: &Shared, tx: &SyncSender<Work>) {
    let max_len = shared.config.max_frame_len;
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame_opt(&mut reader, max_len) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean close at a frame boundary
            Err(FrameError::Io(_)) => return,
            Err(err) => {
                let _ = tx.send(Work::Fail {
                    id: 0,
                    code: ErrorCode::Malformed,
                    message: err.to_string(),
                });
                return;
            }
        };
        let (id, text) = match Request::decode(&payload) {
            Ok(Request::Statement { id, text }) => (id, text),
            Err(err) => {
                let _ = tx.send(Work::Fail {
                    id: 0,
                    code: ErrorCode::Malformed,
                    message: err.to_string(),
                });
                return;
            }
        };
        let work = admit(&shared.service, id, &text);
        if tx.send(work).is_err() {
            return; // the writer died (client stopped reading); nothing left to do
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Parses one statement and admits it into the service, mapping every refusal to the
/// error frame the writer will send.
fn admit(service: &PathService, id: u64, text: &str) -> Work {
    let statement = match parse(text) {
        Ok(statement) => statement,
        Err(err) => {
            return Work::Fail {
                id,
                code: ErrorCode::Parse,
                message: err.to_string(),
            }
        }
    };
    match statement {
        Statement::Query(query) => match service.try_submit_spec(query.to_spec()) {
            Ok(handle) => Work::Spec { id, handle },
            Err(err) => refusal(id, err),
        },
        Statement::Update(update) => match service.try_update(vec![update.to_update()]) {
            Ok(handle) => Work::Update { id, handle },
            Err(err) => refusal(id, err),
        },
    }
}

fn refusal(id: u64, err: AdmissionError) -> Work {
    let code = match err {
        AdmissionError::InvalidEndpoint { .. } => ErrorCode::InvalidEndpoint,
        AdmissionError::ShuttingDown => ErrorCode::ShuttingDown,
        AdmissionError::Poisoned => ErrorCode::Poisoned,
    };
    Work::Fail {
        id,
        code,
        message: err.to_string(),
    }
}

/// Streams response frames in request order until the work channel closes or the
/// socket dies.
fn write_loop(stream: TcpStream, rx: Receiver<Work>) {
    let mut writer = BufWriter::new(stream);
    for work in rx {
        let frames = match work {
            Work::Spec { id, handle } => match handle.wait_result() {
                Ok(result) => response_frames(id, &result.response),
                Err(_) => vec![Response::Error {
                    id,
                    code: ErrorCode::Abandoned,
                    message: "the worker executing this query died".to_string(),
                }],
            },
            Work::Update { id, handle } => match handle.wait_result() {
                Ok(summary) => vec![Response::UpdateDone {
                    id,
                    applied: summary.applied as u64,
                    ignored: summary.ignored as u64,
                }],
                Err(_) => vec![Response::Error {
                    id,
                    code: ErrorCode::Abandoned,
                    message: "the service failed while publishing this update".to_string(),
                }],
            },
            Work::Fail { id, code, message } => vec![Response::Error { id, code, message }],
        };
        for frame in frames {
            if write_frame(&mut writer, &frame.encode()).is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
}
