//! The text query language: a hand-rolled tokenizer and recursive-descent parser for
//! the statements the server accepts, plus the compiler from the typed AST into the
//! service's [`QuerySpec`]/[`GraphUpdate`] requests.
//!
//! Grammar (keywords case-insensitive, vertices decimal `u32`):
//!
//! ```text
//! statement :=   PATHS  FROM v TO v WITHIN k [LIMIT n]
//!              | EXISTS FROM v TO v WITHIN k
//!              | COUNT  FROM v TO v WITHIN k [LIMIT n]
//!              | INSERT EDGE v v
//!              | DELETE EDGE v v
//! ```
//!
//! `PATHS … LIMIT n` compiles to a `FirstK(n)` spec, plain `PATHS` to `Collect`,
//! `COUNT … LIMIT n` to a path-budgeted count. `EXISTS` takes no `LIMIT` (it answers
//! after the first witness regardless), and `LIMIT 0` is rejected at parse time — both
//! would otherwise silently mean something else.
//!
//! [`Statement`]'s `Display` renders the canonical form (uppercase keywords, single
//! spaces), and `parse(s.to_string())` round-trips for every valid statement — the
//! property the `prop_server` suite pins down.

use hcsp_core::{PathQuery, QuerySpec};
use hcsp_graph::{GraphUpdate, VertexId};
use std::fmt;

/// Where in the statement a parse error was detected (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token (or end of input).
    pub position: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed statement: either a query to plan or a graph update to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A hop-constrained path query.
    Query(QueryStatement),
    /// A single-edge graph mutation.
    Update(UpdateStatement),
}

/// The query half of the language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStatement {
    /// Which answer shape the client asked for.
    pub verb: QueryVerb,
    /// Source vertex `s`.
    pub source: u32,
    /// Target vertex `t`.
    pub target: u32,
    /// Hop constraint `k`.
    pub within: u32,
    /// Optional result cap (`None` for unbounded; never `Some(0)`).
    pub limit: Option<u64>,
}

/// The verb of a [`QueryStatement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVerb {
    /// Enumerate the paths themselves.
    Paths,
    /// Ask only whether any path exists.
    Exists,
    /// Ask only how many paths exist.
    Count,
}

/// The update half of the language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateStatement {
    /// Insert or delete.
    pub op: UpdateOp,
    /// Edge source.
    pub source: u32,
    /// Edge target.
    pub target: u32,
}

/// The operation of an [`UpdateStatement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `INSERT EDGE u v`.
    Insert,
    /// `DELETE EDGE u v`.
    Delete,
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => {
                let verb = match q.verb {
                    QueryVerb::Paths => "PATHS",
                    QueryVerb::Exists => "EXISTS",
                    QueryVerb::Count => "COUNT",
                };
                write!(
                    f,
                    "{verb} FROM {} TO {} WITHIN {}",
                    q.source, q.target, q.within
                )?;
                if let Some(limit) = q.limit {
                    write!(f, " LIMIT {limit}")?;
                }
                Ok(())
            }
            Statement::Update(u) => {
                let op = match u.op {
                    UpdateOp::Insert => "INSERT",
                    UpdateOp::Delete => "DELETE",
                };
                write!(f, "{op} EDGE {} {}", u.source, u.target)
            }
        }
    }
}

impl std::str::FromStr for Statement {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Statement, ParseError> {
        parse(s)
    }
}

impl QueryStatement {
    /// Compiles the query into the engine's typed request.
    pub fn to_spec(&self) -> QuerySpec {
        let query = PathQuery::new(self.source, self.target, self.within);
        match (self.verb, self.limit) {
            (QueryVerb::Paths, Some(k)) => QuerySpec::first_k(query, k as usize),
            (QueryVerb::Paths, None) => QuerySpec::collect(query),
            (QueryVerb::Exists, _) => QuerySpec::exists(query),
            (QueryVerb::Count, Some(budget)) => QuerySpec::count(query).with_path_budget(budget),
            (QueryVerb::Count, None) => QuerySpec::count(query),
        }
    }
}

impl UpdateStatement {
    /// Compiles the update into the graph's typed delta.
    pub fn to_update(&self) -> GraphUpdate {
        let (u, v) = (VertexId(self.source), VertexId(self.target));
        match self.op {
            UpdateOp::Insert => GraphUpdate::Insert(u, v),
            UpdateOp::Delete => GraphUpdate::Delete(u, v),
        }
    }
}

/// One token with the byte offset it started at.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Number(u64),
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    fn next_token(&mut self) -> Result<Option<(usize, Token)>, ParseError> {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = bytes[self.pos];
        if c.is_ascii_digit() {
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            let value = raw.parse::<u64>().map_err(|_| ParseError {
                position: start,
                message: format!("number `{raw}` does not fit in 64 bits"),
            })?;
            Ok(Some((start, Token::Number(value))))
        } else if c.is_ascii_alphabetic() {
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_alphabetic() {
                self.pos += 1;
            }
            Ok(Some((
                start,
                Token::Word(self.input[start..self.pos].to_ascii_uppercase()),
            )))
        } else {
            Err(ParseError {
                position: start,
                message: format!(
                    "unexpected character `{}`",
                    &self.input[start..].chars().next().expect("non-empty")
                ),
            })
        }
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Token)> {
        self.tokens.get(self.cursor)
    }

    fn here(&self) -> usize {
        self.peek().map_or(self.end, |(pos, _)| *pos)
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some((_, Token::Word(w))) if w == keyword => {
                self.cursor += 1;
                Ok(())
            }
            Some((pos, token)) => Err(ParseError {
                position: *pos,
                message: format!("expected `{keyword}`, found {}", describe(token)),
            }),
            None => Err(ParseError {
                position: self.end,
                message: format!("expected `{keyword}`, found end of statement"),
            }),
        }
    }

    fn expect_vertex(&mut self, what: &str) -> Result<u32, ParseError> {
        match self.peek() {
            Some((pos, Token::Number(n))) => {
                let pos = *pos;
                let n = *n;
                self.cursor += 1;
                u32::try_from(n).map_err(|_| ParseError {
                    position: pos,
                    message: format!("{what} `{n}` does not fit in a 32-bit vertex id"),
                })
            }
            Some((pos, token)) => Err(ParseError {
                position: *pos,
                message: format!("expected a {what}, found {}", describe(token)),
            }),
            None => Err(ParseError {
                position: self.end,
                message: format!("expected a {what}, found end of statement"),
            }),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some((pos, token)) => Err(ParseError {
                position: *pos,
                message: format!("unexpected {} after the statement", describe(token)),
            }),
        }
    }
}

fn describe(token: &Token) -> String {
    match token {
        Token::Word(w) => format!("`{w}`"),
        Token::Number(n) => format!("number `{n}`"),
    }
}

/// Parses one statement of the language.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let mut tokenizer = Tokenizer::new(input);
    let mut tokens = Vec::new();
    while let Some(token) = tokenizer.next_token()? {
        tokens.push(token);
    }
    let mut parser = Parser {
        tokens,
        cursor: 0,
        end: input.len(),
    };
    let statement = match parser.peek() {
        Some((_, Token::Word(w))) => match w.as_str() {
            "PATHS" => parse_query(&mut parser, QueryVerb::Paths)?,
            "EXISTS" => parse_query(&mut parser, QueryVerb::Exists)?,
            "COUNT" => parse_query(&mut parser, QueryVerb::Count)?,
            "INSERT" => parse_update(&mut parser, UpdateOp::Insert)?,
            "DELETE" => parse_update(&mut parser, UpdateOp::Delete)?,
            other => {
                return Err(ParseError {
                    position: parser.here(),
                    message: format!(
                        "expected `PATHS`, `EXISTS`, `COUNT`, `INSERT` or `DELETE`, found `{other}`"
                    ),
                })
            }
        },
        Some((pos, token)) => {
            return Err(ParseError {
                position: *pos,
                message: format!("expected a statement keyword, found {}", describe(token)),
            })
        }
        None => {
            return Err(ParseError {
                position: parser.end,
                message: "empty statement".to_string(),
            })
        }
    };
    parser.expect_end()?;
    Ok(statement)
}

fn parse_query(parser: &mut Parser, verb: QueryVerb) -> Result<Statement, ParseError> {
    parser.cursor += 1; // the verb keyword, already matched
    parser.expect_keyword("FROM")?;
    let source = parser.expect_vertex("source vertex")?;
    parser.expect_keyword("TO")?;
    let target = parser.expect_vertex("target vertex")?;
    parser.expect_keyword("WITHIN")?;
    let within = parser.expect_vertex("hop bound")?;
    let limit = match parser.peek() {
        Some((pos, Token::Word(w))) if w == "LIMIT" => {
            let limit_pos = *pos;
            if verb == QueryVerb::Exists {
                return Err(ParseError {
                    position: limit_pos,
                    message: "`EXISTS` takes no `LIMIT` (it stops at the first witness)"
                        .to_string(),
                });
            }
            parser.cursor += 1;
            match parser.peek() {
                Some((pos, Token::Number(0))) => {
                    return Err(ParseError {
                        position: *pos,
                        message: "`LIMIT 0` is not a query; ask `EXISTS` or `COUNT` instead"
                            .to_string(),
                    })
                }
                Some((_, Token::Number(n))) => {
                    let n = *n;
                    parser.cursor += 1;
                    Some(n)
                }
                Some((pos, token)) => {
                    return Err(ParseError {
                        position: *pos,
                        message: format!("expected a limit, found {}", describe(token)),
                    })
                }
                None => {
                    return Err(ParseError {
                        position: parser.end,
                        message: "expected a limit, found end of statement".to_string(),
                    })
                }
            }
        }
        _ => None,
    };
    Ok(Statement::Query(QueryStatement {
        verb,
        source,
        target,
        within,
        limit,
    }))
}

fn parse_update(parser: &mut Parser, op: UpdateOp) -> Result<Statement, ParseError> {
    parser.cursor += 1; // the op keyword, already matched
    parser.expect_keyword("EDGE")?;
    let source = parser.expect_vertex("edge source")?;
    let target = parser.expect_vertex("edge target")?;
    Ok(Statement::Update(UpdateStatement { op, source, target }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::ResultMode;

    fn q(input: &str) -> QueryStatement {
        match parse(input).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn the_five_statement_forms_parse() {
        assert_eq!(
            q("PATHS FROM 0 TO 5 WITHIN 4"),
            QueryStatement {
                verb: QueryVerb::Paths,
                source: 0,
                target: 5,
                within: 4,
                limit: None,
            }
        );
        assert_eq!(q("paths from 0 to 5 within 4 limit 10").limit, Some(10));
        assert_eq!(q("EXISTS FROM 1 TO 2 WITHIN 3").verb, QueryVerb::Exists);
        assert_eq!(q("COUNT FROM 1 TO 2 WITHIN 3 LIMIT 7").limit, Some(7));
        assert_eq!(
            parse("INSERT EDGE 3 4").unwrap(),
            Statement::Update(UpdateStatement {
                op: UpdateOp::Insert,
                source: 3,
                target: 4,
            })
        );
        assert_eq!(
            parse("delete edge 4 3").unwrap(),
            Statement::Update(UpdateStatement {
                op: UpdateOp::Delete,
                source: 4,
                target: 3,
            })
        );
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for input in [
            "  paths   from 0 to 5 within 4  ",
            "EXISTS FROM 1 TO 2 WITHIN 3",
            "count from 9 to 8 within 7 limit 6",
            "Insert Edge 3 4",
        ] {
            let parsed = parse(input).unwrap();
            assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
        }
        assert_eq!(
            parse("  paths   from 0 to 5 within 4 limit 2 ")
                .unwrap()
                .to_string(),
            "PATHS FROM 0 TO 5 WITHIN 4 LIMIT 2"
        );
    }

    #[test]
    fn compile_picks_the_result_mode_from_verb_and_limit() {
        assert_eq!(
            q("PATHS FROM 0 TO 5 WITHIN 4").to_spec().mode,
            ResultMode::Collect
        );
        assert_eq!(
            q("PATHS FROM 0 TO 5 WITHIN 4 LIMIT 3").to_spec().mode,
            ResultMode::FirstK(3)
        );
        assert_eq!(
            q("EXISTS FROM 0 TO 5 WITHIN 4").to_spec().mode,
            ResultMode::Exists
        );
        let counted = q("COUNT FROM 0 TO 5 WITHIN 4 LIMIT 9").to_spec();
        assert_eq!(counted.mode, ResultMode::Count);
        assert_eq!(counted.path_budget, Some(9));
    }

    #[test]
    fn errors_point_at_the_offending_byte() {
        let err = parse("PATHS FROM 0 TO x WITHIN 4").unwrap_err();
        assert_eq!(err.position, 16);
        assert!(err.message.contains("target vertex"), "{}", err.message);

        let err = parse("EXISTS FROM 0 TO 1 WITHIN 2 LIMIT 3").unwrap_err();
        assert!(err.message.contains("no `LIMIT`"), "{}", err.message);

        let err = parse("PATHS FROM 0 TO 1 WITHIN 2 LIMIT 0").unwrap_err();
        assert!(err.message.contains("LIMIT 0"), "{}", err.message);

        let err = parse("PATHS FROM 0 TO 1").unwrap_err();
        assert!(err.message.contains("WITHIN"), "{}", err.message);

        assert!(parse("").is_err());
        assert!(parse("PATHS FROM 0 TO 1 WITHIN 2 EXTRA").is_err());
        assert!(parse("PATHS FROM 0 TO 1 WITHIN 2 # comment").is_err());
        assert!(parse("DROP TABLE paths").is_err());
    }

    #[test]
    fn vertex_ids_must_fit_in_u32() {
        let err = parse("PATHS FROM 4294967296 TO 1 WITHIN 2").unwrap_err();
        assert!(err.message.contains("32-bit"), "{}", err.message);
        // But limits are u64 and may exceed it.
        assert_eq!(
            q("PATHS FROM 0 TO 1 WITHIN 2 LIMIT 4294967296").limit,
            Some(1 << 32)
        );
    }
}
