//! Induced-subgraph sampling for the scalability experiment (Exp-5 / Fig. 11).
//!
//! The paper samples 20 %–100 % of the vertices (and, analogously, edges) of the two
//! billion-scale graphs and measures processing time on the induced subgraphs. Sampled
//! vertices are relabelled densely so the result is again a standalone [`DiGraph`]; the
//! mapping back to the original ids is returned alongside.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The result of a sampling operation: the induced subgraph plus the id mapping.
#[derive(Debug, Clone)]
pub struct SampledGraph {
    /// The induced subgraph with densely relabelled vertices.
    pub graph: DiGraph,
    /// `original_of[new_id] = old_id` in the source graph.
    pub original_of: Vec<VertexId>,
    /// `new_of[old_id] = Some(new_id)` for kept vertices.
    pub new_of: Vec<Option<VertexId>>,
}

impl SampledGraph {
    /// Maps a vertex of the sampled graph back to the original graph.
    pub fn to_original(&self, v: VertexId) -> VertexId {
        self.original_of[v.index()]
    }

    /// Maps an original vertex into the sampled graph if it was kept.
    pub fn to_sampled(&self, v: VertexId) -> Option<VertexId> {
        self.new_of[v.index()]
    }
}

/// Samples `ratio` of the vertices uniformly at random and returns the induced subgraph.
///
/// `ratio` must lie in `(0, 1]`; `1.0` returns a relabel-identity copy, which is convenient
/// for sweeping 20 %, 40 %, …, 100 % with one code path as Fig. 11 does.
pub fn sample_vertices(graph: &DiGraph, ratio: f64, seed: u64) -> Result<SampledGraph> {
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(GraphError::InvalidParameter(format!(
            "ratio must be in (0,1], got {ratio}"
        )));
    }
    let n = graph.num_vertices();
    let keep = ((n as f64 * ratio).round() as usize).clamp(usize::from(n > 0), n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<VertexId> = graph.vertices().collect();
    ids.shuffle(&mut rng);
    ids.truncate(keep);
    ids.sort_unstable();
    build_induced(graph, &ids)
}

/// Samples `ratio` of the edges uniformly at random; the vertex set is unchanged.
pub fn sample_edges(graph: &DiGraph, ratio: f64, seed: u64) -> Result<DiGraph> {
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(GraphError::InvalidParameter(format!(
            "ratio must be in (0,1], got {ratio}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(
        graph.num_vertices(),
        (graph.num_edges() as f64 * ratio) as usize + 1,
    );
    builder.reserve_vertices(graph.num_vertices());
    for (u, v) in graph.edges() {
        if rng.gen_bool(ratio) {
            builder.add_edge(u, v);
        }
    }
    Ok(builder.build())
}

/// Builds the subgraph induced by an explicit (sorted, deduplicated) vertex list.
pub fn build_induced(graph: &DiGraph, kept: &[VertexId]) -> Result<SampledGraph> {
    for &v in kept {
        if v.index() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfBounds {
                vertex: v.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
    }
    let mut new_of: Vec<Option<VertexId>> = vec![None; graph.num_vertices()];
    let mut original_of = Vec::with_capacity(kept.len());
    for (new_id, &old) in kept.iter().enumerate() {
        new_of[old.index()] = Some(VertexId::new(new_id));
        original_of.push(old);
    }
    let mut builder = GraphBuilder::with_capacity(kept.len(), graph.num_edges());
    builder.reserve_vertices(kept.len());
    for &old_u in kept {
        let Some(new_u) = new_of[old_u.index()] else {
            continue;
        };
        for &old_v in graph.out_neighbors(old_u) {
            if let Some(new_v) = new_of[old_v.index()] {
                builder.add_edge(new_u, new_v);
            }
        }
    }
    Ok(SampledGraph {
        graph: builder.build(),
        original_of,
        new_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::{complete, grid};

    #[test]
    fn full_ratio_preserves_structure() {
        let g = grid(4, 4);
        let s = sample_vertices(&g, 1.0, 3).unwrap();
        assert_eq!(s.graph.num_vertices(), g.num_vertices());
        assert_eq!(s.graph.num_edges(), g.num_edges());
        // Identity relabelling because kept ids are sorted.
        for v in g.vertices() {
            assert_eq!(s.to_original(v), v);
            assert_eq!(s.to_sampled(v), Some(v));
        }
    }

    #[test]
    fn half_ratio_halves_vertices() {
        let g = complete(40);
        let s = sample_vertices(&g, 0.5, 9).unwrap();
        assert_eq!(s.graph.num_vertices(), 20);
        // Induced complete subgraph stays complete.
        assert_eq!(s.graph.num_edges(), 20 * 19);
    }

    #[test]
    fn induced_edges_map_back_to_original_edges() {
        let g = grid(5, 5);
        let s = sample_vertices(&g, 0.6, 11).unwrap();
        for (u, v) in s.graph.edges() {
            assert!(g.has_edge(s.to_original(u), s.to_original(v)));
        }
    }

    #[test]
    fn edge_sampling_keeps_vertex_count() {
        let g = complete(20);
        let sampled = sample_edges(&g, 0.3, 5).unwrap();
        assert_eq!(sampled.num_vertices(), 20);
        assert!(sampled.num_edges() < g.num_edges());
        assert!(sampled.num_edges() > 0);
        for (u, v) in sampled.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn invalid_ratios_are_rejected() {
        let g = complete(5);
        assert!(sample_vertices(&g, 0.0, 1).is_err());
        assert!(sample_vertices(&g, 1.5, 1).is_err());
        assert!(sample_edges(&g, -0.2, 1).is_err());
    }

    #[test]
    fn build_induced_validates_vertices() {
        let g = complete(4);
        assert!(build_induced(&g, &[VertexId(9)]).is_err());
        let s = build_induced(&g, &[VertexId(1), VertexId(3)]).unwrap();
        assert_eq!(s.graph.num_vertices(), 2);
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.to_original(VertexId(0)), VertexId(1));
        assert_eq!(s.to_sampled(VertexId(3)), Some(VertexId(1)));
        assert_eq!(s.to_sampled(VertexId(0)), None);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = grid(6, 6);
        assert_eq!(
            sample_vertices(&g, 0.4, 77).unwrap().original_of,
            sample_vertices(&g, 0.4, 77).unwrap().original_of
        );
    }
}
