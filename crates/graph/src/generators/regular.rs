//! Deterministic regular graph families.
//!
//! These structured graphs have path counts that are easy to reason about by hand, which
//! makes them the backbone of the unit/integration test suites: a layered DAG has exactly
//! `w^(l-1)` s-t paths, a complete digraph has `sum_{i} P(n-2, i)` bounded-length simple
//! paths, a cycle has exactly one, and so on.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// Directed path `0 -> 1 -> … -> n-1`.
pub fn path(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.reserve_vertices(n);
    for i in 1..n {
        b.add_edge(VertexId::new(i - 1), VertexId::new(i));
    }
    b.build()
}

/// Directed cycle `0 -> 1 -> … -> n-1 -> 0`.
pub fn cycle(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    b.reserve_vertices(n);
    if n >= 2 {
        for i in 0..n {
            b.add_edge(VertexId::new(i), VertexId::new((i + 1) % n));
        }
    }
    b.build()
}

/// Complete digraph on `n` vertices (every ordered pair distinct vertices).
pub fn complete(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1));
    b.reserve_vertices(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(VertexId::new(u), VertexId::new(v));
            }
        }
    }
    b.build()
}

/// `rows × cols` grid with edges pointing right and down (a DAG).
///
/// Vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> DiGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    b.reserve_vertices(n);
    for r in 0..rows {
        for c in 0..cols {
            let id = VertexId::new(r * cols + c);
            if c + 1 < cols {
                b.add_edge(id, VertexId::new(r * cols + c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id, VertexId::new((r + 1) * cols + c));
            }
        }
    }
    b.build()
}

/// Star graph: the hub (vertex 0) points to every leaf and every leaf points back.
pub fn star(leaves: usize) -> DiGraph {
    let n = leaves + 1;
    let mut b = GraphBuilder::with_capacity(n, 2 * leaves);
    b.reserve_vertices(n);
    for leaf in 1..n {
        b.add_edge(VertexId::new(0), VertexId::new(leaf));
        b.add_edge(VertexId::new(leaf), VertexId::new(0));
    }
    b.build()
}

/// Layered DAG: `layers` layers of `width` vertices, a dedicated source before the first
/// layer and a dedicated sink after the last, with complete bipartite connections between
/// consecutive layers.
///
/// The number of source→sink simple paths is exactly `width^layers`, and every such path
/// has `layers + 1` hops — a precise ground truth for enumeration tests.
pub fn layered_dag(layers: usize, width: usize) -> DiGraph {
    let n = layers * width + 2;
    let source = VertexId::new(0);
    let sink = VertexId::new(n - 1);
    let vertex_at = |layer: usize, pos: usize| VertexId::new(1 + layer * width + pos);
    let mut b = GraphBuilder::with_capacity(n, width * width * layers + 2 * width);
    b.reserve_vertices(n);
    if layers == 0 || width == 0 {
        b.add_edge(source, sink);
        return b.build();
    }
    for pos in 0..width {
        b.add_edge(source, vertex_at(0, pos));
        b.add_edge(vertex_at(layers - 1, pos), sink);
    }
    for layer in 1..layers {
        for from in 0..width {
            for to in 0..width {
                b.add_edge(vertex_at(layer - 1, from), vertex_at(layer, to));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Direction;
    use crate::traversal::{hop_distance, reachable_count};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(4)), Some(4));
        assert_eq!(hop_distance(&g, VertexId(4), VertexId(0)), None);
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(hop_distance(&g, VertexId(3), VertexId(2)), Some(5));
        assert_eq!(reachable_count(&g, VertexId(0), Direction::Forward), 6);
        // A single vertex cannot form a directed cycle without a self loop.
        assert_eq!(cycle(1).num_edges(), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        assert!(g
            .vertices()
            .all(|v| g.out_degree(v) == 4 && g.in_degree(v) == 4));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Horizontal: 3 rows * 3, vertical: 2 rows * 4.
        assert_eq!(g.num_edges(), 9 + 8);
        // Manhattan distance from corner to corner.
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(11)), Some(5));
    }

    #[test]
    fn star_shape() {
        let g = star(4);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degree(VertexId(0)), 4);
        assert_eq!(g.in_degree(VertexId(0)), 4);
    }

    #[test]
    fn layered_dag_shape() {
        let g = layered_dag(3, 2);
        assert_eq!(g.num_vertices(), 3 * 2 + 2);
        let sink = VertexId::new(g.num_vertices() - 1);
        assert_eq!(hop_distance(&g, VertexId(0), sink), Some(4));
        // Degenerate widths collapse to a single source->sink edge.
        let tiny = layered_dag(0, 3);
        assert_eq!(tiny.num_edges(), 1);
    }
}
