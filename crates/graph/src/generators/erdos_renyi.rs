//! Erdős–Rényi random directed graphs.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::generators::random_vertex;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a `G(n, m)` directed graph: `m` edges drawn uniformly at random (without self
/// loops; parallel edges collapse during CSR construction, so the final edge count can be
/// slightly below `m` on dense parameterisations).
pub fn gnm_random(n: usize, m: usize, seed: u64) -> Result<DiGraph> {
    if n == 0 && m > 0 {
        return Err(GraphError::InvalidParameter(
            "cannot place edges in an empty graph".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m).skip_self_loops(true);
    builder.reserve_vertices(n);
    if n > 1 {
        let mut placed = 0usize;
        // Allow a bounded number of retries so extremely dense requests still terminate.
        let mut attempts = 0usize;
        let max_attempts = m.saturating_mul(4).max(16);
        while placed < m && attempts < max_attempts {
            attempts += 1;
            let u = random_vertex(&mut rng, n);
            let v = random_vertex(&mut rng, n);
            if u == v {
                continue;
            }
            builder.add_edge(u, v);
            placed += 1;
        }
    }
    Ok(builder.build())
}

/// Generates a `G(n, p)` directed graph: every ordered pair `(u, v)`, `u != v`, becomes an
/// edge independently with probability `p`.
///
/// Intended for small graphs (tests, examples); for large sparse graphs use [`gnm_random`],
/// which is `O(m)` instead of `O(n^2)`.
pub fn gnp_random(n: usize, p: f64, seed: u64) -> Result<DiGraph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!(
            "p must be in [0,1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, ((n * n) as f64 * p) as usize);
    builder.reserve_vertices(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                builder.add_edge(crate::VertexId::new(u), crate::VertexId::new(v));
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_requested_shape() {
        let g = gnm_random(100, 500, 7).unwrap();
        assert_eq!(g.num_vertices(), 100);
        // Duplicates may collapse but the count must stay close to the request.
        assert!(
            g.num_edges() > 400 && g.num_edges() <= 500,
            "edges = {}",
            g.num_edges()
        );
        // No self loops.
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm_random(50, 200, 42).unwrap();
        let b = gnm_random(50, 200, 42).unwrap();
        let c = gnm_random(50, 200, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_rejects_edges_on_empty_graph() {
        assert!(gnm_random(0, 5, 1).is_err());
        assert_eq!(gnm_random(0, 0, 1).unwrap().num_vertices(), 0);
        // A single vertex cannot host non-loop edges; generator still terminates.
        assert_eq!(gnm_random(1, 10, 1).unwrap().num_edges(), 0);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let sparse = gnp_random(60, 0.01, 3).unwrap();
        let dense = gnp_random(60, 0.3, 3).unwrap();
        assert!(dense.num_edges() > sparse.num_edges());
        assert!(gnp_random(10, 1.5, 0).is_err());
        assert!(gnp_random(10, -0.1, 0).is_err());
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let g = gnp_random(8, 1.0, 9).unwrap();
        assert_eq!(g.num_edges(), 8 * 7);
    }
}
