//! Directed preferential attachment (Barabási–Albert style).
//!
//! Social graphs such as Epinions, Slashdot, Pokec, LiveJournal, Twitter-2010 and
//! Friendster — the bulk of the paper's Table I — have heavy-tailed degree distributions
//! with a few extremely high-degree hubs (d_max up to ~3 M for Twitter). Preferential
//! attachment reproduces that skew: new vertices attach to existing vertices with
//! probability proportional to their current degree, and each attachment adds edges in
//! both directions with configurable probability, controlling reciprocity.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`preferential_attachment`].
#[derive(Debug, Clone, Copy)]
pub struct PreferentialConfig {
    /// Number of vertices to generate.
    pub num_vertices: usize,
    /// Out-edges added by each arriving vertex (the classic BA `m` parameter).
    pub edges_per_vertex: usize,
    /// Probability that an attachment also adds the reciprocal edge, mimicking the mutual
    /// follow/friend edges of social networks (Friendster is close to symmetric, Twitter is
    /// not).
    pub reciprocity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PreferentialConfig {
    fn default() -> Self {
        PreferentialConfig {
            num_vertices: 1000,
            edges_per_vertex: 4,
            reciprocity: 0.3,
            seed: 0,
        }
    }
}

/// Generates a directed scale-free graph by preferential attachment.
///
/// The implementation keeps a "repeated endpoints" list in which every vertex appears once
/// per incident edge, so sampling an element uniformly is sampling proportionally to
/// degree — the standard `O(m)` BA construction.
pub fn preferential_attachment(config: PreferentialConfig) -> Result<DiGraph> {
    let PreferentialConfig {
        num_vertices,
        edges_per_vertex,
        reciprocity,
        seed,
    } = config;
    if !(0.0..=1.0).contains(&reciprocity) {
        return Err(GraphError::InvalidParameter(format!(
            "reciprocity must be in [0,1], got {reciprocity}"
        )));
    }
    if num_vertices > 0 && edges_per_vertex == 0 {
        return Err(GraphError::InvalidParameter(
            "edges_per_vertex must be >= 1".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder =
        GraphBuilder::with_capacity(num_vertices, num_vertices * edges_per_vertex * 2)
            .skip_self_loops(true);
    builder.reserve_vertices(num_vertices);

    if num_vertices == 0 {
        return Ok(builder.build());
    }

    // Seed clique among the first `m0 = edges_per_vertex + 1` vertices (a small directed
    // cycle keeps the seed strongly connected, which avoids degenerate unreachable tails).
    let m0 = (edges_per_vertex + 1).min(num_vertices);
    let mut endpoint_pool: Vec<VertexId> = Vec::with_capacity(num_vertices * edges_per_vertex);
    for i in 0..m0 {
        let u = VertexId::new(i);
        let v = VertexId::new((i + 1) % m0);
        if u != v {
            builder.add_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    for i in m0..num_vertices {
        let newcomer = VertexId::new(i);
        let mut chosen: Vec<VertexId> = Vec::with_capacity(edges_per_vertex);
        let mut guard = 0;
        while chosen.len() < edges_per_vertex && guard < edges_per_vertex * 16 {
            guard += 1;
            let target = if endpoint_pool.is_empty() {
                VertexId::new(rng.gen_range(0..i))
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if target != newcomer && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for target in chosen {
            builder.add_edge(newcomer, target);
            endpoint_pool.push(newcomer);
            endpoint_pool.push(target);
            if rng.gen_bool(reciprocity) {
                builder.add_edge(target, newcomer);
                endpoint_pool.push(target);
                endpoint_pool.push(newcomer);
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphStats;

    #[test]
    fn generates_requested_size_and_skew() {
        let g = preferential_attachment(PreferentialConfig {
            num_vertices: 2000,
            edges_per_vertex: 5,
            reciprocity: 0.2,
            seed: 11,
        })
        .unwrap();
        assert_eq!(g.num_vertices(), 2000);
        let stats = GraphStats::compute(&g);
        // Scale-free graphs have hubs: the attachment targets accumulate in-degree far
        // beyond the average total degree.
        assert!(
            stats.max_in_degree as f64 > 4.0 * stats.avg_degree,
            "{stats:?}"
        );
        assert!(
            stats.max_degree as f64 > 4.0 * stats.avg_degree,
            "{stats:?}"
        );
        assert!(g.num_edges() >= 2000 * 5 / 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PreferentialConfig {
            num_vertices: 300,
            edges_per_vertex: 3,
            reciprocity: 0.5,
            seed: 9,
        };
        assert_eq!(
            preferential_attachment(cfg).unwrap(),
            preferential_attachment(cfg).unwrap()
        );
        let other = PreferentialConfig { seed: 10, ..cfg };
        assert_ne!(
            preferential_attachment(cfg).unwrap(),
            preferential_attachment(other).unwrap()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(preferential_attachment(PreferentialConfig {
            reciprocity: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(preferential_attachment(PreferentialConfig {
            num_vertices: 10,
            edges_per_vertex: 0,
            reciprocity: 0.0,
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn tiny_graphs_work() {
        let g = preferential_attachment(PreferentialConfig {
            num_vertices: 1,
            edges_per_vertex: 2,
            reciprocity: 0.0,
            seed: 0,
        })
        .unwrap();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
        let empty = preferential_attachment(PreferentialConfig {
            num_vertices: 0,
            edges_per_vertex: 2,
            reciprocity: 0.0,
            seed: 0,
        })
        .unwrap();
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn no_self_loops() {
        let g = preferential_attachment(PreferentialConfig {
            num_vertices: 500,
            edges_per_vertex: 4,
            reciprocity: 0.4,
            seed: 3,
        })
        .unwrap();
        assert!(g.edges().all(|(u, v)| u != v));
    }
}
