//! Deterministic random and regular graph generators.
//!
//! The paper evaluates on twelve real-world graphs downloaded from SNAP, LAW and
//! NetworkRepository (Table I). Those downloads are not available in this environment, so
//! the workload crate synthesises *analog* graphs with the same qualitative shape
//! (skewed degree distribution, comparable average degree, same relative size ordering)
//! from the generators in this module. All generators take an explicit seed and are fully
//! deterministic.
//!
//! * [`erdos_renyi`] — `G(n, m)` uniform random directed graphs (low skew, e.g. WikiTalk-like
//!   average degree).
//! * [`preferential`] — directed Barabási–Albert-style preferential attachment (heavy-tailed
//!   in-degree, the dominant shape of the social networks in Table I).
//! * [`small_world`](mod@small_world) — directed Watts–Strogatz ring rewiring (high clustering, web-graph-like
//!   local structure).
//! * [`regular`] — deterministic families (path, cycle, complete, grid, star, layered DAG)
//!   used heavily by unit tests and examples.

pub mod erdos_renyi;
pub mod preferential;
pub mod regular;
pub mod small_world;

pub use erdos_renyi::{gnm_random, gnp_random};
pub use preferential::preferential_attachment;
pub use regular::{complete, cycle, grid, layered_dag, path, star};
pub use small_world::small_world;

use crate::vertex::VertexId;
use rand::Rng;

/// Draws a random vertex id in `[0, n)`.
pub(crate) fn random_vertex<R: Rng>(rng: &mut R, n: usize) -> VertexId {
    VertexId::new(rng.gen_range(0..n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_vertex_is_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = random_vertex(&mut rng, 17);
            assert!(v.index() < 17);
        }
    }
}
