//! Directed Watts–Strogatz small-world generator.
//!
//! Web graphs like BerkStan and Web-uk-2005 have strong local structure (pages link to
//! nearby pages on the same host) plus a sprinkling of long-range links. A directed ring
//! lattice with random rewiring reproduces that mixture and produces the long shortest
//! paths / high clustering regime that distinguishes web graphs from social graphs.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed small-world graph.
///
/// Each vertex `i` initially points to its `k` clockwise ring successors
/// `i+1, …, i+k (mod n)`; each such edge is then rewired to a uniformly random target with
/// probability `beta`.
pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Result<DiGraph> {
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!(
            "beta must be in [0,1], got {beta}"
        )));
    }
    if n > 0 && k >= n {
        return Err(GraphError::InvalidParameter(format!(
            "ring degree k={k} must be smaller than n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * k).skip_self_loops(true);
    builder.reserve_vertices(n);
    for i in 0..n {
        for j in 1..=k {
            let source = VertexId::new(i);
            let ring_target = VertexId::new((i + j) % n);
            let target = if rng.gen_bool(beta) {
                // Rewire: pick any vertex other than the source.
                let mut t = rng.gen_range(0..n);
                if t == i {
                    t = (t + 1) % n;
                }
                VertexId::new(t)
            } else {
                ring_target
            };
            builder.add_edge(source, target);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Direction;
    use crate::traversal::{bfs_distances, UNREACHED};

    #[test]
    fn zero_beta_is_a_pure_ring() {
        let g = small_world(10, 2, 0.0, 1).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 20);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(g.has_edge(VertexId(9), VertexId(0)));
        // The ring is strongly connected.
        let d = bfs_distances(&g, VertexId(0), Direction::Forward);
        assert!(d.iter().all(|&x| x != UNREACHED));
    }

    #[test]
    fn rewiring_changes_the_graph_but_not_edge_budget_much() {
        let ring = small_world(200, 3, 0.0, 5).unwrap();
        let rewired = small_world(200, 3, 0.5, 5).unwrap();
        assert_ne!(ring, rewired);
        // Rewiring can only lose edges through dedup collisions, never add.
        assert!(rewired.num_edges() <= ring.num_edges());
        assert!(rewired.num_edges() > ring.num_edges() / 2);
        assert!(rewired.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            small_world(64, 4, 0.3, 7).unwrap(),
            small_world(64, 4, 0.3, 7).unwrap()
        );
        assert_ne!(
            small_world(64, 4, 0.3, 7).unwrap(),
            small_world(64, 4, 0.3, 8).unwrap()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(small_world(10, 2, 1.5, 0).is_err());
        assert!(small_world(10, 10, 0.1, 0).is_err());
        assert_eq!(small_world(0, 0, 0.0, 0).unwrap().num_vertices(), 0);
    }
}
