//! The immutable directed graph used by every algorithm in the workspace.

use crate::builder::GraphBuilder;
use crate::csr::CsrAdjacency;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// Search direction: forward traverses `G`, backward traverses the reverse graph `G^r`.
///
/// The paper's bidirectional enumeration runs a forward search from `s` on `G` and a
/// backward search from `t` on `G^r`; passing a `Direction` instead of materialising `G^r`
/// keeps a single copy of the graph in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Follow out-edges (a traversal on `G`).
    Forward,
    /// Follow in-edges (a traversal on `G^r`).
    Backward,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Forward => write!(f, "G"),
            Direction::Backward => write!(f, "Gr"),
        }
    }
}

/// An immutable, unweighted directed graph `G = (V, E)` in CSR form.
///
/// Both out- and in-adjacency are stored so that the reverse graph `G^r` (needed by the
/// backward half of the bidirectional search and by the target-side index) is available
/// without any copying: `neighbors(v, Direction::Backward)` *is* `G^r.nbr+(v)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    out: CsrAdjacency,
    inn: CsrAdjacency,
    num_edges: usize,
}

impl DiGraph {
    /// Builds a graph from `(u, v)` pairs given as raw `u32` ids.
    ///
    /// Duplicate edges are removed; self loops are kept (they can never appear on a simple
    /// path of length ≥ 1 and are pruned naturally during enumeration). Returns an error if
    /// an endpoint is `>= num_vertices`.
    pub fn from_edge_list(num_vertices: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut builder = GraphBuilder::with_capacity(num_vertices, edges.len());
        for &(u, v) in edges {
            if u as usize >= num_vertices || v as usize >= num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u.max(v),
                    num_vertices,
                });
            }
            builder.add_edge_raw(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds a graph from typed [`VertexId`] edges.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        for &(u, v) in edges {
            if u.index() >= num_vertices || v.index() >= num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u.raw().max(v.raw()),
                    num_vertices,
                });
            }
        }
        Ok(Self::from_csr_edges(num_vertices, edges))
    }

    /// Internal constructor used by [`GraphBuilder`]: edges are assumed to be in range.
    pub(crate) fn from_csr_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let out = CsrAdjacency::from_edges(num_vertices, edges);
        let reversed: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        let inn = CsrAdjacency::from_edges(num_vertices, &reversed);
        let num_edges = out.num_edges();
        DiGraph {
            out,
            inn,
            num_edges,
        }
    }

    /// Reconstructs a graph from two pre-built CSR halves (binary loader path).
    pub(crate) fn from_parts(out: CsrAdjacency, inn: CsrAdjacency) -> Self {
        let num_edges = out.num_edges();
        DiGraph {
            out,
            inn,
            num_edges,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of distinct directed edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Out-neighbours `G.nbr+(v)`, sorted by id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbours `G.nbr-(v)`, sorted by id.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inn.neighbors(v)
    }

    /// Neighbours in the given search direction: `Forward` yields out-neighbours of `v` in
    /// `G`, `Backward` yields out-neighbours of `v` in `G^r` (i.e. in-neighbours in `G`).
    #[inline]
    pub fn neighbors(&self, v: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Forward => self.out.neighbors(v),
            Direction::Backward => self.inn.neighbors(v),
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inn.degree(v)
    }

    /// Degree in the given search direction.
    #[inline]
    pub fn degree(&self, v: VertexId, dir: Direction) -> usize {
        match dir {
            Direction::Forward => self.out.degree(v),
            Direction::Backward => self.inn.degree(v),
        }
    }

    /// Degrees of `v`'s neighbours in the given direction, parallel to
    /// [`DiGraph::neighbors`]: `neighbor_degrees(v, d)[i] == degree(neighbors(v, d)[i], d)`.
    ///
    /// The frontier fill pass zips this with the neighbour slice so the
    /// `DistanceThenDegree` sort key is one sequential read instead of a per-neighbour
    /// offset gather.
    #[inline]
    pub fn neighbor_degrees(&self, v: VertexId, dir: Direction) -> &[u32] {
        match dir {
            Direction::Forward => self.out.neighbor_degrees(v),
            Direction::Backward => self.inn.neighbor_degrees(v),
        }
    }

    /// Whether the directed edge `(u, v)` exists in `G`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out.contains_edge(u, v)
    }

    /// Iterates all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterates all directed edges of `G` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out.iter_edges()
    }

    /// Returns a new graph with every edge reversed (an explicit `G^r`).
    ///
    /// Algorithms should prefer [`DiGraph::neighbors`] with [`Direction::Backward`]; this
    /// method exists for tests and for comparators that insist on a concrete graph value.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out: self.inn.clone(),
            inn: self.out.clone(),
            num_edges: self.num_edges,
        }
    }

    /// The out-adjacency half (exposed for serialisation).
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out
    }

    /// The in-adjacency half (exposed for serialisation).
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.inn
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inn.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn diamond() -> DiGraph {
        DiGraph::from_edge_list(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.out_neighbors(v(0)), &[v(1), v(2)]);
        assert_eq!(g.in_neighbors(v(3)), &[v(1), v(2)]);
        assert_eq!(g.out_degree(v(0)), 2);
        assert_eq!(g.in_degree(v(0)), 0);
        assert!(g.has_edge(v(0), v(1)));
        assert!(!g.has_edge(v(1), v(0)));
    }

    #[test]
    fn direction_selects_adjacency() {
        let g = diamond();
        assert_eq!(g.neighbors(v(0), Direction::Forward), &[v(1), v(2)]);
        assert_eq!(g.neighbors(v(0), Direction::Backward), &[] as &[VertexId]);
        assert_eq!(g.neighbors(v(3), Direction::Backward), &[v(1), v(2)]);
        assert_eq!(g.degree(v(3), Direction::Backward), 2);
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Backward.reverse(), Direction::Forward);
    }

    #[test]
    fn neighbor_degrees_follow_direction() {
        let g = diamond();
        // Forward: neighbours of 0 are [1, 2] with out-degrees [1, 1]; 1's neighbour 3
        // has out-degree 0.
        assert_eq!(g.neighbor_degrees(v(0), Direction::Forward), &[1, 1]);
        assert_eq!(g.neighbor_degrees(v(1), Direction::Forward), &[0]);
        // Backward: neighbours of 3 are [1, 2] with in-degrees [1, 1].
        assert_eq!(g.neighbor_degrees(v(3), Direction::Backward), &[1, 1]);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.out_neighbors(v(3)), &[v(1), v(2)]);
        assert_eq!(r.in_neighbors(v(0)), &[v(1), v(2)]);
        assert_eq!(r.num_edges(), g.num_edges());
        // Reversing twice is the identity.
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = DiGraph::from_edge_list(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn out_of_bounds_edge_is_rejected() {
        let err = DiGraph::from_edge_list(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfBounds { vertex: 5, .. }
        ));
        let err = DiGraph::from_edges(2, &[(v(3), v(0))]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { .. }));
    }

    #[test]
    fn vertices_and_edges_iterators() {
        let g = diamond();
        assert_eq!(g.vertices().count(), 4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(v(0), v(1))));
    }

    #[test]
    fn display_direction() {
        assert_eq!(Direction::Forward.to_string(), "G");
        assert_eq!(Direction::Backward.to_string(), "Gr");
    }
}
