//! Error types for graph construction and IO.

use std::fmt;
use std::io;

/// Errors produced while building, loading, or storing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge references a vertex id `>= n`.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph being built.
        num_vertices: usize,
    },
    /// The number of vertices exceeds what a `u32` id can address.
    TooManyVertices(usize),
    /// A text edge list contained a line that could not be parsed.
    ParseEdge {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending content (truncated).
        content: String,
    },
    /// The binary format header did not match.
    InvalidBinaryFormat(String),
    /// The binary format magic matched but the version byte is one this build cannot
    /// read — the file comes from a newer (or corrupted) writer.
    UnsupportedVersion {
        /// The version byte found in the file.
        found: u8,
        /// The version this build supports.
        supported: u8,
    },
    /// Underlying IO failure.
    Io(io::Error),
    /// A generator or sampler was given inconsistent parameters.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "edge references vertex {vertex} but the graph has only {num_vertices} vertices"
            ),
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the 32-bit vertex id space")
            }
            GraphError::ParseEdge { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
            GraphError::InvalidBinaryFormat(msg) => write!(f, "invalid binary graph: {msg}"),
            GraphError::UnsupportedVersion { found, supported } => write!(
                f,
                "binary graph format version {found} is not supported (this build reads version {supported})"
            ),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("vertex 10"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::ParseEdge {
            line: 3,
            content: "a b".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::InvalidParameter("p must be in [0,1]".into());
        assert!(e.to_string().contains("p must be"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        use std::error::Error;
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
        assert!(e.source().is_some());
    }
}
