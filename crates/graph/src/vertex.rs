//! Vertex identifiers.
//!
//! Vertices are dense `u32` identifiers in `[0, n)`. A newtype is used instead of a bare
//! `u32` so that vertex ids, hop budgets, and counts cannot be confused at call sites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense vertex identifier in `[0, n)` for a graph with `n` vertices.
///
/// `VertexId` is a thin wrapper around `u32`: the paper's largest graphs (Twitter-2010,
/// Friendster) have fewer than 2^32 vertices, and 32-bit ids halve the memory footprint of
/// the CSR arrays and of materialised paths compared to `usize` on 64-bit platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The maximum representable vertex id, used as a sentinel in a few dense arrays.
    pub const MAX: VertexId = VertexId(u32::MAX);

    /// Creates a vertex id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "vertex index {index} overflows u32"
        );
        VertexId(index as u32)
    }

    /// Returns the id as a `usize`, suitable for indexing dense per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.index()
    }
}

/// A directed edge `(source, target)`.
pub type Edge = (VertexId, VertexId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(usize::from(v), 42);
    }

    #[test]
    fn display_uses_v_prefix() {
        assert_eq!(VertexId(7).to_string(), "v7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(3) < VertexId(4));
        assert_eq!(VertexId(9), VertexId::from(9u32));
    }

    #[test]
    fn max_sentinel() {
        assert_eq!(VertexId::MAX.raw(), u32::MAX);
    }
}
