//! # hcsp-graph
//!
//! Directed-graph substrate for batch hop-constrained *s-t* simple path (HC-s-t path)
//! enumeration, reproducing the graph layer used by
//! *"Batch Hop-Constrained s-t Simple Path Query Processing in Large Graphs"*
//! (ICDE 2024).
//!
//! The crate provides:
//!
//! * [`DiGraph`] — an immutable, compressed-sparse-row (CSR) directed graph storing both
//!   out- and in-adjacency, so that traversals on the reverse graph `G^r` require no copy.
//! * [`GraphBuilder`] — an incremental builder that deduplicates edges, drops self loops
//!   on request and produces a [`DiGraph`].
//! * [`DeltaGraph`] — a mutable edge-insert/delete overlay over an immutable base graph
//!   with periodic compaction back into a fresh CSR (the dynamic-update staging layer).
//! * [`traversal`] — BFS / bounded BFS / DFS primitives shared by the index and the
//!   enumeration algorithms.
//! * [`generators`] — deterministic random graph generators (Erdős–Rényi, directed
//!   preferential attachment, Watts–Strogatz rewiring, and several regular families)
//!   used to synthesise laptop-scale analogs of the paper's twelve evaluation datasets.
//! * [`sampling`] — vertex-ratio induced subgraph sampling (scalability experiment, Fig. 11).
//! * [`io`] — plain-text edge-list and compact binary serialisation.
//! * [`properties`] — degree statistics matching Table I of the paper.
//!
//! ## Quick example
//!
//! ```
//! use hcsp_graph::{DiGraph, VertexId};
//!
//! // A tiny diamond:  0 -> 1 -> 3,  0 -> 2 -> 3
//! let g = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
//! assert_eq!(g.in_neighbors(VertexId(3)), &[VertexId(1), VertexId(2)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod delta;
pub mod digraph;
pub mod error;
pub mod generators;
pub mod io;
pub mod properties;
pub mod sampling;
pub mod traversal;
pub mod vertex;

pub use builder::GraphBuilder;
pub use csr::CsrAdjacency;
pub use delta::{DeltaGraph, GraphUpdate};
pub use digraph::{DiGraph, Direction};
pub use error::GraphError;
pub use properties::GraphStats;
pub use vertex::VertexId;

/// Convenient result alias used throughout the graph crate.
pub type Result<T> = std::result::Result<T, GraphError>;
