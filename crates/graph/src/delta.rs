//! Dynamic graph updates: a mutable overlay over the immutable CSR graph.
//!
//! Every algorithm in the workspace runs on the immutable [`DiGraph`] — CSR slices are
//! what makes the enumeration hot path allocation-free. Real serving graphs change while
//! queries flow, so mutation is staged in a [`DeltaGraph`]: edge insertions and deletions
//! accumulate in a sorted overlay on top of an untouched base CSR, queries against the
//! overlay merge the two views, and [`DeltaGraph::compact`] periodically folds the overlay
//! back into a fresh CSR via the existing [`GraphBuilder`]. The overlay is the *staging*
//! structure; enumeration always runs on a compacted snapshot.

use crate::builder::GraphBuilder;
use crate::digraph::{DiGraph, Direction};
use crate::vertex::VertexId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One dynamic graph mutation.
///
/// Updates are idempotent by construction: inserting an edge that already exists or
/// deleting one that does not is a no-op (reported as such by [`DeltaGraph::apply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GraphUpdate {
    /// Insert the directed edge `(u, v)`; may grow the vertex space.
    Insert(VertexId, VertexId),
    /// Delete the directed edge `(u, v)`.
    Delete(VertexId, VertexId),
}

impl GraphUpdate {
    /// Convenience constructor for an insertion.
    pub fn insert(u: impl Into<VertexId>, v: impl Into<VertexId>) -> Self {
        GraphUpdate::Insert(u.into(), v.into())
    }

    /// Convenience constructor for a deletion.
    pub fn delete(u: impl Into<VertexId>, v: impl Into<VertexId>) -> Self {
        GraphUpdate::Delete(u.into(), v.into())
    }

    /// The edge the update refers to.
    pub fn edge(&self) -> (VertexId, VertexId) {
        match *self {
            GraphUpdate::Insert(u, v) | GraphUpdate::Delete(u, v) => (u, v),
        }
    }

    /// Whether the update is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, GraphUpdate::Insert(..))
    }
}

impl std::fmt::Display for GraphUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphUpdate::Insert(u, v) => write!(f, "+({u}, {v})"),
            GraphUpdate::Delete(u, v) => write!(f, "-({u}, {v})"),
        }
    }
}

/// A mutable edge-set overlay over an immutable base [`DiGraph`].
///
/// The overlay stores the *net* difference to the base: `added` holds edges absent from
/// the base, `removed` holds base edges marked deleted. Opposing updates cancel (insert
/// then delete of the same absent edge leaves the overlay untouched), so
/// [`DeltaGraph::added_edges`] / [`DeltaGraph::removed_edges`] are exactly the edge sets
/// an index-maintenance pass has to look at. Insertions may reference vertices beyond the
/// base vertex count; the vertex space grows like [`GraphBuilder`]'s does.
///
/// # Example
///
/// ```
/// use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate, VertexId};
///
/// let base = DiGraph::from_edge_list(3, &[(0, 1), (1, 2)]).unwrap();
/// let mut delta = DeltaGraph::new(base);
/// assert!(delta.apply(&GraphUpdate::insert(0u32, 2u32)));
/// assert!(delta.apply(&GraphUpdate::delete(1u32, 2u32)));
/// assert!(delta.has_edge(VertexId(0), VertexId(2)));
/// assert!(!delta.has_edge(VertexId(1), VertexId(2)));
///
/// let compacted = delta.compact();
/// assert_eq!(compacted.num_edges(), 2);
/// assert!(compacted.has_edge(VertexId(0), VertexId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<DiGraph>,
    added: BTreeSet<(VertexId, VertexId)>,
    removed: BTreeSet<(VertexId, VertexId)>,
    num_vertices: usize,
}

impl DeltaGraph {
    /// Creates an empty overlay over `base`.
    pub fn new(base: impl Into<Arc<DiGraph>>) -> Self {
        let base = base.into();
        let num_vertices = base.num_vertices();
        DeltaGraph {
            base,
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
            num_vertices,
        }
    }

    /// The untouched base snapshot the overlay sits on.
    pub fn base(&self) -> &Arc<DiGraph> {
        &self.base
    }

    /// Number of vertices of the overlaid graph (base count plus growth from inserts).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the overlaid graph.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.added.len() - self.removed.len()
    }

    /// Whether any pending mutation separates the overlay from its base.
    pub fn is_dirty(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty() || self.grew()
    }

    /// Number of pending overlay operations (net added plus net removed edges).
    pub fn pending_ops(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether inserts grew the vertex space beyond the base's.
    fn grew(&self) -> bool {
        self.num_vertices > self.base.num_vertices()
    }

    /// Inserts the directed edge `(u, v)`, growing the vertex space to cover both
    /// endpoints. Returns `false` (and changes nothing else) if the edge already exists.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.num_vertices = self.num_vertices.max(u.index() + 1).max(v.index() + 1);
        if self.removed.remove(&(u, v)) {
            return true;
        }
        if self.in_base(u, v) {
            return false;
        }
        self.added.insert((u, v))
    }

    /// Deletes the directed edge `(u, v)`. Returns `false` if the edge does not exist.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.added.remove(&(u, v)) {
            return true;
        }
        if self.in_base(u, v) {
            return self.removed.insert((u, v));
        }
        false
    }

    /// Applies one update; returns whether it changed the graph.
    pub fn apply(&mut self, update: &GraphUpdate) -> bool {
        match *update {
            GraphUpdate::Insert(u, v) => self.insert_edge(u, v),
            GraphUpdate::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    fn in_base(&self, u: VertexId, v: VertexId) -> bool {
        u.index() < self.base.num_vertices()
            && v.index() < self.base.num_vertices()
            && self.base.has_edge(u, v)
    }

    /// Whether the overlaid graph contains the directed edge `(u, v)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if self.added.contains(&(u, v)) {
            return true;
        }
        self.in_base(u, v) && !self.removed.contains(&(u, v))
    }

    /// Net edges present in the overlay but not in the base, sorted by `(u, v)`.
    pub fn added_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.added.iter().copied()
    }

    /// Net base edges marked deleted, sorted by `(u, v)`.
    pub fn removed_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.removed.iter().copied()
    }

    /// Neighbours of `v` in the overlaid graph, sorted ascending (merged view of the base
    /// CSR slice and the overlay; allocates — the overlay is a staging structure, not the
    /// enumeration hot path).
    pub fn neighbors(&self, v: VertexId, dir: Direction) -> Vec<VertexId> {
        let base: &[VertexId] = if v.index() < self.base.num_vertices() {
            self.base.neighbors(v, dir)
        } else {
            &[]
        };
        // Overlay edges touching `v` in this direction: out-edges key on the first
        // endpoint, in-edges on the second.
        let pick = |set: &BTreeSet<(VertexId, VertexId)>| -> Vec<VertexId> {
            match dir {
                Direction::Forward => set
                    .range((v, VertexId(0))..=(v, VertexId(u32::MAX)))
                    .map(|&(_, w)| w)
                    .collect(),
                Direction::Backward => set
                    .iter()
                    .filter(|&&(_, w)| w == v)
                    .map(|&(u, _)| u)
                    .collect(),
            }
        };
        let mut extra = pick(&self.added);
        extra.sort_unstable();
        let removed_here = pick(&self.removed);
        let mut merged = Vec::with_capacity(base.len() + extra.len());
        let mut e = extra.into_iter().peekable();
        for &b in base {
            while let Some(&x) = e.peek() {
                if x < b {
                    merged.push(x);
                    e.next();
                } else {
                    break;
                }
            }
            if removed_here.binary_search(&b).is_err() {
                merged.push(b);
            }
        }
        merged.extend(e);
        merged
    }

    /// Out-neighbours of `v` in the overlaid graph.
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbors(v, Direction::Forward)
    }

    /// In-neighbours of `v` in the overlaid graph.
    pub fn in_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbors(v, Direction::Backward)
    }

    /// Iterates every edge of the overlaid graph in deterministic `(u, v)` order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices as u32).flat_map(move |u| {
            let u = VertexId(u);
            self.out_neighbors(u).into_iter().map(move |v| (u, v))
        })
    }

    /// Folds the overlay into a fresh immutable CSR snapshot via [`GraphBuilder`].
    ///
    /// The overlay itself is untouched; callers that want to keep mutating on top of the
    /// new snapshot use [`DeltaGraph::rebase`].
    pub fn compact(&self) -> DiGraph {
        if !self.is_dirty() {
            return (*self.base).clone();
        }
        let mut builder = GraphBuilder::with_capacity(
            self.num_vertices,
            self.base.num_edges() + self.added.len(),
        );
        builder.reserve_vertices(self.num_vertices);
        for (u, v) in self.base.edges() {
            if !self.removed.contains(&(u, v)) {
                builder.add_edge(u, v);
            }
        }
        for &(u, v) in &self.added {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Compacts and adopts the result as the new base, clearing the overlay. Returns the
    /// new snapshot (shared, so callers can hand it to engines without another copy).
    pub fn rebase(&mut self) -> Arc<DiGraph> {
        let fresh = Arc::new(self.compact());
        self.base = Arc::clone(&fresh);
        self.added.clear();
        self.removed.clear();
        self.num_vertices = fresh.num_vertices();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn base() -> DiGraph {
        // 0 -> 1 -> 2, 0 -> 2
        DiGraph::from_edge_list(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn insert_and_delete_change_the_view() {
        let mut d = DeltaGraph::new(base());
        assert!(!d.is_dirty());
        assert_eq!(d.num_edges(), 3);

        assert!(d.insert_edge(v(2), v(0)));
        assert!(d.delete_edge(v(0), v(2)));
        assert!(d.is_dirty());
        assert_eq!(d.num_edges(), 3);
        assert!(d.has_edge(v(2), v(0)));
        assert!(!d.has_edge(v(0), v(2)));
        assert_eq!(d.out_neighbors(v(0)), vec![v(1)]);
        assert_eq!(d.out_neighbors(v(2)), vec![v(0)]);
        assert_eq!(d.in_neighbors(v(0)), vec![v(2)]);
        assert_eq!(d.in_neighbors(v(2)), vec![v(1)]);
    }

    #[test]
    fn redundant_updates_are_noops() {
        let mut d = DeltaGraph::new(base());
        assert!(!d.insert_edge(v(0), v(1)), "edge already in base");
        assert!(!d.delete_edge(v(2), v(1)), "edge never existed");
        assert!(!d.delete_edge(v(7), v(1)), "endpoint out of range");
        assert!(!d.is_dirty());

        assert!(d.insert_edge(v(2), v(0)));
        assert!(!d.insert_edge(v(2), v(0)), "double insert");
        assert!(d.delete_edge(v(0), v(1)));
        assert!(!d.delete_edge(v(0), v(1)), "double delete");
    }

    #[test]
    fn opposing_updates_cancel_to_a_clean_overlay() {
        let mut d = DeltaGraph::new(base());
        assert!(d.apply(&GraphUpdate::insert(2u32, 0u32)));
        assert!(d.apply(&GraphUpdate::delete(2u32, 0u32)));
        assert!(d.apply(&GraphUpdate::delete(0u32, 1u32)));
        assert!(d.apply(&GraphUpdate::insert(0u32, 1u32)));
        assert!(!d.is_dirty());
        assert_eq!(d.pending_ops(), 0);
        assert_eq!(d.compact(), **d.base());
    }

    #[test]
    fn inserts_grow_the_vertex_space() {
        let mut d = DeltaGraph::new(base());
        assert!(d.insert_edge(v(1), v(5)));
        assert_eq!(d.num_vertices(), 6);
        assert!(d.has_edge(v(1), v(5)));
        assert_eq!(d.out_neighbors(v(1)), vec![v(2), v(5)]);
        assert_eq!(d.out_neighbors(v(5)), Vec::<VertexId>::new());
        let g = d.compact();
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(v(1), v(5)));
        assert_eq!(g.out_degree(v(5)), 0);
    }

    #[test]
    fn compact_matches_a_from_scratch_build() {
        let mut d = DeltaGraph::new(base());
        d.insert_edge(v(2), v(0));
        d.insert_edge(v(1), v(0));
        d.delete_edge(v(0), v(2));
        let compacted = d.compact();
        let reference = DiGraph::from_edge_list(3, &[(0, 1), (1, 2), (2, 0), (1, 0)]).unwrap();
        assert_eq!(compacted, reference);
        // The overlaid view agrees with the compacted CSR everywhere.
        for u in compacted.vertices() {
            assert_eq!(d.out_neighbors(u), compacted.out_neighbors(u).to_vec());
            assert_eq!(d.in_neighbors(u), compacted.in_neighbors(u).to_vec());
        }
        assert_eq!(
            d.edges().collect::<Vec<_>>(),
            compacted.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rebase_clears_the_overlay_and_keeps_the_view() {
        let mut d = DeltaGraph::new(base());
        d.insert_edge(v(2), v(0));
        d.delete_edge(v(0), v(1));
        let snapshot = d.rebase();
        assert!(!d.is_dirty());
        assert_eq!(d.pending_ops(), 0);
        assert_eq!(**d.base(), *snapshot);
        assert!(d.has_edge(v(2), v(0)));
        assert!(!d.has_edge(v(0), v(1)));
        // Mutations continue on top of the new base.
        assert!(d.insert_edge(v(0), v(1)));
        assert!(d.has_edge(v(0), v(1)));
    }

    #[test]
    fn update_accessors_and_display() {
        let ins = GraphUpdate::insert(1u32, 2u32);
        let del = GraphUpdate::delete(2u32, 1u32);
        assert!(ins.is_insert());
        assert!(!del.is_insert());
        assert_eq!(ins.edge(), (v(1), v(2)));
        assert_eq!(del.edge(), (v(2), v(1)));
        assert_eq!(ins.to_string(), "+(v1, v2)");
        assert_eq!(del.to_string(), "-(v2, v1)");
    }

    #[test]
    fn net_delta_is_exposed_for_index_maintenance() {
        let mut d = DeltaGraph::new(base());
        d.insert_edge(v(2), v(0));
        d.insert_edge(v(2), v(1));
        d.delete_edge(v(2), v(1)); // cancels the insert
        d.delete_edge(v(1), v(2));
        assert_eq!(d.added_edges().collect::<Vec<_>>(), vec![(v(2), v(0))]);
        assert_eq!(d.removed_edges().collect::<Vec<_>>(), vec![(v(1), v(2))]);
    }
}
