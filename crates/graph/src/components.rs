//! Connectivity structure: strongly/weakly connected components and degree histograms.
//!
//! The evaluation datasets of the paper are social/web graphs with one giant (strongly or
//! weakly) connected component and a heavy-tailed degree distribution; these routines let
//! the workload layer verify that the synthetic analogs keep that shape, and give the
//! experiment harness extra per-dataset characterisation beyond Table I.

use crate::digraph::{DiGraph, Direction};
use crate::vertex::VertexId;

/// A labelling of every vertex with a component id, plus the component sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `component[v] = id` of the component containing `v`.
    pub component: Vec<u32>,
    /// `sizes[id]` = number of vertices in component `id`.
    pub sizes: Vec<usize>,
}

impl ComponentLabels {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of vertices inside the largest component.
    pub fn largest_ratio(&self) -> f64 {
        if self.component.is_empty() {
            return 0.0;
        }
        self.largest() as f64 / self.component.len() as f64
    }

    /// Whether two vertices share a component.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }
}

/// Computes the *weakly* connected components (edge direction ignored) with a union-find.
pub fn weakly_connected_components(graph: &DiGraph) -> ComponentLabels {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for (u, v) in graph.edges() {
        let ru = find(&mut parent, u.raw());
        let rv = find(&mut parent, v.raw());
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }

    // Relabel roots densely.
    let mut component = vec![0u32; n];
    let mut ids: Vec<i64> = vec![-1; n];
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n as u32 {
        let root = find(&mut parent, v);
        let id = if ids[root as usize] >= 0 {
            ids[root as usize] as u32
        } else {
            let fresh = sizes.len() as u32;
            ids[root as usize] = fresh as i64;
            sizes.push(0);
            fresh
        };
        component[v as usize] = id;
        sizes[id as usize] += 1;
    }
    ComponentLabels { component, sizes }
}

/// Computes the *strongly* connected components with Tarjan's algorithm (iterative, so
/// deep graphs cannot overflow the call stack).
pub fn strongly_connected_components(graph: &DiGraph) -> ComponentLabels {
    let n = graph.num_vertices();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut sizes: Vec<usize> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frames: (vertex, next neighbour position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut next_pos)) = frames.last_mut() {
            let neighbors = graph.out_neighbors(VertexId(v));
            if *next_pos < neighbors.len() {
                let w = neighbors[*next_pos].raw();
                *next_pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop the stack down to v.
                    let id = sizes.len() as u32;
                    sizes.push(0);
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = id;
                        sizes[id as usize] += 1;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    ComponentLabels { component, sizes }
}

/// A log-2 bucketed degree histogram: `buckets[i]` counts vertices with degree in
/// `[2^i, 2^(i+1))` (bucket 0 additionally holds degree-0 vertices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Bucket counts, index = floor(log2(degree)) (degree 0 and 1 both land in bucket 0).
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram for the requested direction (`Forward` = out-degree,
    /// `Backward` = in-degree).
    pub fn compute(graph: &DiGraph, dir: Direction) -> Self {
        let mut buckets: Vec<usize> = Vec::new();
        for v in graph.vertices() {
            let degree = graph.degree(v, dir);
            let bucket = if degree <= 1 {
                0
            } else {
                (usize::BITS - 1 - degree.leading_zeros()) as usize
            };
            if bucket >= buckets.len() {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
        DegreeHistogram { buckets }
    }

    /// Total number of vertices counted.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// A crude heavy-tail indicator: the fraction of vertices whose degree is at least
    /// 8 times the mean bucket position. Social-graph analogs score well above uniform
    /// random graphs.
    pub fn tail_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.buckets.len() < 4 {
            return 0.0;
        }
        let tail: usize = self.buckets[self.buckets.len().saturating_sub(2)..]
            .iter()
            .sum();
        tail as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::preferential::{preferential_attachment, PreferentialConfig};
    use crate::generators::regular::{complete, cycle, grid, path, star};

    #[test]
    fn wcc_of_disconnected_pieces() {
        // Two disjoint paths: 0->1->2 and 3->4.
        let g = DiGraph::from_edge_list(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components(), 2);
        assert_eq!(wcc.largest(), 3);
        assert!(wcc.same_component(VertexId(0), VertexId(2)));
        assert!(!wcc.same_component(VertexId(0), VertexId(3)));
        assert!((wcc.largest_ratio() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn scc_of_a_cycle_is_one_component() {
        let g = cycle(6);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components(), 1);
        assert_eq!(scc.largest(), 6);
    }

    #[test]
    fn scc_of_a_dag_is_all_singletons() {
        let g = grid(3, 3);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components(), 9);
        assert_eq!(scc.largest(), 1);
        // But weakly it is one component.
        assert_eq!(weakly_connected_components(&g).num_components(), 1);
    }

    #[test]
    fn scc_mixed_structure() {
        // A 3-cycle {0,1,2} feeding a path 3 -> 4.
        let g = DiGraph::from_edge_list(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components(), 3);
        assert!(scc.same_component(VertexId(0), VertexId(2)));
        assert!(!scc.same_component(VertexId(2), VertexId(3)));
        assert_eq!(scc.largest(), 3);
    }

    #[test]
    fn star_and_complete_are_strongly_connected() {
        assert_eq!(strongly_connected_components(&star(5)).num_components(), 1);
        assert_eq!(
            strongly_connected_components(&complete(4)).num_components(),
            1
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = DiGraph::from_edge_list(0, &[]).unwrap();
        assert_eq!(strongly_connected_components(&empty).num_components(), 0);
        assert_eq!(weakly_connected_components(&empty).largest_ratio(), 0.0);
        let lonely = path(1);
        assert_eq!(strongly_connected_components(&lonely).num_components(), 1);
    }

    #[test]
    fn degree_histogram_buckets_degrees() {
        let g = star(8); // hub has degree 8 (out) and 8 (in); leaves have 1 each.
        let hist = DegreeHistogram::compute(&g, Direction::Forward);
        assert_eq!(hist.total(), 9);
        assert_eq!(hist.buckets[0], 8, "eight leaves with out-degree 1");
        assert_eq!(
            *hist.buckets.last().unwrap(),
            1,
            "one hub with out-degree 8"
        );
    }

    #[test]
    fn preferential_graphs_have_heavier_tails_than_grids() {
        let social = preferential_attachment(PreferentialConfig {
            num_vertices: 1500,
            edges_per_vertex: 4,
            reciprocity: 0.3,
            seed: 5,
        })
        .unwrap();
        let hist_social = DegreeHistogram::compute(&social, Direction::Backward);
        let hist_grid = DegreeHistogram::compute(&grid(40, 40), Direction::Backward);
        assert!(hist_social.buckets.len() > hist_grid.buckets.len());
        // The grid has no tail at all (max in-degree 2).
        assert_eq!(hist_grid.tail_fraction(), 0.0);
    }

    #[test]
    fn analog_datasets_have_a_giant_component() {
        let social = preferential_attachment(PreferentialConfig {
            num_vertices: 800,
            edges_per_vertex: 3,
            reciprocity: 0.3,
            seed: 9,
        })
        .unwrap();
        let wcc = weakly_connected_components(&social);
        assert!(
            wcc.largest_ratio() > 0.95,
            "ratio = {}",
            wcc.largest_ratio()
        );
    }
}
