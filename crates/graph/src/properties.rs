//! Graph statistics matching Table I of the paper (|V|, |E|, average and maximum degree).

use crate::digraph::{DiGraph, Direction};
use crate::traversal;
use crate::vertex::VertexId;
use serde::{Deserialize, Serialize};

/// Degree and size statistics of a directed graph.
///
/// The paper's Table I reports `|V|`, `|E|`, `d_avg` and `d_max`. Table I treats degree as
/// total (in + out) degree; both the total and the per-direction maxima are kept here so
/// the analog datasets can be validated against either convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average total degree `(in + out) / n`, i.e. `2|E| / |V|` — but reported as
    /// `|E| / |V|`-style *average out-degree times two* exactly as commonly tabulated.
    pub avg_degree: f64,
    /// Maximum total degree over all vertices.
    pub max_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with no incident edge at all.
    pub isolated_vertices: usize,
}

impl GraphStats {
    /// Computes statistics with a single pass over the vertex set.
    pub fn compute(graph: &DiGraph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let mut max_degree = 0usize;
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0usize;
        for v in graph.vertices() {
            let dout = graph.out_degree(v);
            let din = graph.in_degree(v);
            max_out = max_out.max(dout);
            max_in = max_in.max(din);
            max_degree = max_degree.max(dout + din);
            if dout + din == 0 {
                isolated += 1;
            }
        }
        let avg_degree = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree,
            max_degree,
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated_vertices: isolated,
        }
    }

    /// Formats the statistics as a Table-I style row: `name |V| |E| d_avg d_max`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>10} {:>12} {:>8.1} {:>10}",
            name, self.num_vertices, self.num_edges, self.avg_degree, self.max_degree
        )
    }
}

/// Fraction of `samples` random ordered vertex pairs `(s, t)` where `t` is reachable from
/// `s` within `max_hops` hops. Used to sanity-check that generated analog datasets admit
/// enough hop-bounded reachable pairs for query generation.
pub fn bounded_reachability_ratio(
    graph: &DiGraph,
    max_hops: u32,
    samples: usize,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if graph.num_vertices() < 2 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = traversal::VisitScratch::new();
    let mut hits = 0usize;
    for _ in 0..samples {
        let s = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        let t = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        if s == t {
            continue;
        }
        let reached =
            traversal::bfs_visit_bounded(graph, s, Direction::Forward, max_hops, &mut scratch);
        if reached.iter().any(|&(v, _)| v == t) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::{complete, path, star};

    #[test]
    fn stats_of_complete_graph() {
        let g = complete(6);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 30);
        assert_eq!(s.max_out_degree, 5);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.isolated_vertices, 0);
        assert!((s.avg_degree - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_star_identifies_hub() {
        let g = star(7);
        let s = GraphStats::compute(&g);
        assert_eq!(s.max_out_degree, 7);
        assert_eq!(s.max_in_degree, 7);
        assert_eq!(s.max_degree, 14);
    }

    #[test]
    fn isolated_vertices_are_counted() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1));
        b.reserve_vertices(5);
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.isolated_vertices, 3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = DiGraph::from_edge_list(0, &[]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn table_row_contains_name_and_counts() {
        let row = GraphStats::compute(&path(4)).table_row("PATH");
        assert!(row.contains("PATH"));
        assert!(row.contains('4'));
        assert!(row.contains('3'));
    }

    #[test]
    fn reachability_ratio_bounds() {
        let g = complete(10);
        let r = bounded_reachability_ratio(&g, 1, 200, 1);
        assert!(
            r > 0.8,
            "complete graph should be almost fully 1-hop reachable, got {r}"
        );
        let p = path(50);
        let r2 = bounded_reachability_ratio(&p, 2, 200, 1);
        assert!(
            r2 < 0.3,
            "long path should have low 2-hop reachability, got {r2}"
        );
        assert_eq!(
            bounded_reachability_ratio(&DiGraph::from_edge_list(1, &[]).unwrap(), 3, 10, 0),
            0.0
        );
    }
}
