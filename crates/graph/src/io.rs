//! Graph serialisation: SNAP-style text edge lists and a compact binary format.
//!
//! The paper's datasets ship as whitespace-separated edge lists (SNAP / LAW exports);
//! [`read_edge_list`] accepts that format, ignoring `#`-prefixed comment lines. The binary
//! format stores the two CSR halves directly so re-loading a large generated analog graph
//! is an `O(m)` copy instead of a re-parse + re-sort.

use crate::csr::CsrAdjacency;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Magic prefix of the binary graph format (6 ASCII bytes + a reserved NUL).
pub const BINARY_MAGIC: &[u8; 7] = b"HCSPGR\x00";

/// Current version byte of the binary graph format. The magic + version pair is
/// byte-identical to the original unversioned header, so every file written before
/// versioning existed still loads; files from a *future* format version are rejected
/// with [`GraphError::UnsupportedVersion`] instead of being misparsed.
pub const BINARY_FORMAT_VERSION: u8 = 1;

/// Parses a whitespace-separated edge list (`u v` per line, `#` comments ignored).
///
/// Vertex ids may be arbitrary `u32`s; the vertex count becomes `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<DiGraph> {
    let mut builder = crate::GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (line_no, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => builder.add_edge_raw(u, v)?,
            _ => {
                return Err(GraphError::ParseEdge {
                    line: line_no + 1,
                    content: trimmed.chars().take(64).collect(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a `u v` edge list with a small header comment.
pub fn write_edge_list<W: Write>(graph: &DiGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# directed graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{} {}", u.raw(), v.raw())?;
    }
    Ok(())
}

/// Serialises the graph into the compact binary format.
pub fn to_binary(graph: &DiGraph) -> Bytes {
    let out = graph.out_adjacency();
    let inn = graph.in_adjacency();
    let mut buf = BytesMut::with_capacity(
        BINARY_MAGIC.len()
            + 17
            + (out.offsets().len() + inn.offsets().len()) * 8
            + (out.targets().len() + inn.targets().len()) * 4,
    );
    buf.put_slice(BINARY_MAGIC);
    buf.put_u8(BINARY_FORMAT_VERSION);
    buf.put_u64_le(graph.num_vertices() as u64);
    buf.put_u64_le(graph.num_edges() as u64);
    for adj in [out, inn] {
        buf.put_u64_le(adj.targets().len() as u64);
        for &off in adj.offsets() {
            buf.put_u64_le(off);
        }
        for &t in adj.targets() {
            buf.put_u32_le(t.raw());
        }
    }
    buf.freeze()
}

/// Deserialises a graph from the compact binary format.
pub fn from_binary(mut data: &[u8]) -> Result<DiGraph> {
    let fail = |msg: &str| GraphError::InvalidBinaryFormat(msg.to_string());
    if data.len() < BINARY_MAGIC.len() + 17 {
        return Err(fail("truncated header"));
    }
    if &data[..BINARY_MAGIC.len()] != BINARY_MAGIC {
        return Err(fail("bad magic"));
    }
    data.advance(BINARY_MAGIC.len());
    let version = data.get_u8();
    if version != BINARY_FORMAT_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: BINARY_FORMAT_VERSION,
        });
    }
    let num_vertices = data.get_u64_le() as usize;
    let declared_edges = data.get_u64_le() as usize;

    let read_adj = |data: &mut &[u8]| -> Result<CsrAdjacency> {
        if data.remaining() < 8 {
            return Err(fail("truncated adjacency header"));
        }
        let num_targets = data.get_u64_le() as usize;
        let offsets_len = num_vertices + 1;
        if data.remaining() < offsets_len * 8 + num_targets * 4 {
            return Err(fail("truncated adjacency body"));
        }
        let mut offsets = Vec::with_capacity(offsets_len);
        for _ in 0..offsets_len {
            offsets.push(data.get_u64_le());
        }
        let mut targets = Vec::with_capacity(num_targets);
        for _ in 0..num_targets {
            targets.push(VertexId(data.get_u32_le()));
        }
        CsrAdjacency::from_raw_parts(offsets, targets).ok_or_else(|| fail("inconsistent CSR"))
    };

    let out = read_adj(&mut data)?;
    let inn = read_adj(&mut data)?;
    if out.num_edges() != declared_edges || inn.num_edges() != declared_edges {
        return Err(fail("edge count mismatch"));
    }
    Ok(DiGraph::from_parts(out, inn))
}

/// Writes the binary format to disk.
pub fn write_binary_file<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    std::fs::write(path, to_binary(graph))?;
    Ok(())
}

/// Reads the binary format from disk.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    let data = std::fs::read(path)?;
    from_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::preferential::{preferential_attachment, PreferentialConfig};
    use crate::generators::regular::grid;

    #[test]
    fn edge_list_round_trip() {
        let g = grid(3, 3);
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let parsed = read_edge_list(text.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn edge_list_ignores_comments_and_blank_lines() {
        let input = "# a comment\n\n% another style\n0 1\n1 2\n 2   0 \n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_reports_parse_errors_with_line_numbers() {
        let input = "0 1\nnot an edge\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn binary_round_trip_small_and_generated() {
        for g in [
            grid(4, 5),
            preferential_attachment(PreferentialConfig {
                num_vertices: 400,
                edges_per_vertex: 3,
                reciprocity: 0.2,
                seed: 5,
            })
            .unwrap(),
            DiGraph::from_edge_list(0, &[]).unwrap(),
        ] {
            let bytes = to_binary(&g);
            let back = from_binary(&bytes).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn binary_round_trips_the_empty_graph_exactly() {
        let empty = DiGraph::from_edge_list(0, &[]).unwrap();
        let bytes = to_binary(&empty);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_edges(), 0);
        // Vertices-but-no-edges is a distinct shape from truly-empty; both round-trip.
        let isolated_only = DiGraph::from_edge_list(5, &[]).unwrap();
        let back = from_binary(&to_binary(&isolated_only)).unwrap();
        assert_eq!(back, isolated_only);
        assert_eq!(back.num_vertices(), 5);
    }

    #[test]
    fn binary_round_trip_preserves_an_isolated_max_vertex() {
        // The highest vertex id has no incident edge: its existence is carried only by
        // the offsets array, the exact thing a truncation bug would drop.
        let mut builder = crate::GraphBuilder::new();
        builder.add_edge(crate::VertexId(0), crate::VertexId(1));
        builder.reserve_vertices(8);
        let g = builder.build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.out_degree(crate::VertexId(7)), 0);

        let back = from_binary(&to_binary(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.num_vertices(), 8);
        assert_eq!(back.out_degree(crate::VertexId(7)), 0);
        assert_eq!(back.in_degree(crate::VertexId(7)), 0);
    }

    #[test]
    fn edge_list_accepts_crlf_line_endings() {
        let input = "# CRLF export\r\n0 1\r\n1 2\r\n\r\n2 0\r\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g, read_edge_list("0 1\n1 2\n2 0\n".as_bytes()).unwrap());
    }

    #[test]
    fn comment_only_files_parse_to_the_empty_graph() {
        let input = "# nothing but comments\n% and more\n\n   \n# done\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parse_errors_count_comment_and_blank_lines_too() {
        // The malformed line is line 5 of the *file* (1-based), not the 2nd edge line:
        // comment, blank and CRLF lines must advance the reported counter.
        let input = "# header\r\n\r\n0 1\r\n% interlude\r\nthree tokens here no\r\n1 2\r\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, content } => {
                assert_eq!(line, 5, "1-based physical line number");
                assert!(content.contains("three tokens"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A lone token on the very first line reports line 1.
        let err = read_edge_list("oops\n".as_bytes()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = grid(3, 3);
        let bytes = to_binary(&g);
        assert!(from_binary(&bytes[..10]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] = b'X';
        assert!(from_binary(&bad_magic).is_err());
        let mut truncated = bytes.to_vec();
        truncated.truncate(bytes.len() - 3);
        assert!(from_binary(&truncated).is_err());
    }

    #[test]
    fn binary_header_is_versioned_and_stable() {
        let g = grid(3, 3);
        let bytes = to_binary(&g);
        // The versioned header is byte-identical to the original unversioned magic, so
        // pre-versioning snapshot files stay readable. This assertion pins the bytes.
        assert_eq!(&bytes[..8], b"HCSPGR\x00\x01");
        assert_eq!(bytes[7], BINARY_FORMAT_VERSION);
        assert_eq!(from_binary(&bytes).unwrap(), g);
    }

    #[test]
    fn binary_rejects_other_versions_with_a_typed_error() {
        let g = grid(3, 3);
        for found in [0u8, 2, 7, 255] {
            let mut bytes = to_binary(&g).to_vec();
            bytes[BINARY_MAGIC.len()] = found;
            match from_binary(&bytes).unwrap_err() {
                GraphError::UnsupportedVersion {
                    found: f,
                    supported,
                } => {
                    assert_eq!(f, found);
                    assert_eq!(supported, BINARY_FORMAT_VERSION);
                }
                other => panic!("expected UnsupportedVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("hcsp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = grid(4, 4);

        let bin_path = dir.join("g.bin");
        write_binary_file(&g, &bin_path).unwrap();
        assert_eq!(read_binary_file(&bin_path).unwrap(), g);

        let txt_path = dir.join("g.txt");
        let mut file = std::fs::File::create(&txt_path).unwrap();
        write_edge_list(&g, &mut file).unwrap();
        assert_eq!(read_edge_list_file(&txt_path).unwrap(), g);
    }
}
