//! Compressed sparse row (CSR) adjacency storage.
//!
//! A [`CsrAdjacency`] stores, for every vertex `v`, a contiguous slice of neighbour ids.
//! [`crate::DiGraph`] holds two of them: one for out-neighbours (the forward graph `G`) and
//! one for in-neighbours (the reverse graph `G^r`), so both search directions used by the
//! bidirectional enumeration of the paper are O(1)-addressable without copying the graph.

use crate::vertex::VertexId;

/// Immutable CSR adjacency: `offsets[v]..offsets[v+1]` indexes into `targets`.
///
/// Neighbour lists are sorted in increasing vertex id and deduplicated; this makes
/// membership tests `O(log d)` and gives deterministic iteration order, which in turn makes
/// every algorithm in the workspace deterministic for a fixed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    /// Degree (in this adjacency direction) of each entry of `targets`, kept parallel to
    /// it: `target_degrees[i] == degree(targets[i])`. The cache-conscious hot array of
    /// the frontier filter pass — the `DistanceThenDegree` sort key reads the degree of
    /// every surviving candidate, and reading it from the slice being scanned costs one
    /// sequential stream instead of a dependent `offsets[w] / offsets[w+1]` gather per
    /// neighbour.
    target_degrees: Vec<u32>,
}

/// Computes the parallel per-target degree array from a finished `offsets`/`targets` pair.
fn inline_degrees(offsets: &[u64], targets: &[VertexId]) -> Vec<u32> {
    targets
        .iter()
        .map(|t| (offsets[t.index() + 1] - offsets[t.index()]) as u32)
        .collect()
}

impl CsrAdjacency {
    /// Builds a CSR structure from per-vertex sorted, deduplicated neighbour lists.
    ///
    /// The caller (normally [`crate::GraphBuilder`]) is responsible for sorting and
    /// deduplication; this constructor only concatenates.
    pub fn from_sorted_lists(lists: &[Vec<VertexId>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        offsets.push(0u64);
        for list in lists {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "neighbour lists must be strictly sorted"
            );
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u64);
        }
        let target_degrees = inline_degrees(&offsets, &targets);
        CsrAdjacency {
            offsets,
            targets,
            target_degrees,
        }
    }

    /// Builds a CSR structure directly from an edge list using counting sort.
    ///
    /// `edges` may contain duplicates; they are removed. The resulting neighbour lists are
    /// sorted. This is the allocation-friendly path used for large generated graphs.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        // Counting pass.
        let mut counts = vec![0u64; num_vertices + 1];
        for &(u, _) in edges {
            counts[u.index() + 1] += 1;
        }
        // Prefix sums -> provisional offsets.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut targets = vec![VertexId(0); edges.len()];
        let mut cursor = counts.clone();
        for &(u, v) in edges {
            let slot = cursor[u.index()];
            targets[slot as usize] = v;
            cursor[u.index()] += 1;
        }
        // Sort and deduplicate each row in place, then compact.
        let mut dedup_targets = Vec::with_capacity(targets.len());
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0u64);
        for v in 0..num_vertices {
            let start = counts[v] as usize;
            let end = counts[v + 1] as usize;
            let row = &mut targets[start..end];
            row.sort_unstable();
            let mut prev: Option<VertexId> = None;
            for &t in row.iter() {
                if prev != Some(t) {
                    dedup_targets.push(t);
                    prev = Some(t);
                }
            }
            offsets.push(dedup_targets.len() as u64);
        }
        let target_degrees = inline_degrees(&offsets, &dedup_targets);
        CsrAdjacency {
            offsets,
            targets: dedup_targets,
            target_degrees,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let start = self.offsets[v.index()] as usize;
        let end = self.offsets[v.index() + 1] as usize;
        &self.targets[start..end]
    }

    /// Degree of `v` in this adjacency direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The degrees of `v`'s neighbours, parallel to [`CsrAdjacency::neighbors`]:
    /// `neighbor_degrees(v)[i] == degree(neighbors(v)[i])`.
    ///
    /// One contiguous read per frontier fill pass; see the `target_degrees` field.
    #[inline]
    pub fn neighbor_degrees(&self, v: VertexId) -> &[u32] {
        let start = self.offsets[v.index()] as usize;
        let end = self.offsets[v.index() + 1] as usize;
        &self.target_degrees[start..end]
    }

    /// Whether the edge `(u, v)` exists in this adjacency direction.
    #[inline]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all `(source, target)` pairs stored in this adjacency.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let u = VertexId::new(u);
            self.neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// Raw offsets array (length `n + 1`), exposed for serialisation.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw concatenated target array, exposed for serialisation.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Reconstructs a CSR adjacency from raw parts (used by the binary loader).
    ///
    /// Returns `None` if the parts are inconsistent (non-monotone offsets or a final offset
    /// not equal to `targets.len()`).
    pub fn from_raw_parts(offsets: Vec<u64>, targets: Vec<VertexId>) -> Option<Self> {
        if offsets.is_empty() || *offsets.last().unwrap() as usize != targets.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if targets.iter().any(|t| t.index() + 1 >= offsets.len()) {
            return None;
        }
        // The binary format carries only offsets + targets; the hot degree array is
        // derived, so the on-disk format needs no change.
        let target_degrees = inline_degrees(&offsets, &targets);
        Some(CsrAdjacency {
            offsets,
            targets,
            target_degrees,
        })
    }

    /// Approximate heap footprint in bytes (offsets + targets + inline degrees).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.target_degrees.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn from_edges_sorts_and_dedups() {
        let edges = vec![(v(0), v(2)), (v(0), v(1)), (v(0), v(2)), (v(2), v(0))];
        let csr = CsrAdjacency::from_edges(3, &edges);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.neighbors(v(0)), &[v(1), v(2)]);
        assert_eq!(csr.neighbors(v(1)), &[] as &[VertexId]);
        assert_eq!(csr.neighbors(v(2)), &[v(0)]);
        assert_eq!(csr.degree(v(0)), 2);
        assert!(csr.contains_edge(v(0), v(2)));
        assert!(!csr.contains_edge(v(1), v(2)));
    }

    #[test]
    fn from_sorted_lists_round_trip() {
        let lists = vec![vec![v(1), v(3)], vec![], vec![v(0)], vec![v(2)]];
        let csr = CsrAdjacency::from_sorted_lists(&lists);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(csr.neighbors(v(i as u32)), list.as_slice());
        }
    }

    #[test]
    fn iter_edges_yields_all_pairs() {
        let edges = vec![(v(0), v(1)), (v(1), v(2)), (v(2), v(0))];
        let csr = CsrAdjacency::from_edges(3, &edges);
        let collected: Vec<_> = csr.iter_edges().collect();
        assert_eq!(collected, edges);
    }

    #[test]
    fn from_raw_parts_validates() {
        let csr = CsrAdjacency::from_edges(3, &[(v(0), v(1))]);
        let rebuilt =
            CsrAdjacency::from_raw_parts(csr.offsets().to_vec(), csr.targets().to_vec()).unwrap();
        assert_eq!(rebuilt, csr);

        assert!(CsrAdjacency::from_raw_parts(vec![0, 2], vec![v(1)]).is_none());
        assert!(CsrAdjacency::from_raw_parts(vec![2, 0, 1], vec![v(1)]).is_none());
        assert!(CsrAdjacency::from_raw_parts(vec![], vec![]).is_none());
    }

    #[test]
    fn empty_graph_is_fine() {
        let csr = CsrAdjacency::from_edges(0, &[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn heap_bytes_counts_all_arrays() {
        // 3 offsets (u64) + 1 target (u32) + 1 inline degree (u32).
        let csr = CsrAdjacency::from_edges(2, &[(v(0), v(1))]);
        assert_eq!(csr.heap_bytes(), 3 * 8 + 4 + 4);
    }

    #[test]
    fn neighbor_degrees_mirror_the_neighbor_slice() {
        let edges = vec![
            (v(0), v(1)),
            (v(0), v(2)),
            (v(1), v(2)),
            (v(2), v(0)),
            (v(2), v(1)),
        ];
        for csr in [
            CsrAdjacency::from_edges(3, &edges),
            CsrAdjacency::from_raw_parts(
                CsrAdjacency::from_edges(3, &edges).offsets().to_vec(),
                CsrAdjacency::from_edges(3, &edges).targets().to_vec(),
            )
            .unwrap(),
        ] {
            for u in 0..3 {
                let u = v(u);
                let degrees: Vec<u32> = csr
                    .neighbors(u)
                    .iter()
                    .map(|&w| csr.degree(w) as u32)
                    .collect();
                assert_eq!(csr.neighbor_degrees(u), degrees.as_slice());
            }
        }
    }

    #[test]
    fn from_raw_parts_rejects_out_of_range_targets() {
        assert!(CsrAdjacency::from_raw_parts(vec![0, 1], vec![v(7)]).is_none());
    }
}
