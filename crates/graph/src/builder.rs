//! Incremental graph construction.

use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// Incremental builder producing a [`DiGraph`].
///
/// The builder accumulates edges (optionally rejecting self loops), grows the vertex count
/// on demand, and defers sorting/deduplication to the final CSR construction, so insertion
/// is amortised O(1).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    skip_self_loops: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity for `num_vertices` vertices and
    /// `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
            skip_self_loops: false,
        }
    }

    /// When enabled, `add_edge` silently drops edges of the form `(v, v)`.
    ///
    /// Self loops can never occur on a simple path with at least one hop, so dropping them
    /// at build time slightly shrinks the CSR without changing any query answer.
    pub fn skip_self_loops(mut self, skip: bool) -> Self {
        self.skip_self_loops = skip;
        self
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Current number of vertices (grows as edges touching new ids are added).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far (before deduplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge, growing the vertex count to cover both endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if self.skip_self_loops && u == v {
            return;
        }
        self.num_vertices = self.num_vertices.max(u.index() + 1).max(v.index() + 1);
        self.edges.push((u, v));
    }

    /// Adds a directed edge given raw `u32` endpoints, validating against overflow.
    pub fn add_edge_raw(&mut self, u: u32, v: u32) -> Result<()> {
        let (u, v) = (VertexId(u), VertexId(v));
        if u.index() >= u32::MAX as usize || v.index() >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices(u.index().max(v.index())));
        }
        self.add_edge(u, v);
        Ok(())
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Finalises the builder into an immutable [`DiGraph`] (sorting and deduplicating).
    pub fn build(self) -> DiGraph {
        DiGraph::from_csr_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn builder_grows_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_edge(v(0), v(5));
        b.add_edge(v(2), v(1));
        assert_eq!(b.num_vertices(), 6);
        assert_eq!(b.num_edges(), 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(v(0), v(5)));
    }

    #[test]
    fn reserve_vertices_allows_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_edge(v(0), v(1));
        b.reserve_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(v(9)), 0);
    }

    #[test]
    fn self_loops_can_be_skipped() {
        let mut keep = GraphBuilder::new();
        keep.add_edge(v(1), v(1));
        assert_eq!(keep.build().num_edges(), 1);

        let mut skip = GraphBuilder::new().skip_self_loops(true);
        skip.add_edge(v(1), v(1));
        skip.add_edge(v(0), v(1));
        let g = skip.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(v(1), v(1)));
    }

    #[test]
    fn extend_edges_matches_repeated_add() {
        let mut a = GraphBuilder::new();
        a.extend_edges([(v(0), v(1)), (v(1), v(2))]);
        let mut b = GraphBuilder::new();
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn with_capacity_starts_with_given_vertices() {
        let b = GraphBuilder::with_capacity(7, 10);
        assert_eq!(b.num_vertices(), 7);
        assert_eq!(b.build().num_vertices(), 7);
    }
}
