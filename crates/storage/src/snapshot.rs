//! Snapshot files: the compacted prefix of the update history.
//!
//! A snapshot is simply the versioned binary graph format
//! ([`hcsp_graph::io::to_binary`]) under the name `snapshot-<seq>.graph` — the exact
//! bytes a cold start would load, with no WAL replay needed for the batches it absorbs.
//! Like the manifest, a snapshot is staged under a temporary name, fsynced, renamed into
//! place and directory-fsynced, so a crash mid-write leaves at worst an orphan `.tmp`
//! that the next open garbage-collects. A snapshot only becomes *live* when a manifest
//! naming it commits.

use crate::error::StorageError;
use crate::manifest::snapshot_name;
use crate::vfs::Vfs;
use hcsp_graph::io::{from_binary, to_binary};
use hcsp_graph::DiGraph;

/// Stages and durably installs `graph` as `snapshot-<seq>.graph`.
///
/// The file is complete and durable when this returns, but not yet live: the caller
/// must commit a manifest referencing `seq` to make it so.
pub fn write_snapshot(vfs: &dyn Vfs, seq: u64, graph: &DiGraph) -> Result<(), StorageError> {
    let name = snapshot_name(seq);
    let tmp = format!("{name}.tmp");
    let mut file = vfs.create(&tmp)?;
    file.write_all(&to_binary(graph))?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &name)?;
    vfs.sync_dir()?;
    Ok(())
}

/// Loads `snapshot-<seq>.graph`. The file was committed by a manifest, so absence or
/// damage is real corruption, not a crash artefact.
pub fn read_snapshot(vfs: &dyn Vfs, seq: u64) -> Result<DiGraph, StorageError> {
    let name = snapshot_name(seq);
    if !vfs.exists(&name) {
        return Err(StorageError::Missing { file: name });
    }
    from_binary(&vfs.read(&name)?).map_err(StorageError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{CrashModel, FailpointFs, KillPoint};

    fn sample_graph() -> DiGraph {
        DiGraph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap()
    }

    #[test]
    fn snapshot_round_trips() {
        let fs = FailpointFs::new();
        let vfs = fs.as_vfs();
        let g = sample_graph();
        write_snapshot(vfs.as_ref(), 3, &g).unwrap();
        assert_eq!(read_snapshot(vfs.as_ref(), 3).unwrap(), g);
        assert!(matches!(
            read_snapshot(vfs.as_ref(), 4),
            Err(StorageError::Missing { .. })
        ));
        assert_eq!(fs.file_names(), vec!["snapshot-3.graph".to_string()]);
    }

    #[test]
    fn crash_mid_write_leaves_only_an_orphan_tmp() {
        let fs = FailpointFs::new();
        let vfs = fs.as_vfs();
        fs.set_kill(KillPoint::WriteByte(10));
        assert!(write_snapshot(vfs.as_ref(), 0, &sample_graph()).is_err());
        let image = fs.crash(CrashModel::KeepAll);
        assert!(matches!(
            read_snapshot(image.as_vfs().as_ref(), 0),
            Err(StorageError::Missing { .. })
        ));
        assert_eq!(image.file_names(), vec!["snapshot-0.graph.tmp".to_string()]);
    }
}
