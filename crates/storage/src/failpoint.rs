//! Deterministic crash injection: an in-memory [`Vfs`] that can die mid-write.
//!
//! [`FailpointFs`] is the substrate of the crash-matrix recovery tests. It models the
//! two things a process death does to a storage stack:
//!
//! 1. **The kill itself** — a [`KillPoint`] arms the filesystem to fail at an exact
//!    *byte offset* of the cumulative write stream (tearing the write that crosses it:
//!    the prefix up to the offset lands in the file, the rest does not) or at an exact
//!    *mutating-operation index* (failing that operation before it takes effect). Once a
//!    kill triggers the filesystem is dead: every subsequent operation errors, exactly
//!    like syscalls after `SIGKILL` never happen. The exception is
//!    [`KillPoint::TransientWriteByte`], which tears one write and then lets the
//!    filesystem live on — the shape of a transient `ENOSPC`/`EIO`, used to test that
//!    the store latches itself closed after a failed append.
//! 2. **What survives** — [`FailpointFs::crash`] produces the post-reboot image under a
//!    [`CrashModel`]: [`CrashModel::DropUnsynced`] rolls every file back to its last
//!    `sync` (the page cache was lost), [`CrashModel::KeepAll`] keeps every written byte
//!    (the cache happened to be flushed). A correct recovery protocol must come up
//!    consistent under *both*, for every kill point — that is the matrix the tests walk.
//!
//! Simplifications, documented on purpose: renames and creates are treated as durable
//! once performed (as if the directory were fsynced immediately), while file *contents*
//! strictly require `sync` to survive `DropUnsynced`. The store's commit points are
//! content-then-rename, so this models the dangerous half (lost content) precisely and
//! the benign half (lost directory entry ⇒ the old manifest stays live) conservatively.

use crate::vfs::{Vfs, VfsFile};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Where the filesystem dies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KillPoint {
    /// Never dies.
    #[default]
    None,
    /// The write that would push the cumulative written-byte counter past this offset
    /// persists only the bytes up to it, then fails; everything after errors.
    WriteByte(u64),
    /// The `n`-th mutating operation (1-based: create/write/sync/rename/remove/
    /// truncate/sync_dir) fails before taking effect; everything after errors.
    Op(u64),
    /// Like [`KillPoint::WriteByte`], but the filesystem *survives*: the crossing write
    /// persists a prefix and reports an error, then the failpoint disarms and every
    /// later operation succeeds. Models a transient `ENOSPC`/`EIO` short write — the
    /// case a store must latch itself against, since the torn bytes stay in the file
    /// while the process keeps running.
    TransientWriteByte(u64),
}

/// What the page cache did at the moment of the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashModel {
    /// Un-`sync`ed file contents are lost: each file rolls back to its synced length.
    DropUnsynced,
    /// Every written byte happens to survive (the kernel flushed on its own).
    KeepAll,
}

#[derive(Debug, Clone, Default)]
struct FileState {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Debug, Default)]
struct Inner {
    files: BTreeMap<String, FileState>,
    bytes_written: u64,
    ops: u64,
    kill: KillPoint,
    dead: bool,
}

impl Inner {
    fn dead_err() -> io::Error {
        io::Error::other("failpoint: filesystem is dead")
    }

    /// Counts one mutating operation; kills it if the op failpoint fires.
    fn mutating_op(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        self.ops += 1;
        if let KillPoint::Op(n) = self.kill {
            if self.ops >= n {
                self.dead = true;
                return Err(Self::dead_err());
            }
        }
        Ok(())
    }

    /// How many of `len` bytes the byte failpoint allows; kills (or transiently fails)
    /// after a short write.
    fn admit_bytes(&mut self, len: usize) -> (usize, Option<io::Error>) {
        match self.kill {
            KillPoint::WriteByte(limit) if self.bytes_written + len as u64 > limit => {
                let allowed = limit.saturating_sub(self.bytes_written) as usize;
                self.bytes_written = limit;
                self.dead = true;
                (allowed, Some(Self::dead_err()))
            }
            KillPoint::TransientWriteByte(limit) if self.bytes_written + len as u64 > limit => {
                let allowed = limit.saturating_sub(self.bytes_written) as usize;
                self.bytes_written = limit;
                self.kill = KillPoint::None;
                (
                    allowed,
                    Some(io::Error::other("failpoint: transient short write")),
                )
            }
            _ => {
                self.bytes_written += len as u64;
                (len, None)
            }
        }
    }
}

/// A deterministic, crash-injectable in-memory [`Vfs`]. Cloning shares the image.
#[derive(Debug, Clone, Default)]
pub struct FailpointFs {
    inner: Arc<Mutex<Inner>>,
}

impl FailpointFs {
    /// An empty filesystem with no kill armed.
    pub fn new() -> FailpointFs {
        FailpointFs::default()
    }

    /// A clonable `Arc<dyn Vfs>` view of this filesystem.
    pub fn as_vfs(&self) -> Arc<dyn Vfs> {
        Arc::new(self.clone())
    }

    /// Arms (or disarms, with [`KillPoint::None`]) the failpoint.
    pub fn set_kill(&self, kill: KillPoint) {
        self.inner.lock().unwrap().kill = kill;
    }

    /// Whether a kill has triggered.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().unwrap().dead
    }

    /// Cumulative bytes admitted across all writes (the domain of
    /// [`KillPoint::WriteByte`]).
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().unwrap().bytes_written
    }

    /// Cumulative mutating operations (the domain of [`KillPoint::Op`]).
    pub fn ops(&self) -> u64 {
        self.inner.lock().unwrap().ops
    }

    /// The post-reboot filesystem image under `model`: a fresh, alive [`FailpointFs`]
    /// with no kill armed, holding what survived the crash.
    pub fn crash(&self, model: CrashModel) -> FailpointFs {
        let inner = self.inner.lock().unwrap();
        let mut files = inner.files.clone();
        if model == CrashModel::DropUnsynced {
            for state in files.values_mut() {
                state.data.truncate(state.synced);
            }
        }
        // Everything in the image is on stable storage now.
        for state in files.values_mut() {
            state.synced = state.data.len();
        }
        FailpointFs {
            inner: Arc::new(Mutex::new(Inner {
                files,
                ..Inner::default()
            })),
        }
    }

    /// Writes the current image to a real directory (for CI failure artifacts).
    pub fn dump_to(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let inner = self.inner.lock().unwrap();
        for (name, state) in &inner.files {
            std::fs::write(dir.join(name), &state.data)?;
        }
        Ok(())
    }

    /// The names currently present, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.inner.lock().unwrap().files.keys().cloned().collect()
    }
}

struct FpFile {
    inner: Arc<Mutex<Inner>>,
    name: String,
}

impl VfsFile for FpFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        let (allowed, failed) = inner.admit_bytes(data.len());
        let state = inner
            .files
            .get_mut(&self.name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, self.name.clone()))?;
        state.data.extend_from_slice(&data[..allowed]);
        match failed {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        if let Some(state) = inner.files.get_mut(&self.name) {
            state.synced = state.data.len();
        }
        Ok(())
    }
}

impl Vfs for FailpointFs {
    fn create(&self, name: &str) -> io::Result<Box<dyn VfsFile>> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        inner.files.insert(name.to_string(), FileState::default());
        Ok(Box::new(FpFile {
            inner: Arc::clone(&self.inner),
            name: name.to_string(),
        }))
    }

    fn open_append(&self, name: &str) -> io::Result<Box<dyn VfsFile>> {
        let inner = self.inner.lock().unwrap();
        if inner.dead {
            return Err(Inner::dead_err());
        }
        if !inner.files.contains_key(name) {
            return Err(io::Error::new(io::ErrorKind::NotFound, name.to_string()));
        }
        Ok(Box::new(FpFile {
            inner: Arc::clone(&self.inner),
            name: name.to_string(),
        }))
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        if inner.dead {
            return Err(Inner::dead_err());
        }
        inner
            .files
            .get(name)
            .map(|s| s.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        let inner = self.inner.lock().unwrap();
        !inner.dead && inner.files.contains_key(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        let state = inner
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        inner.files.insert(to.to_string(), state);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        inner
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op()?;
        let state = inner
            .files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        state.data.truncate(len as usize);
        state.synced = state.synced.min(len as usize);
        Ok(())
    }

    fn sync_dir(&self) -> io::Result<()> {
        self.inner.lock().unwrap().mutating_op()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.lock().unwrap();
        if inner.dead {
            return Err(Inner::dead_err());
        }
        Ok(inner.files.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_kill_tears_the_crossing_write() {
        let fs = FailpointFs::new();
        let mut f = fs.create("a").unwrap();
        f.write_all(b"0123").unwrap();
        fs.set_kill(KillPoint::WriteByte(6));
        // This write crosses offset 6: bytes 4..6 land, the rest is torn off.
        assert!(f.write_all(b"456789").is_err());
        assert!(fs.is_dead());
        assert!(f.write_all(b"x").is_err(), "dead fs rejects everything");

        let image = fs.crash(CrashModel::KeepAll);
        assert_eq!(image.read("a").unwrap(), b"012345");
    }

    #[test]
    fn drop_unsynced_rolls_back_to_the_last_sync() {
        let fs = FailpointFs::new();
        let mut f = fs.create("a").unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b" volatile").unwrap();

        let lost = fs.crash(CrashModel::DropUnsynced);
        assert_eq!(lost.read("a").unwrap(), b"durable");
        let lucky = fs.crash(CrashModel::KeepAll);
        assert_eq!(lucky.read("a").unwrap(), b"durable volatile");
    }

    #[test]
    fn transient_byte_kill_tears_one_write_and_survives() {
        let fs = FailpointFs::new();
        let mut f = fs.create("a").unwrap();
        f.write_all(b"0123").unwrap();
        fs.set_kill(KillPoint::TransientWriteByte(6));
        // This write crosses offset 6: bytes 4..6 land, the write errors...
        assert!(f.write_all(b"456789").is_err());
        // ...but the filesystem lives on, with the torn prefix in the file.
        assert!(!fs.is_dead());
        f.write_all(b"X").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"012345X");
    }

    #[test]
    fn op_kill_fails_the_exact_operation() {
        let fs = FailpointFs::new();
        let mut f = fs.create("a").unwrap(); // op 1
        f.write_all(b"x").unwrap(); // op 2
        fs.set_kill(KillPoint::Op(3));
        assert!(f.sync().is_err(), "op 3 dies before taking effect");
        let image = fs.crash(CrashModel::DropUnsynced);
        assert_eq!(image.read("a").unwrap(), b"", "the sync never happened");
    }

    #[test]
    fn rename_and_truncate_behave() {
        let fs = FailpointFs::new();
        let mut f = fs.create("t.tmp").unwrap();
        f.write_all(b"abcdef").unwrap();
        f.sync().unwrap();
        fs.rename("t.tmp", "t").unwrap();
        assert!(!fs.exists("t.tmp"));
        fs.truncate("t", 3).unwrap();
        assert_eq!(fs.read("t").unwrap(), b"abc");
        assert_eq!(fs.file_names(), vec!["t".to_string()]);
        // Truncation also clips the synced watermark.
        let image = fs.crash(CrashModel::DropUnsynced);
        assert_eq!(image.read("t").unwrap(), b"abc");
    }

    #[test]
    fn crash_image_is_alive_and_independent() {
        let fs = FailpointFs::new();
        let mut f = fs.create("a").unwrap();
        f.write_all(b"x").unwrap();
        f.sync().unwrap();
        fs.set_kill(KillPoint::Op(u64::MAX)); // armed but never reached
        let image = fs.crash(CrashModel::DropUnsynced);
        let mut g = image.create("b").unwrap();
        g.write_all(b"y").unwrap();
        assert!(image.exists("b"));
        assert!(!fs.exists("b"), "images do not alias the crashed fs");
    }
}
