//! The durable update store: a WAL chain + snapshot + manifest under one directory.
//!
//! # On-disk protocol
//!
//! A store directory holds exactly one [`Manifest`], one live snapshot
//! (`snapshot-<S>.graph`), and a *chain* of WAL files `wal-<S>.log, wal-<S+1>.log, …`
//! with consecutive sequence numbers starting at the manifest's `wal_start`. Invariant:
//! `snapshot-<S>` is the graph state with exactly the first `snapshot_batches` update
//! batches folded in, and the first frame of `wal-<S>.log` logs batch
//! `snapshot_batches` — so `state = snapshot ⊕ chain`, always.
//!
//! **Append** writes one CRC-framed batch to the newest chain file and fsyncs per
//! [`FsyncPolicy`]. **Checkpoint** is a three-step protocol engineered so a crash
//! anywhere leaves a consistent store:
//!
//! 1. *Rotate* (under the store lock): fsync and close the active WAL file, create
//!    `wal-<S+1>.log` durably. New appends land in the new file; the state captured for
//!    the snapshot is exactly "everything before it".
//! 2. *Snapshot* (outside the lock): write `snapshot-<S+1>.graph` durably. Appends and
//!    queries proceed concurrently.
//! 3. *Commit*: atomically install a manifest naming the new pair, then garbage-collect
//!    the superseded files. The manifest rename is the commit point — before it, the
//!    old `snapshot ⊕ longer chain` is live; after it, the new one. Both describe the
//!    same state.
//!
//! **Recovery** loads the manifest, deletes everything it does not reference (orphan
//! `.tmp`s, superseded snapshots, pre-chain WAL files), loads the snapshot, and replays
//! the chain. Any damage in the newest chain file — torn frame, CRC mismatch, truncated
//! tail — classifies the rest as lost: the file is truncated back to its last intact
//! frame and appending resumes there. Damage the protocol's fsync discipline makes
//! impossible (a torn *middle* file — one whose successor was durably rotated with an
//! intact header — or a corrupt manifest) is reported as [`StorageError::Corrupt`]
//! instead of being silently dropped.
//!
//! **Failure latch.** A failed append or fsync may leave torn or duplicate frame bytes
//! in the active file; if later appends were allowed to land after that garbage, a
//! subsequent *acknowledged* batch would be silently dropped at recovery (the scan
//! classifies everything from the first bad frame onward as torn tail). So the first
//! write failure *poisons* the store: every further [`UpdateStore::append`],
//! [`UpdateStore::sync`], or checkpoint call fails with [`StorageError::Poisoned`]
//! until the store is reopened, which truncates the damage away.

use crate::error::StorageError;
use crate::manifest::{parse_file_name, snapshot_name, wal_name, Manifest, MANIFEST_NAME};
use crate::snapshot::{read_snapshot, write_snapshot};
use crate::vfs::{Vfs, VfsFile};
use crate::wal::{
    decode_wal_header, encode_frame, encode_wal_header, scan_wal, FsyncPolicy, WAL_HEADER_LEN,
};
use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate};
use std::sync::Arc;

/// Tuning knobs for an [`UpdateStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appended batches are forced to stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What recovery found and did. Attached to every successful open for observability
/// and asserted on by the crash-matrix tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the snapshot that was loaded.
    pub snapshot_seq: u64,
    /// Batches already folded into that snapshot.
    pub snapshot_batches: u64,
    /// WAL chain files that contributed at least their header.
    pub wal_files: usize,
    /// Intact batches replayed from the chain.
    pub replayed_batches: usize,
    /// Individual updates inside those batches.
    pub replayed_updates: usize,
    /// Bytes of torn tail truncated off the newest chain file (plus any bytes of
    /// dangling post-crash files the manifest never committed).
    pub dropped_bytes: u64,
    /// Why the newest chain file's tail was dropped, when it was.
    pub torn_tail: Option<String>,
}

/// The result of [`UpdateStore::open`]: the store plus everything needed to rebuild
/// the in-memory state it represents.
pub struct Recovered {
    /// The store, ready for appends.
    pub store: UpdateStore,
    /// The snapshot graph (state after `report.snapshot_batches` batches).
    pub base: DiGraph,
    /// The replayed chain batches, in order; folding them over `base` yields the
    /// recovered state.
    pub batches: Vec<Vec<GraphUpdate>>,
    /// What recovery found.
    pub report: RecoveryReport,
}

impl Recovered {
    /// Folds the replayed batches over the snapshot, yielding the recovered graph.
    pub fn fold(&self) -> DiGraph {
        fold_batches(self.base.clone(), &self.batches)
    }
}

/// Folds update batches over a base graph (replay order, idempotent).
pub fn fold_batches(base: DiGraph, batches: &[Vec<GraphUpdate>]) -> DiGraph {
    if batches.iter().all(|b| b.is_empty()) {
        return base;
    }
    let mut delta = DeltaGraph::new(base);
    for batch in batches {
        for update in batch {
            delta.apply(update);
        }
    }
    delta.compact()
}

/// An in-flight checkpoint: rotation has happened, the snapshot and manifest have not.
/// Produced by [`UpdateStore::begin_checkpoint`], consumed by
/// [`UpdateStore::commit_checkpoint`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a begun checkpoint must be committed (or the rotation is wasted)"]
pub struct CheckpointTicket {
    /// Sequence of the snapshot/WAL pair being installed.
    pub seq: u64,
    /// Batches the snapshot must absorb: the caller's graph must be the state after
    /// exactly this many batches.
    pub batches: u64,
}

/// A durable, crash-recoverable log + snapshot store for [`GraphUpdate`] batches.
pub struct UpdateStore {
    vfs: Arc<dyn Vfs>,
    fsync: FsyncPolicy,
    manifest: Manifest,
    active: Box<dyn VfsFile>,
    active_seq: u64,
    next_batch_seq: u64,
    tail_bytes: u64,
    appends_since_sync: u32,
    /// Set on the first append/fsync failure; while set, every write path is rejected
    /// with [`StorageError::Poisoned`] (the active tail may hold garbage bytes).
    poisoned: Option<String>,
}

impl std::fmt::Debug for UpdateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateStore")
            .field("fsync", &self.fsync)
            .field("manifest", &self.manifest)
            .field("active_seq", &self.active_seq)
            .field("next_batch_seq", &self.next_batch_seq)
            .field("tail_bytes", &self.tail_bytes)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// Durably creates a new, empty-named WAL file and returns its open handle.
fn create_wal(
    vfs: &dyn Vfs,
    seq: u64,
    first_batch_seq: u64,
) -> Result<Box<dyn VfsFile>, StorageError> {
    let mut file = vfs.create(&wal_name(seq))?;
    file.write_all(&encode_wal_header(first_batch_seq))?;
    file.sync()?;
    vfs.sync_dir()?;
    Ok(file)
}

impl UpdateStore {
    /// Initialises a store in an empty directory: snapshot 0 is `initial`, the chain
    /// starts at `wal-0.log`, and the manifest commits the pair. Fails with
    /// [`StorageError::AlreadyExists`] if the directory already holds a manifest.
    pub fn create(
        vfs: Arc<dyn Vfs>,
        options: StoreOptions,
        initial: &DiGraph,
    ) -> Result<UpdateStore, StorageError> {
        if vfs.exists(MANIFEST_NAME) {
            return Err(StorageError::AlreadyExists);
        }
        write_snapshot(vfs.as_ref(), 0, initial)?;
        let active = create_wal(vfs.as_ref(), 0, 0)?;
        Manifest {
            snapshot: Some(0),
            wal_start: 0,
            snapshot_batches: 0,
        }
        .commit(vfs.as_ref())?;
        Ok(UpdateStore {
            vfs,
            fsync: options.fsync,
            manifest: Manifest {
                snapshot: Some(0),
                wal_start: 0,
                snapshot_batches: 0,
            },
            active,
            active_seq: 0,
            next_batch_seq: 0,
            tail_bytes: 0,
            appends_since_sync: 0,
            poisoned: None,
        })
    }

    /// Recovers the store from a directory: load the manifest, garbage-collect what it
    /// does not reference, load the snapshot, replay the chain, truncate any torn tail.
    ///
    /// Fails with [`StorageError::Missing`] when no manifest exists (nothing was ever
    /// created — or created-but-never-committed, in which case nothing was ever
    /// acknowledged either).
    pub fn open(vfs: Arc<dyn Vfs>, options: StoreOptions) -> Result<Recovered, StorageError> {
        let manifest = Manifest::load(vfs.as_ref())?;

        // Phase 1: garbage. Everything the manifest does not reference is a leftover of
        // a crashed checkpoint (orphan tmp, uncommitted snapshot, superseded WAL) and is
        // deleted before it can confuse anyone. Chain files (seq >= wal_start) survive.
        let mut dropped_bytes = 0u64;
        for name in vfs.list()? {
            let keep = match parse_file_name(&name) {
                Some(("snapshot", seq)) => manifest.snapshot == Some(seq),
                Some(("wal", seq)) => seq >= manifest.wal_start,
                _ => name == MANIFEST_NAME,
            };
            if !keep {
                dropped_bytes += vfs.read(&name).map(|b| b.len() as u64).unwrap_or(0);
                vfs.remove(&name)?;
            }
        }

        // Phase 2: the snapshot.
        let base = match manifest.snapshot {
            Some(seq) => read_snapshot(vfs.as_ref(), seq)?,
            None => DiGraph::from_edge_list(0, &[])?,
        };

        // Phase 3: the chain. Files must exist with consecutive sequences and carry
        // consecutive batches; the first break ends the chain. Only the *newest*
        // surviving file may be torn (older files were fsynced before their successor
        // was created), so a torn middle file is corruption, not a crash artefact.
        let mut batches = Vec::new();
        let mut torn_tail = None;
        let mut wal_files = 0usize;
        let mut chain_seq = manifest.wal_start;
        let mut expect_batch = manifest.snapshot_batches;
        let mut active_seq = manifest.wal_start;
        let mut tail_bytes = 0u64;
        loop {
            let name = wal_name(chain_seq);
            if !vfs.exists(&name) {
                if chain_seq == manifest.wal_start {
                    // The manifest committed after this file was durably created.
                    return Err(StorageError::Missing { file: name });
                }
                break;
            }
            let bytes = vfs.read(&name)?;
            if chain_seq > manifest.wal_start && bytes.len() < WAL_HEADER_LEN {
                // A rotated file whose header never finished: the checkpoint created it
                // durably but died before writing (or syncing) the header — the manifest
                // that would have referenced it never committed, so it is a crash
                // artefact, not corruption. Drop it and everything after it.
                let mut later = chain_seq;
                while vfs.exists(&wal_name(later)) {
                    dropped_bytes += vfs
                        .read(&wal_name(later))
                        .map(|b| b.len() as u64)
                        .unwrap_or(0);
                    vfs.remove(&wal_name(later))?;
                    later += 1;
                }
                torn_tail = Some(format!(
                    "rotated {name} lost its header in a crash ({} of {WAL_HEADER_LEN} bytes)",
                    bytes.len()
                ));
                break;
            }
            let scan =
                scan_wal(&bytes, Some(expect_batch)).map_err(|detail| StorageError::Corrupt {
                    file: name.clone(),
                    detail,
                })?;
            wal_files += 1;
            active_seq = chain_seq;
            tail_bytes += scan.valid_len - WAL_HEADER_LEN as u64;
            expect_batch = scan.next_seq();
            let scan_torn = scan.torn;
            batches.extend(scan.batches);
            if let Some(detail) = scan_torn {
                // A torn file is only a crash artefact when it is the *newest* chain
                // file: rotation fsyncs a file completely before its successor's header
                // is written. A torn file whose successor carries an intact header is
                // therefore external damage to committed data — report it, don't drop
                // acknowledged batches.
                let successor = wal_name(chain_seq + 1);
                if let Ok(next_bytes) = vfs.read(&successor) {
                    if decode_wal_header(&next_bytes).is_ok() {
                        return Err(StorageError::Corrupt {
                            file: name,
                            detail: format!(
                                "torn middle file ({detail}), but {successor} was \
                                 durably rotated after it"
                            ),
                        });
                    }
                }
                // Drop the tail: truncate this file back to its last intact frame and
                // discard any later chain files (they can only be dangling rotations
                // whose manifest never committed).
                dropped_bytes += bytes.len() as u64 - scan.valid_len;
                vfs.truncate(&name, scan.valid_len)?;
                let mut later = chain_seq + 1;
                while vfs.exists(&wal_name(later)) {
                    dropped_bytes += vfs
                        .read(&wal_name(later))
                        .map(|b| b.len() as u64)
                        .unwrap_or(0);
                    vfs.remove(&wal_name(later))?;
                    later += 1;
                }
                torn_tail = Some(detail);
                break;
            }
            chain_seq += 1;
        }

        let replayed_updates = batches.iter().map(Vec::len).sum();
        let report = RecoveryReport {
            snapshot_seq: manifest.snapshot.unwrap_or(0),
            snapshot_batches: manifest.snapshot_batches,
            wal_files,
            replayed_batches: batches.len(),
            replayed_updates,
            dropped_bytes,
            torn_tail,
        };
        let active = vfs.open_append(&wal_name(active_seq))?;
        let store = UpdateStore {
            vfs,
            fsync: options.fsync,
            manifest,
            active,
            active_seq,
            next_batch_seq: expect_batch,
            tail_bytes,
            appends_since_sync: 0,
            poisoned: None,
        };
        Ok(Recovered {
            store,
            base,
            batches,
            report,
        })
    }

    /// Rejects the call when an earlier write failure poisoned the store.
    fn check_poisoned(&self) -> Result<(), StorageError> {
        match &self.poisoned {
            Some(detail) => Err(StorageError::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Latches a write failure: the active tail may now hold torn/duplicate frame
    /// bytes, so every further write is rejected until the store is reopened (recovery
    /// truncates the tail back to its last intact frame).
    fn poison(&mut self, what: &str, err: &StorageError) {
        if self.poisoned.is_none() {
            self.poisoned = Some(format!("{what}: {err}"));
        }
    }

    /// Whether a write failure has poisoned the store (see [`StorageError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Appends one update batch to the log, fsyncing per policy. Returns the batch
    /// sequence the frame logs. On error the batch must be treated as *not* acknowledged
    /// (it may or may not survive a concurrent crash), and the store is *poisoned*:
    /// the file tail may hold the torn frame, so all further appends fail with
    /// [`StorageError::Poisoned`] until the store is reopened — otherwise a later
    /// acknowledged batch would land after the garbage and be dropped at recovery.
    pub fn append(&mut self, updates: &[GraphUpdate]) -> Result<u64, StorageError> {
        let seq = self.append_unsynced(updates)?;
        let sync_now = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Appends one update batch to the log *without* consulting the fsync policy: the
    /// frame reaches the file, not stable storage. The caller owns making it durable
    /// via [`UpdateStore::sync`] before acknowledging the batch — the group-commit path
    /// of the service layer uses this to share one fsync across co-arriving batches.
    /// Poisoning on failure works exactly like [`UpdateStore::append`].
    pub fn append_unsynced(&mut self, updates: &[GraphUpdate]) -> Result<u64, StorageError> {
        self.check_poisoned()?;
        let seq = self.next_batch_seq;
        let frame = encode_frame(seq, updates);
        if let Err(e) = self.active.write_all(&frame) {
            let e = StorageError::from(e);
            self.poison("append write failed", &e);
            return Err(e);
        }
        self.next_batch_seq += 1;
        self.tail_bytes += frame.len() as u64;
        self.appends_since_sync += 1;
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage, regardless of policy.
    /// A failed fsync also poisons the store: the kernel may have dropped dirty pages,
    /// so nothing written since the last successful sync can be trusted.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.check_poisoned()?;
        if let Err(e) = self.active.sync() {
            let e = StorageError::from(e);
            self.poison("wal fsync failed", &e);
            return Err(e);
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Bytes of framed batches in the current chain (what a checkpoint would absorb).
    pub fn tail_bytes(&self) -> u64 {
        self.tail_bytes
    }

    /// The sequence the next appended batch will log; equivalently, the number of
    /// batches ever appended.
    pub fn next_batch_seq(&self) -> u64 {
        self.next_batch_seq
    }

    /// Batches appended since the live snapshot was taken.
    pub fn batches_since_checkpoint(&self) -> u64 {
        self.next_batch_seq - self.manifest.snapshot_batches
    }

    /// The VFS this store writes to (for writing snapshot files outside the store lock).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Checkpoint step 1 — *rotate*: durably finish the active WAL file and start
    /// `wal-<seq+1>`. After this returns, the state "after [`CheckpointTicket::batches`]
    /// batches" is frozen as the snapshot target while appends continue into the new
    /// file. Returns `None` when there is nothing to checkpoint (no batches since the
    /// live snapshot).
    pub fn begin_checkpoint(&mut self) -> Result<Option<CheckpointTicket>, StorageError> {
        self.check_poisoned()?;
        if self.batches_since_checkpoint() == 0 {
            return Ok(None);
        }
        self.sync()?;
        let seq = self.active_seq + 1;
        self.active = create_wal(self.vfs.as_ref(), seq, self.next_batch_seq)?;
        self.active_seq = seq;
        self.tail_bytes = 0;
        Ok(Some(CheckpointTicket {
            seq,
            batches: self.next_batch_seq,
        }))
    }

    /// Checkpoint step 3 — *commit*: install the manifest naming
    /// `snapshot-<ticket.seq>` (which the caller has already written via
    /// [`write_snapshot`]) and the rotated chain, then garbage-collect the superseded
    /// files. GC failures are ignored: the next open deletes orphans anyway.
    pub fn commit_checkpoint(&mut self, ticket: CheckpointTicket) -> Result<(), StorageError> {
        self.check_poisoned()?;
        let new = Manifest {
            snapshot: Some(ticket.seq),
            wal_start: ticket.seq,
            snapshot_batches: ticket.batches,
        };
        // Install on disk first: if the commit fails, the in-memory manifest must keep
        // describing what is actually live (the old snapshot + longer chain).
        new.commit(self.vfs.as_ref())?;
        let old = std::mem::replace(&mut self.manifest, new);
        if let Some(seq) = old.snapshot {
            if old.snapshot != self.manifest.snapshot {
                let _ = self.vfs.remove(&snapshot_name(seq));
            }
        }
        for seq in old.wal_start..ticket.seq {
            let _ = self.vfs.remove(&wal_name(seq));
        }
        Ok(())
    }

    /// The whole checkpoint protocol inline, for callers that already hold the current
    /// graph state and do not need the snapshot write to happen outside a lock. `graph`
    /// must be the state after exactly [`UpdateStore::next_batch_seq`] batches.
    pub fn checkpoint(&mut self, graph: &DiGraph) -> Result<bool, StorageError> {
        match self.begin_checkpoint()? {
            None => Ok(false),
            Some(ticket) => {
                write_snapshot(self.vfs.as_ref(), ticket.seq, graph)?;
                self.commit_checkpoint(ticket)?;
                Ok(true)
            }
        }
    }

    /// The live manifest (for tests and introspection).
    pub fn manifest(&self) -> Manifest {
        self.manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{CrashModel, FailpointFs, KillPoint};

    fn base_graph() -> DiGraph {
        DiGraph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    fn opts(fsync: FsyncPolicy) -> StoreOptions {
        StoreOptions { fsync }
    }

    #[test]
    fn create_append_recover_round_trip() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        assert_eq!(store.append(&[GraphUpdate::insert(3u32, 0u32)]).unwrap(), 0);
        assert_eq!(
            store
                .append(&[
                    GraphUpdate::delete(0u32, 1u32),
                    GraphUpdate::insert(0u32, 2u32)
                ])
                .unwrap(),
            1
        );
        drop(store);

        let rec = UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 2);
        assert_eq!(rec.report.replayed_updates, 3);
        assert_eq!(rec.report.snapshot_batches, 0);
        assert!(rec.report.torn_tail.is_none());
        assert_eq!(rec.base, base_graph());
        let folded = rec.fold();
        assert_eq!(folded.num_edges(), 4);
        assert_eq!(rec.store.next_batch_seq(), 2);
    }

    #[test]
    fn open_without_manifest_is_missing() {
        let fs = FailpointFs::new();
        assert!(matches!(
            UpdateStore::open(fs.as_vfs(), StoreOptions::default()),
            Err(StorageError::Missing { .. })
        ));
    }

    #[test]
    fn double_create_is_rejected() {
        let fs = FailpointFs::new();
        let _ = UpdateStore::create(fs.as_vfs(), StoreOptions::default(), &base_graph()).unwrap();
        assert!(matches!(
            UpdateStore::create(fs.as_vfs(), StoreOptions::default(), &base_graph()),
            Err(StorageError::AlreadyExists)
        ));
    }

    #[test]
    fn checkpoint_rotates_compacts_and_gcs() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        let mut state = DeltaGraph::new(base_graph());
        for i in 0..5u32 {
            let update = GraphUpdate::insert(i % 4, (i + 2) % 4);
            state.apply(&update);
            store.append(&[update]).unwrap();
        }
        assert!(store.tail_bytes() > 0);
        let compacted = state.compact();
        assert!(store.checkpoint(&compacted).unwrap());
        assert_eq!(store.tail_bytes(), 0);
        assert_eq!(store.batches_since_checkpoint(), 0);
        assert_eq!(
            store.manifest(),
            Manifest {
                snapshot: Some(1),
                wal_start: 1,
                snapshot_batches: 5
            }
        );
        // Old snapshot and WAL are gone; the new pair plus manifest remain.
        assert_eq!(
            fs.file_names(),
            vec![
                "MANIFEST".to_string(),
                "snapshot-1.graph".into(),
                "wal-1.log".into()
            ]
        );
        // A checkpoint with nothing new is a no-op.
        assert!(!store.checkpoint(&compacted).unwrap());

        // Appends continue into the rotated file and recovery folds to the same state.
        store.append(&[GraphUpdate::delete(0u32, 1u32)]).unwrap();
        drop(store);
        let rec = UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.snapshot_seq, 1);
        assert_eq!(rec.report.snapshot_batches, 5);
        assert_eq!(rec.report.replayed_batches, 1);
        assert_eq!(rec.base, compacted);
        assert_eq!(rec.store.next_batch_seq(), 6);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        let intact = fs.bytes_written();
        // Kill 5 bytes into the second append's frame.
        fs.set_kill(KillPoint::WriteByte(intact + 5));
        assert!(store.append(&[GraphUpdate::insert(1u32, 3u32)]).is_err());
        drop(store);

        let image = fs.crash(CrashModel::KeepAll);
        let rec = UpdateStore::open(image.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 1);
        assert!(rec.report.torn_tail.is_some());
        assert_eq!(rec.report.dropped_bytes, 5);
        // The torn bytes are gone from the file; a fresh append lands cleanly.
        let mut store = rec.store;
        assert_eq!(store.append(&[GraphUpdate::insert(1u32, 3u32)]).unwrap(), 1);
        drop(store);
        let rec = UpdateStore::open(image.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 2);
        assert!(rec.report.torn_tail.is_none());
    }

    #[test]
    fn a_failed_append_poisons_the_store_until_reopen() {
        // Regression (review): a transient short write leaves torn frame bytes in the
        // active WAL while the process lives on. Without the poison latch the next
        // append would land *after* the garbage, be acknowledged and fsynced, and then
        // be silently dropped at recovery as part of the torn tail.
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        fs.set_kill(KillPoint::TransientWriteByte(fs.bytes_written() + 5));
        assert!(matches!(
            store.append(&[GraphUpdate::insert(1u32, 3u32)]),
            Err(StorageError::Io(_))
        ));
        assert!(!fs.is_dead(), "the filesystem survived the short write");
        assert!(store.is_poisoned());

        // Every write path is latched shut — nothing may land after the torn bytes.
        for result in [
            store.append(&[GraphUpdate::insert(2u32, 3u32)]).map(|_| ()),
            store.sync(),
            store.begin_checkpoint().map(|_| ()),
            store.checkpoint(&base_graph()).map(|_| ()),
        ] {
            assert!(matches!(result, Err(StorageError::Poisoned { .. })));
        }
        drop(store);

        // Reopen truncates the torn tail; the acked batch survives and appending works.
        let rec = UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 1);
        assert!(rec.report.torn_tail.is_some());
        let mut store = rec.store;
        assert!(!store.is_poisoned());
        assert_eq!(store.append(&[GraphUpdate::insert(1u32, 3u32)]).unwrap(), 1);
        drop(store);
        let rec = UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 2);
        assert!(rec.report.torn_tail.is_none());
    }

    #[test]
    fn a_failed_fsync_poisons_the_store() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        // The frame write (ops + 1) lands; the fsync (ops + 2) dies.
        fs.set_kill(KillPoint::Op(fs.ops() + 2));
        assert!(matches!(
            store.append(&[GraphUpdate::insert(1u32, 3u32)]),
            Err(StorageError::Io(_))
        ));
        assert!(store.is_poisoned());
        assert!(matches!(
            store.append(&[GraphUpdate::insert(2u32, 3u32)]),
            Err(StorageError::Poisoned { .. })
        ));
    }

    #[test]
    fn an_externally_corrupted_middle_wal_file_is_corruption_not_a_torn_tail() {
        // Regression (review): a torn *middle* chain file whose successor was durably
        // rotated holds acknowledged batches — recovery must refuse to open rather
        // than silently truncate it and delete the intact successors.
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        // Rotate without committing: the chain is wal-0 (sealed), wal-1 (active).
        let _ticket = store.begin_checkpoint().unwrap().unwrap();
        store.append(&[GraphUpdate::insert(1u32, 3u32)]).unwrap();
        drop(store);

        // Bit-rot the sealed middle file's frame payload.
        let vfs = fs.as_vfs();
        let mut bytes = vfs.read("wal-0.log").unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut f = vfs.create("wal-0.log").unwrap();
        f.write_all(&bytes).unwrap();
        drop(f);

        let err = match UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)) {
            Err(err) => err,
            Ok(_) => panic!("recovery must refuse a corrupted middle file"),
        };
        match err {
            StorageError::Corrupt { file, detail } => {
                assert_eq!(file, "wal-0.log");
                assert!(detail.contains("wal-1.log"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Nothing was destroyed: both chain files are still there for forensics.
        assert!(fs.as_vfs().exists("wal-0.log"));
        assert!(fs.as_vfs().exists("wal-1.log"));
    }

    #[test]
    fn crash_between_rotation_and_manifest_keeps_the_old_chain_live() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        // Rotate but never snapshot/commit: wal-1 exists, manifest still names wal-0.
        let ticket = store.begin_checkpoint().unwrap().unwrap();
        assert_eq!(ticket.seq, 1);
        store.append(&[GraphUpdate::insert(1u32, 3u32)]).unwrap();
        drop(store);

        let image = fs.crash(CrashModel::KeepAll);
        let rec = UpdateStore::open(image.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        // Both batches replay: one from wal-0, one from the dangling wal-1.
        assert_eq!(rec.report.replayed_batches, 2);
        assert_eq!(rec.report.wal_files, 2);
        assert_eq!(rec.store.next_batch_seq(), 2);
    }

    #[test]
    fn a_rotated_wal_that_lost_its_header_is_a_torn_tail_not_corruption() {
        // Found by the crash matrix: a kill between `create(wal-1)` and the write (or
        // sync) of its header leaves a durable zero-length chain file. That is a crash
        // artefact of an uncommitted checkpoint — recovery must drop it and keep the
        // acked prefix, not refuse to open.
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        // Die on the header write of the rotated file: ops+1 = sync(active),
        // ops+2 = create(wal-1), ops+3 = the header write.
        fs.set_kill(KillPoint::Op(fs.ops() + 3));
        assert!(store.begin_checkpoint().is_err());
        drop(store);

        for model in [CrashModel::DropUnsynced, CrashModel::KeepAll] {
            let image = fs.crash(model);
            let rec = UpdateStore::open(image.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
            assert_eq!(
                rec.report.replayed_batches, 1,
                "{model:?}: the acked batch survives"
            );
            assert!(
                rec.report
                    .torn_tail
                    .as_deref()
                    .unwrap_or("")
                    .contains("lost its header"),
                "{model:?}: {:?}",
                rec.report.torn_tail
            );
            assert!(
                !image.exists("wal-1.log"),
                "{model:?}: the headerless file is gone"
            );
            // The reopened store appends to wal-0 again.
            let mut store = rec.store;
            store.append(&[GraphUpdate::insert(1u32, 3u32)]).unwrap();
            let rec2 = UpdateStore::open(image.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
            assert_eq!(rec2.report.replayed_batches, 2);
        }
    }

    #[test]
    fn orphan_files_are_garbage_collected_on_open() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::Always), &base_graph()).unwrap();
        store.append(&[GraphUpdate::insert(0u32, 3u32)]).unwrap();
        drop(store);
        // Plant garbage a crashed checkpoint could leave behind.
        let vfs = fs.as_vfs();
        let mut f = vfs.create("snapshot-9.graph.tmp").unwrap();
        f.write_all(b"partial").unwrap();
        let mut f = vfs.create("snapshot-7.graph").unwrap();
        f.write_all(b"uncommitted").unwrap();
        drop(f);

        let rec = UpdateStore::open(fs.as_vfs(), opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(rec.report.replayed_batches, 1);
        assert!(rec.report.dropped_bytes >= b"partialuncommitted".len() as u64);
        assert_eq!(
            fs.file_names(),
            vec![
                "MANIFEST".to_string(),
                "snapshot-0.graph".into(),
                "wal-0.log".into()
            ]
        );
    }

    #[test]
    fn every_n_policy_syncs_on_the_nth_append() {
        let fs = FailpointFs::new();
        let mut store =
            UpdateStore::create(fs.as_vfs(), opts(FsyncPolicy::EveryN(3)), &base_graph()).unwrap();
        let update = [GraphUpdate::insert(0u32, 3u32)];
        store.append(&update).unwrap(); // unsynced
        store.append(&update).unwrap(); // unsynced
        let lossy = fs.crash(CrashModel::DropUnsynced);
        let rec = UpdateStore::open(lossy.as_vfs(), StoreOptions::default()).unwrap();
        assert_eq!(rec.report.replayed_batches, 0, "nothing synced yet");

        store.append(&update).unwrap(); // third append: policy syncs
        let lossy = fs.crash(CrashModel::DropUnsynced);
        let rec = UpdateStore::open(lossy.as_vfs(), StoreOptions::default()).unwrap();
        assert_eq!(
            rec.report.replayed_batches, 3,
            "the EveryN sync covers all three"
        );
    }
}
