//! The storage layer's filesystem seam.
//!
//! Every byte the store writes goes through a [`Vfs`] — a flat, directory-rooted file
//! namespace with the few primitives a log-structured store needs: truncating create,
//! append, whole-file read, atomic rename, truncate, remove, list, and explicit
//! durability points (`sync` on files, [`Vfs::sync_dir`] for the namespace itself).
//!
//! Two implementations exist: [`StdFs`] maps the namespace onto a real directory, and
//! [`FailpointFs`](crate::FailpointFs) is a deterministic in-memory filesystem that can
//! kill writes at byte granularity and simulate the page cache losing un-fsynced data —
//! the substrate of the crash-matrix recovery tests. Everything above this trait
//! (framing, manifest protocol, recovery) is byte-identical on both.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A writable file handle obtained from a [`Vfs`].
pub trait VfsFile: Send {
    /// Appends `data` at the end of the file. Either the whole slice is reported
    /// written, or an error is returned (a failpoint may still have persisted a prefix —
    /// exactly like a real torn write).
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;

    /// Forces everything written so far to durable storage (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// A flat file namespace rooted at one directory.
///
/// Implementations must make [`Vfs::rename`] atomic with respect to crashes: a reader
/// after a crash sees either the old or the new name, never a half-renamed file.
pub trait Vfs: Send + Sync {
    /// Creates (or truncates) `name` and returns an append handle.
    fn create(&self, name: &str) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing `name` for appending at its current end.
    fn open_append(&self, name: &str) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the whole contents of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Removes `name`.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Truncates `name` to `len` bytes (used to drop a torn WAL tail).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Forces the directory itself (its name → file mapping) to durable storage.
    fn sync_dir(&self) -> io::Result<()>;

    /// Lists the names in the namespace, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// The real-filesystem [`Vfs`]: a directory on disk.
#[derive(Debug)]
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Opens (creating if needed) the directory at `root`.
    pub fn new(root: impl AsRef<Path>) -> io::Result<StdFs> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(StdFs { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct StdFile {
    file: fs::File,
}

impl VfsFile for StdFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl Vfs for StdFs {
    fn create(&self, name: &str) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile {
            file: fs::File::create(self.path(name))?,
        }))
    }

    fn open_append(&self, name: &str) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile {
            file: fs::OpenOptions::new().append(true).open(self.path(name))?,
        }))
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from), self.path(to))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(self.path(name))?;
        file.set_len(len)?;
        // Make the truncation itself durable: recovery relies on it to drop a torn
        // tail, and a crash before the next fsync must not resurrect the bytes.
        file.sync_all()
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync is what makes creates/renames durable on POSIX systems.
        // Some platforms refuse to *open* directories; degrade gracefully on that —
        // but a failed fsync of an opened directory is a real I/O error and must
        // propagate (it can mean a manifest commit never reached stable storage).
        match fs::File::open(&self.root) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hcsp_storage_vfs_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn std_fs_round_trips_files() {
        let root = temp_root("roundtrip");
        let vfs = StdFs::new(&root).unwrap();
        {
            let mut f = vfs.create("a.bin").unwrap();
            f.write_all(b"hello").unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = vfs.open_append("a.bin").unwrap();
            f.write_all(b" world").unwrap();
        }
        assert_eq!(vfs.read("a.bin").unwrap(), b"hello world");
        assert!(vfs.exists("a.bin"));

        vfs.truncate("a.bin", 5).unwrap();
        assert_eq!(vfs.read("a.bin").unwrap(), b"hello");

        vfs.rename("a.bin", "b.bin").unwrap();
        assert!(!vfs.exists("a.bin"));
        assert_eq!(vfs.read("b.bin").unwrap(), b"hello");
        assert_eq!(vfs.list().unwrap(), vec!["b.bin".to_string()]);
        vfs.sync_dir().unwrap();

        vfs.remove("b.bin").unwrap();
        assert!(vfs.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
