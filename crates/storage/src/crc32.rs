//! CRC32 (IEEE 802.3 polynomial), table-driven.
//!
//! The WAL frames and the manifest carry a CRC32 of their payload so that torn writes and
//! bit rot are *detected* rather than misparsed. The implementation is the standard
//! reflected-table algorithm (polynomial `0xEDB88320`), identical to zlib's `crc32` — a
//! frame written by this crate can be checked with any stock CRC32 tool.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `data` (IEEE, reflected, init/final XOR `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hello durable world".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
