//! The append-only update log: length-prefixed, CRC32-framed `GraphUpdate` batches.
//!
//! A WAL file is a 16-byte header followed by frames:
//!
//! ```text
//! header:  "HCSPWAL" magic (7) | version u8 | first batch seq u64 LE
//! frame:   payload len u32 LE | crc32(payload) u32 LE | payload
//! payload: batch seq u64 LE | update count u32 LE | updates (tag u8, u u32 LE, v u32 LE)*
//! ```
//!
//! Each frame carries the *global batch sequence number* it logs, so a scan can verify
//! it is reading consecutive batches — a stale or misassembled file can never replay out
//! of order. Decoding is strict: any prefix truncation, length corruption, CRC mismatch,
//! unknown tag, count mismatch or sequence break classifies the rest of the file as a
//! torn tail, which recovery *drops* — a frame is either replayed exactly as written or
//! not at all, never misparsed.

use crate::crc32::crc32;
use bytes::{Buf, BufMut};
use hcsp_graph::{GraphUpdate, VertexId};

/// WAL file magic (7 bytes, followed by a 1-byte format version).
pub const WAL_MAGIC: &[u8; 7] = b"HCSPWAL";

/// Current WAL format version.
pub const WAL_VERSION: u8 = 1;

/// Size of the WAL file header in bytes.
pub const WAL_HEADER_LEN: usize = WAL_MAGIC.len() + 1 + 8;

/// Size of a frame's length + CRC prefix in bytes.
pub const FRAME_PREFIX_LEN: usize = 8;

const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// Frames larger than this are rejected as corrupt rather than allocated: no legitimate
/// batch comes close, and a bit flip in a length prefix must not OOM the scanner.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Encodes the WAL file header for a file whose first frame logs batch `first_seq`.
pub fn encode_wal_header(first_seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN);
    buf.put_slice(WAL_MAGIC);
    buf.put_u8(WAL_VERSION);
    buf.put_u64_le(first_seq);
    buf
}

/// Parses a WAL file header, returning the first batch sequence it declares.
pub fn decode_wal_header(bytes: &[u8]) -> Result<u64, String> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(format!("header truncated at {} bytes", bytes.len()));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err("bad magic".to_string());
    }
    let version = bytes[WAL_MAGIC.len()];
    if version != WAL_VERSION {
        return Err(format!(
            "unsupported wal version {version} (supported: {WAL_VERSION})"
        ));
    }
    let mut seq_bytes = &bytes[WAL_MAGIC.len() + 1..WAL_HEADER_LEN];
    Ok(seq_bytes.get_u64_le())
}

/// Encodes one update batch as a complete frame (prefix + payload) logging batch `seq`.
pub fn encode_frame(seq: u64, updates: &[GraphUpdate]) -> Vec<u8> {
    let payload_len = 12 + updates.len() * 9;
    let mut payload = Vec::with_capacity(payload_len);
    payload.put_u64_le(seq);
    payload.put_u32_le(updates.len() as u32);
    for update in updates {
        let (u, v) = update.edge();
        payload.put_u8(if update.is_insert() {
            TAG_INSERT
        } else {
            TAG_DELETE
        });
        payload.put_u32_le(u.raw());
        payload.put_u32_le(v.raw());
    }
    debug_assert_eq!(payload.len(), payload_len);
    let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes a CRC-verified frame payload into its batch sequence and updates.
fn decode_payload(mut payload: &[u8]) -> Result<(u64, Vec<GraphUpdate>), String> {
    if payload.len() < 12 {
        return Err(format!(
            "payload of {} bytes is below the fixed header",
            payload.len()
        ));
    }
    let seq = payload.get_u64_le();
    let count = payload.get_u32_le() as usize;
    if payload.remaining() != count * 9 {
        return Err(format!(
            "count {count} disagrees with {} remaining payload bytes",
            payload.remaining()
        ));
    }
    let mut updates = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = payload.get_u8();
        let u = VertexId(payload.get_u32_le());
        let v = VertexId(payload.get_u32_le());
        updates.push(match tag {
            TAG_INSERT => GraphUpdate::Insert(u, v),
            TAG_DELETE => GraphUpdate::Delete(u, v),
            other => return Err(format!("unknown update tag {other}")),
        });
    }
    Ok((seq, updates))
}

/// The result of scanning one WAL file image.
#[derive(Debug)]
pub struct WalScan {
    /// The batch sequence the file header declares for its first frame.
    pub first_seq: u64,
    /// The decoded batches, in order, starting at `first_seq`.
    pub batches: Vec<Vec<GraphUpdate>>,
    /// Length of the valid prefix of the file (header + intact frames): appending may
    /// resume here after truncating the rest.
    pub valid_len: u64,
    /// Why the scan stopped before the end of the file, if it did.
    pub torn: Option<String>,
}

impl WalScan {
    /// The batch sequence the next appended frame should log.
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.batches.len() as u64
    }
}

/// Scans a whole WAL file image, returning every intact frame and classifying the rest
/// as a torn tail. `expect_first_seq` (when known from the manifest or the preceding
/// file of a chain) guards against replaying a stale file.
pub fn scan_wal(bytes: &[u8], expect_first_seq: Option<u64>) -> Result<WalScan, String> {
    let first_seq = decode_wal_header(bytes)?;
    if let Some(expected) = expect_first_seq {
        if first_seq != expected {
            return Err(format!(
                "header declares first batch {first_seq}, chain expects {expected}"
            ));
        }
    }
    let mut scan = WalScan {
        first_seq,
        batches: Vec::new(),
        valid_len: WAL_HEADER_LEN as u64,
        torn: None,
    };
    let mut offset = WAL_HEADER_LEN;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Ok(scan);
        }
        let torn = |detail: String| WalScan {
            torn: Some(detail),
            ..scan_move_helper(&scan)
        };
        if rest.len() < FRAME_PREFIX_LEN {
            return Ok(torn(format!(
                "{} trailing bytes below a frame prefix",
                rest.len()
            )));
        }
        let mut prefix = &rest[..FRAME_PREFIX_LEN];
        let len = prefix.get_u32_le() as usize;
        let crc = prefix.get_u32_le();
        if len > MAX_FRAME_PAYLOAD {
            return Ok(torn(format!(
                "frame length {len} exceeds the {MAX_FRAME_PAYLOAD} cap"
            )));
        }
        if rest.len() < FRAME_PREFIX_LEN + len {
            return Ok(torn(format!(
                "frame of {len} payload bytes truncated at {} available",
                rest.len() - FRAME_PREFIX_LEN
            )));
        }
        let payload = &rest[FRAME_PREFIX_LEN..FRAME_PREFIX_LEN + len];
        if crc32(payload) != crc {
            return Ok(torn("frame crc mismatch".to_string()));
        }
        match decode_payload(payload) {
            Ok((seq, updates)) => {
                if seq != scan.next_seq() {
                    return Ok(torn(format!(
                        "frame logs batch {seq}, expected {}",
                        scan.next_seq()
                    )));
                }
                scan.batches.push(updates);
                offset += FRAME_PREFIX_LEN + len;
                scan.valid_len = offset as u64;
            }
            Err(detail) => return Ok(torn(detail)),
        }
    }
}

/// Clones the accumulated scan state for a torn-tail result (manual, because `WalScan`
/// deliberately does not implement `Clone` in its public surface).
fn scan_move_helper(scan: &WalScan) -> WalScan {
    WalScan {
        first_seq: scan.first_seq,
        batches: scan.batches.clone(),
        valid_len: scan.valid_len,
        torn: None,
    }
}

/// When the log is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every appended batch is fsynced before the append returns (full durability:
    /// an acknowledged update survives any crash).
    Always,
    /// Fsync once every `n` appends (bounded loss: at most `n - 1` acknowledged batches
    /// can roll back on a crash). `EveryN(0)` behaves like `EveryN(1)`.
    EveryN(u32),
    /// Never fsync on append (the OS flushes eventually; a crash may roll back any
    /// acknowledged batch since the last checkpoint or explicit sync).
    Never,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(edges: &[(u32, u32, bool)]) -> Vec<GraphUpdate> {
        edges
            .iter()
            .map(|&(u, v, ins)| {
                if ins {
                    GraphUpdate::insert(u, v)
                } else {
                    GraphUpdate::delete(u, v)
                }
            })
            .collect()
    }

    fn wal_image(first_seq: u64, batches: &[Vec<GraphUpdate>]) -> Vec<u8> {
        let mut bytes = encode_wal_header(first_seq);
        for (i, b) in batches.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(first_seq + i as u64, b));
        }
        bytes
    }

    #[test]
    fn frames_round_trip() {
        let batches = vec![
            batch(&[(0, 1, true), (1, 2, false)]),
            batch(&[]),
            batch(&[(7, 7, true)]),
        ];
        let bytes = wal_image(5, &batches);
        let scan = scan_wal(&bytes, Some(5)).unwrap();
        assert_eq!(scan.first_seq, 5);
        assert_eq!(scan.batches, batches);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.next_seq(), 8);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn truncation_drops_the_tail_only() {
        let batches = vec![batch(&[(0, 1, true)]), batch(&[(2, 3, false)])];
        let bytes = wal_image(0, &batches);
        let first_frame_end = WAL_HEADER_LEN + FRAME_PREFIX_LEN + 12 + 9;
        // Cutting exactly at the frame boundary is a clean file; every cut strictly
        // inside the second frame is a torn tail that preserves the first frame.
        let scan = scan_wal(&bytes[..first_frame_end], Some(0)).unwrap();
        assert_eq!(scan.batches, batches[..1]);
        assert!(scan.torn.is_none());
        for cut in first_frame_end + 1..bytes.len() {
            let scan = scan_wal(&bytes[..cut], Some(0)).unwrap();
            assert_eq!(scan.batches, batches[..1], "cut at {cut}");
            assert_eq!(scan.valid_len, first_frame_end as u64);
            assert!(scan.torn.is_some());
        }
    }

    #[test]
    fn header_and_seq_guards_hold() {
        let bytes = wal_image(3, &[batch(&[(1, 2, true)])]);
        assert!(scan_wal(&bytes, Some(4)).is_err(), "stale file rejected");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(scan_wal(&bad, None).is_err(), "bad magic rejected");
        let mut versioned = bytes.clone();
        versioned[WAL_MAGIC.len()] = 9;
        let err = scan_wal(&versioned, None).unwrap_err();
        assert!(err.contains("version 9"), "{err}");
        assert!(scan_wal(&bytes[..10], None).is_err(), "truncated header");
    }

    #[test]
    fn oversized_length_prefix_is_a_torn_tail_not_an_allocation() {
        let mut bytes = encode_wal_header(0);
        bytes.put_u32_le(u32::MAX);
        bytes.put_u32_le(0);
        bytes.extend_from_slice(&[0u8; 32]);
        let scan = scan_wal(&bytes, Some(0)).unwrap();
        assert!(scan.batches.is_empty());
        assert!(scan.torn.unwrap().contains("cap"));
    }

    #[test]
    fn corrupt_count_and_tag_are_detected() {
        // A payload whose count disagrees with its length (crc recomputed to match, so
        // only the structural check can catch it).
        let mut payload = Vec::new();
        payload.put_u64_le(0);
        payload.put_u32_le(3); // claims 3 updates, carries 1
        payload.put_u8(TAG_INSERT);
        payload.put_u32_le(1);
        payload.put_u32_le(2);
        let mut bytes = encode_wal_header(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(crc32(&payload));
        bytes.extend_from_slice(&payload);
        let scan = scan_wal(&bytes, Some(0)).unwrap();
        assert!(scan.batches.is_empty());
        assert!(scan.torn.unwrap().contains("disagrees"));

        let mut payload = Vec::new();
        payload.put_u64_le(0);
        payload.put_u32_le(1);
        payload.put_u8(9); // unknown tag
        payload.put_u32_le(1);
        payload.put_u32_le(2);
        let mut bytes = encode_wal_header(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(crc32(&payload));
        bytes.extend_from_slice(&payload);
        let scan = scan_wal(&bytes, Some(0)).unwrap();
        assert!(scan.batches.is_empty());
        assert!(scan.torn.unwrap().contains("tag"));
    }
}
