//! Durable update log + snapshot store for the HC-s-t-path serving stack.
//!
//! The serving layer (`hcsp-service`) keeps its graph state in memory as epoch-pinned
//! immutable snapshots; this crate makes that state survive a process death. The design
//! is a classic log-structured pair:
//!
//! - **WAL** ([`wal`]): every acknowledged update batch is appended to a CRC-framed,
//!   length-prefixed log *before* it is published to queries. Fsync cadence is a policy
//!   choice ([`FsyncPolicy`]): `Always` for zero-loss, `EveryN`/`Never` for throughput
//!   with bounded loss.
//! - **Snapshots** ([`snapshot`]): periodically the current graph is written as one
//!   binary snapshot file (the same versioned format as `hcsp_graph::io`), absorbing a
//!   prefix of the log so recovery cost stays proportional to the *tail*, not history.
//! - **Manifest** ([`manifest`]): a tiny, atomically-replaced file naming the live
//!   snapshot + WAL chain. Its rename is the commit point of every checkpoint.
//! - **Store** ([`store`]): ties the three together — [`UpdateStore::create`],
//!   [`UpdateStore::open`] (recovery), [`UpdateStore::append`], and the three-step
//!   rotate → snapshot → commit checkpoint protocol.
//!
//! Everything talks to disk through the [`Vfs`] trait. [`StdFs`] is the real
//! filesystem; [`FailpointFs`] is a deterministic in-memory filesystem that can be
//! killed at an exact byte or operation — the engine of the crash-matrix recovery tests
//! that sweep every kill point and assert recovered state is byte-identical to a
//! never-crashed twin.

#![warn(missing_docs)]

pub mod crc32;
pub mod error;
pub mod failpoint;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use error::StorageError;
pub use failpoint::{CrashModel, FailpointFs, KillPoint};
pub use manifest::Manifest;
pub use store::{
    fold_batches, CheckpointTicket, Recovered, RecoveryReport, StoreOptions, UpdateStore,
};
pub use vfs::{StdFs, Vfs, VfsFile};
pub use wal::FsyncPolicy;
