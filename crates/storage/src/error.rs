//! Error type for the storage layer.

use hcsp_graph::GraphError;
use std::fmt;
use std::io;

/// Errors produced while creating, recovering, or writing an update store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying VFS failure (includes injected failpoint kills).
    Io(io::Error),
    /// A required file is absent (e.g. opening a directory with no manifest).
    Missing {
        /// The file that was expected.
        file: String,
    },
    /// A store directory already holds a manifest, so it cannot be re-created.
    AlreadyExists,
    /// A file exists but its contents are not a valid instance of its format.
    ///
    /// Recovery never reports this for damage a crash can cause (torn WAL tails are
    /// dropped, orphan files are ignored); it means external corruption of a file the
    /// write protocol had committed, e.g. a bit-rotted manifest or snapshot.
    Corrupt {
        /// The offending file.
        file: String,
        /// What failed to parse or verify.
        detail: String,
    },
    /// The snapshot payload failed graph deserialisation.
    Graph(GraphError),
    /// A previous append or fsync failed, so the active WAL tail may hold torn or
    /// duplicate frame bytes; the store refuses every further write until it is
    /// reopened (recovery truncates the tail back to the last intact frame).
    Poisoned {
        /// The failure that poisoned the store.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::Missing { file } => write!(f, "missing storage file: {file}"),
            StorageError::AlreadyExists => {
                write!(f, "store directory already contains a manifest")
            }
            StorageError::Corrupt { file, detail } => {
                write!(f, "corrupt storage file {file}: {detail}")
            }
            StorageError::Graph(e) => write!(f, "snapshot graph error: {e}"),
            StorageError::Poisoned { detail } => {
                write!(f, "store poisoned by an earlier write failure: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<GraphError> for StorageError {
    fn from(e: GraphError) -> Self {
        StorageError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = StorageError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let e = StorageError::Missing {
            file: "MANIFEST".into(),
        };
        assert!(e.to_string().contains("MANIFEST"));
        let e = StorageError::Corrupt {
            file: "wal-0.log".into(),
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
        assert!(StorageError::AlreadyExists.to_string().contains("manifest"));
        let e = StorageError::Poisoned {
            detail: "fsync failed".into(),
        };
        assert!(e.to_string().contains("poisoned"));
        assert!(e.to_string().contains("fsync failed"));
    }
}
