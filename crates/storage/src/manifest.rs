//! The manifest: the single source of truth for what is live in a store directory.
//!
//! A store directory can accumulate snapshot files, WAL files, and temporaries in any
//! crash-interrupted combination. The manifest names the one snapshot and the WAL chain
//! start that together define the current state; everything else is garbage. It is
//! replaced atomically — written to a temporary name, fsynced, renamed over `MANIFEST`,
//! directory-fsynced — so the rename is the commit point of every checkpoint: a crash on
//! either side of it leaves a fully consistent store.
//!
//! The format is a small line-oriented text file (easy to inspect in a shell) whose last
//! line carries a CRC32 of everything above it:
//!
//! ```text
//! hcsp-manifest 1
//! snapshot 3
//! wal-start 3
//! snapshot-batches 57
//! crc 0x1A2B3C4D
//! ```

use crate::crc32::crc32;
use crate::error::StorageError;
use crate::vfs::Vfs;

/// Name of the live manifest file inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Temporary name a new manifest is staged under before the commit rename.
pub const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The decoded contents of a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Sequence number of the live snapshot file (`snapshot-<seq>.graph`), or `None`
    /// when the store has never checkpointed and state is `base + whole WAL chain`.
    pub snapshot: Option<u64>,
    /// Sequence number of the first WAL file of the live chain (`wal-<seq>.log`).
    pub wal_start: u64,
    /// Number of update batches already folded into the snapshot: the first frame of
    /// `wal-<wal_start>.log` logs exactly batch `snapshot_batches`.
    pub snapshot_batches: u64,
}

impl Manifest {
    /// The manifest of a freshly created, never-checkpointed store.
    pub fn initial() -> Manifest {
        Manifest {
            snapshot: None,
            wal_start: 0,
            snapshot_batches: 0,
        }
    }

    /// Serialises to the on-disk text format, CRC line included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = format!("hcsp-manifest {MANIFEST_VERSION}\n");
        if let Some(seq) = self.snapshot {
            body.push_str(&format!("snapshot {seq}\n"));
        }
        body.push_str(&format!("wal-start {}\n", self.wal_start));
        body.push_str(&format!("snapshot-batches {}\n", self.snapshot_batches));
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc {crc:#010X}\n"));
        body.into_bytes()
    }

    /// Parses the on-disk text format. Any deviation — bad CRC, missing field, unknown
    /// version — is `Corrupt`: a manifest is only ever read after its commit rename, so
    /// damage here is external, never an expected crash artefact.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, StorageError> {
        let corrupt = |detail: String| StorageError::Corrupt {
            file: MANIFEST_NAME.to_string(),
            detail,
        };
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("not utf-8".into()))?;
        let body_end = text
            .rfind("crc ")
            .ok_or_else(|| corrupt("missing crc line".into()))?;
        let (body, crc_line) = text.split_at(body_end);
        let declared = crc_line
            .strip_prefix("crc 0x")
            .and_then(|rest| u32::from_str_radix(rest.trim_end_matches('\n'), 16).ok())
            .ok_or_else(|| corrupt("malformed crc line".into()))?;
        if crc32(body.as_bytes()) != declared {
            return Err(corrupt("crc mismatch".into()));
        }

        let mut lines = body.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty body".into()))?;
        match header.strip_prefix("hcsp-manifest ") {
            Some(v) if v == MANIFEST_VERSION.to_string() => {}
            Some(v) => return Err(corrupt(format!("unsupported manifest version {v}"))),
            None => return Err(corrupt("bad header line".into())),
        }

        let mut snapshot = None;
        let mut wal_start = None;
        let mut snapshot_batches = None;
        for line in lines {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(format!("malformed line {line:?}")))?;
            let parsed: u64 = value
                .parse()
                .map_err(|_| corrupt(format!("non-numeric value in line {line:?}")))?;
            match key {
                "snapshot" => snapshot = Some(parsed),
                "wal-start" => wal_start = Some(parsed),
                "snapshot-batches" => snapshot_batches = Some(parsed),
                other => return Err(corrupt(format!("unknown key {other:?}"))),
            }
        }
        Ok(Manifest {
            snapshot,
            wal_start: wal_start.ok_or_else(|| corrupt("missing wal-start".into()))?,
            snapshot_batches: snapshot_batches
                .ok_or_else(|| corrupt("missing snapshot-batches".into()))?,
        })
    }

    /// Atomically installs `self` as the live manifest: stage under a temporary name,
    /// fsync the bytes, rename over [`MANIFEST_NAME`], fsync the directory. The rename
    /// is the commit point.
    pub fn commit(&self, vfs: &dyn Vfs) -> Result<(), StorageError> {
        let mut tmp = vfs.create(MANIFEST_TMP_NAME)?;
        tmp.write_all(&self.encode())?;
        tmp.sync()?;
        drop(tmp);
        vfs.rename(MANIFEST_TMP_NAME, MANIFEST_NAME)?;
        vfs.sync_dir()?;
        Ok(())
    }

    /// Loads the live manifest, or `Missing` when the directory has none.
    pub fn load(vfs: &dyn Vfs) -> Result<Manifest, StorageError> {
        if !vfs.exists(MANIFEST_NAME) {
            return Err(StorageError::Missing {
                file: MANIFEST_NAME.to_string(),
            });
        }
        Manifest::decode(&vfs.read(MANIFEST_NAME)?)
    }
}

/// Name of the snapshot file with sequence `seq`.
pub fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq}.graph")
}

/// Name of the WAL file with sequence `seq`.
pub fn wal_name(seq: u64) -> String {
    format!("wal-{seq}.log")
}

/// Parses a file name back into `("snapshot" | "wal", seq)`, for garbage collection.
pub fn parse_file_name(name: &str) -> Option<(&'static str, u64)> {
    if let Some(seq) = name
        .strip_prefix("snapshot-")
        .and_then(|r| r.strip_suffix(".graph"))
    {
        return seq.parse().ok().map(|s| ("snapshot", s));
    }
    if let Some(seq) = name
        .strip_prefix("wal-")
        .and_then(|r| r.strip_suffix(".log"))
    {
        return seq.parse().ok().map(|s| ("wal", s));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointFs;

    #[test]
    fn encode_decode_round_trip() {
        for m in [
            Manifest::initial(),
            Manifest {
                snapshot: Some(4),
                wal_start: 4,
                snapshot_batches: 120,
            },
            Manifest {
                snapshot: Some(0),
                wal_start: 2,
                snapshot_batches: 1,
            },
        ] {
            assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = Manifest {
            snapshot: Some(4),
            wal_start: 4,
            snapshot_batches: 9,
        }
        .encode();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert!(
                Manifest::decode(&flipped).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        assert!(Manifest::decode(b"").is_err());
        assert!(Manifest::decode(b"hcsp-manifest 1\n").is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let mut body = String::from("hcsp-manifest 99\nwal-start 0\nsnapshot-batches 0\n");
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc {crc:#010X}\n"));
        let err = Manifest::decode(body.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn commit_and_load_round_trip() {
        let fs = FailpointFs::new();
        let vfs = fs.as_vfs();
        assert!(matches!(
            Manifest::load(vfs.as_ref()),
            Err(StorageError::Missing { .. })
        ));
        let m = Manifest {
            snapshot: Some(2),
            wal_start: 2,
            snapshot_batches: 40,
        };
        m.commit(vfs.as_ref()).unwrap();
        assert_eq!(Manifest::load(vfs.as_ref()).unwrap(), m);
        // The tmp name must not linger after a successful commit.
        assert!(!vfs.exists(MANIFEST_TMP_NAME));
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(parse_file_name(&snapshot_name(7)), Some(("snapshot", 7)));
        assert_eq!(parse_file_name(&wal_name(0)), Some(("wal", 0)));
        assert_eq!(parse_file_name("MANIFEST"), None);
        assert_eq!(parse_file_name("snapshot-x.graph"), None);
        assert_eq!(parse_file_name("wal-3.graph"), None);
    }
}
