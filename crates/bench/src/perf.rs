//! The throughput regression gate behind the CI `perf-smoke` job.
//!
//! The job runs [`crate::harness::parallel_scaling`] in quick mode, writes the result as
//! `BENCH_parallel_scaling.json`, and compares it against the committed
//! `bench/baseline.json` (same schema). A run *fails* the gate when
//!
//! * the **geometric mean** of the per-point throughput ratios (current / baseline) over
//!   all compared `dataset × batch × threads` points drops below `1 − tolerance`, or
//! * any **single point** drops below `1 − 2·tolerance` (a localized but severe
//!   regression that a healthy mean could otherwise mask).
//!
//! Individual points between the two floors are reported as warnings but do not fail the
//! gate on their own — single-point timing jitter on shared CI runners routinely exceeds
//! 20 % even at best-of-N, while the geometric mean is stable. Points missing from the
//! baseline are reported but never fail the gate (new datasets / thread counts must be
//! land-able), and faster points are fine by definition.
//!
//! Baselines are machine-dependent; regenerate with
//! `cargo run --release -p hcsp-bench --bin experiments -- perf-smoke --write-baseline`
//! when the reference hardware changes.

use crate::report::Json;

/// The outcome of comparing a fresh scaling run against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfComparison {
    /// Gate-failing findings: a regressed geometric mean and/or points below the severe
    /// (2×-tolerance) floor. Empty = gate passes.
    pub regressions: Vec<String>,
    /// Points below the soft (1×-tolerance) floor but above the severe floor:
    /// reported, not failing.
    pub warnings: Vec<String>,
    /// Geometric mean of current/baseline throughput over the compared points
    /// (1.0 = parity; meaningless when `compared == 0`).
    pub geomean_ratio: f64,
    /// Points compared against a baseline entry.
    pub compared: usize,
    /// Points with no baseline entry (informational).
    pub missing_in_baseline: usize,
}

impl PerfComparison {
    /// Whether the gate passes (no aggregate regression, no severe single point).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// The identity of one throughput point within a report: the dataset plus whichever of
/// the `batch`/`threads` dimensions the experiment has. The parallel-scaling report keys
/// on all three; the mixed read/write report has one row per dataset and keys on the
/// dataset alone — both gate through the same comparison.
fn point_key(row: &Json) -> Option<String> {
    let dataset = row.get("dataset")?.as_str()?;
    let mut key = dataset.to_string();
    if let Some(batch) = row.get("batch").and_then(Json::as_f64) {
        key.push_str(&format!("/batch={batch}"));
    }
    if let Some(threads) = row.get("threads").and_then(Json::as_f64) {
        key.push_str(&format!("/threads={threads}"));
    }
    Some(key)
}

/// Extracts `(key, qps)` pairs from a scaling report (`{"rows": [...]}`).
fn throughput_points(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let rows = report
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("report has no \"rows\" array")?;
    let mut points = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let key = point_key(row).ok_or(format!("row {i} lacks dataset/batch/threads"))?;
        let qps = row
            .get("qps")
            .and_then(Json::as_f64)
            .ok_or(format!("row {i} lacks a numeric \"qps\""))?;
        points.push((key, qps));
    }
    Ok(points)
}

/// Compares `current` against `baseline` (see the module docs for the gate semantics).
///
/// `tolerance = 0.2` fails a >20 % geometric-mean slowdown, or any single point slower
/// than 40 % below its baseline; single points 20–40 % below baseline become warnings.
pub fn compare_throughput(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<PerfComparison, String> {
    let tolerance = tolerance.clamp(0.0, 1.0);
    let severe_floor_factor = (1.0 - 2.0 * tolerance).max(0.0);
    let baseline_points = throughput_points(baseline)?;
    let current_points = throughput_points(current)?;
    let mut comparison = PerfComparison {
        geomean_ratio: 1.0,
        ..PerfComparison::default()
    };
    let mut log_ratio_sum = 0.0;
    for (key, qps) in &current_points {
        let Some((_, base_qps)) = baseline_points.iter().find(|(k, _)| k == key) else {
            comparison.missing_in_baseline += 1;
            continue;
        };
        comparison.compared += 1;
        let ratio = (qps / base_qps.max(1e-12)).max(1e-12);
        log_ratio_sum += ratio.ln();
        if *qps < base_qps * severe_floor_factor {
            comparison.regressions.push(format!(
                "{key}: {qps:.2} qps is below the severe floor {:.2} (baseline {base_qps:.2}, 2x tolerance)",
                base_qps * severe_floor_factor
            ));
        } else if *qps < base_qps * (1.0 - tolerance) {
            comparison.warnings.push(format!(
                "{key}: {qps:.2} qps < {:.2} qps soft floor (baseline {base_qps:.2})",
                base_qps * (1.0 - tolerance)
            ));
        }
    }
    if comparison.compared == 0 && !baseline_points.is_empty() {
        // Optional row dimensions (batch/threads) mean a schema drift no longer fails
        // parsing — it would instead key every current point away from the baseline.
        // Comparing nothing against a real baseline must fail loudly, not pass silently.
        comparison.regressions.push(format!(
            "no current point matched any of the {} baseline points — report schemas \
             have diverged (regenerate the baseline or fix the point keys)",
            baseline_points.len()
        ));
    }
    if comparison.compared > 0 {
        comparison.geomean_ratio = (log_ratio_sum / comparison.compared as f64).exp();
        if comparison.geomean_ratio < 1.0 - tolerance {
            comparison.regressions.insert(
                0,
                format!(
                    "geometric-mean throughput ratio {:.3} < {:.3} (tolerance {:.0}%) over {} points",
                    comparison.geomean_ratio,
                    1.0 - tolerance,
                    tolerance * 100.0,
                    comparison.compared
                ),
            );
        }
    }
    Ok(comparison)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::parse_json;

    fn report(points: &[(&str, f64, f64, f64)]) -> Json {
        let rows: Vec<String> = points
            .iter()
            .map(|(d, b, t, q)| {
                format!("{{\"dataset\":\"{d}\",\"batch\":{b},\"threads\":{t},\"qps\":{q}}}")
            })
            .collect();
        parse_json(&format!("{{\"rows\":[{}]}}", rows.join(","))).unwrap()
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = report(&[("EP", 16.0, 1.0, 100.0), ("EP", 16.0, 4.0, 300.0)]);
        let current = report(&[("EP", 16.0, 1.0, 85.0), ("EP", 16.0, 4.0, 400.0)]);
        let cmp = compare_throughput(&baseline, &current, 0.2).unwrap();
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.missing_in_baseline, 0);
        assert!(cmp.warnings.is_empty());
        assert!(cmp.geomean_ratio > 1.0);
    }

    #[test]
    fn aggregate_regression_beyond_tolerance_fails() {
        // Both points ~25% down: geomean ratio 0.75 < 0.8.
        let baseline = report(&[("EP", 16.0, 1.0, 100.0), ("EP", 16.0, 4.0, 200.0)]);
        let current = report(&[("EP", 16.0, 1.0, 75.0), ("EP", 16.0, 4.0, 150.0)]);
        let cmp = compare_throughput(&baseline, &current, 0.2).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("geometric-mean"));
        assert!((cmp.geomean_ratio - 0.75).abs() < 1e-9);
    }

    #[test]
    fn one_noisy_point_warns_but_does_not_fail() {
        // One of four points 25% down (within 2x tolerance), rest at parity: the
        // geomean stays above the floor, so this is jitter, not a regression.
        let baseline = report(&[
            ("EP", 16.0, 1.0, 100.0),
            ("EP", 16.0, 2.0, 100.0),
            ("EP", 16.0, 4.0, 100.0),
            ("WT", 16.0, 1.0, 100.0),
        ]);
        let current = report(&[
            ("EP", 16.0, 1.0, 75.0),
            ("EP", 16.0, 2.0, 100.0),
            ("EP", 16.0, 4.0, 100.0),
            ("WT", 16.0, 1.0, 100.0),
        ]);
        let cmp = compare_throughput(&baseline, &current, 0.2).unwrap();
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert_eq!(cmp.warnings.len(), 1);
        assert!(cmp.warnings[0].contains("EP/batch=16/threads=1"));
    }

    #[test]
    fn severe_single_point_regression_fails_despite_healthy_mean() {
        // One point collapses to 10% of baseline (below the 60% severe floor at
        // tolerance 0.2); the other points keep the geomean above the soft floor.
        let baseline = report(&[
            ("EP", 16.0, 1.0, 100.0),
            ("EP", 16.0, 2.0, 100.0),
            ("EP", 16.0, 4.0, 100.0),
            ("WT", 16.0, 1.0, 100.0),
            ("WT", 16.0, 2.0, 100.0),
            ("WT", 16.0, 4.0, 100.0),
            ("BS", 16.0, 1.0, 100.0),
            ("BS", 16.0, 2.0, 100.0),
        ]);
        let current = report(&[
            ("EP", 16.0, 1.0, 10.0),
            ("EP", 16.0, 2.0, 110.0),
            ("EP", 16.0, 4.0, 110.0),
            ("WT", 16.0, 1.0, 110.0),
            ("WT", 16.0, 2.0, 110.0),
            ("WT", 16.0, 4.0, 110.0),
            ("BS", 16.0, 1.0, 110.0),
            ("BS", 16.0, 2.0, 110.0),
        ]);
        let cmp = compare_throughput(&baseline, &current, 0.2).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions.iter().any(|r| r.contains("severe floor")));
    }

    #[test]
    fn points_missing_from_the_baseline_do_not_fail() {
        let baseline = report(&[("EP", 16.0, 1.0, 100.0)]);
        let current = report(&[("EP", 16.0, 1.0, 100.0), ("SL", 16.0, 1.0, 5.0)]);
        let cmp = compare_throughput(&baseline, &current, 0.2).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.missing_in_baseline, 1);
    }

    #[test]
    fn zero_overlap_with_a_real_baseline_fails_the_gate() {
        // Schema drift (e.g. a renamed column) re-keys every current point away from the
        // baseline; that must fail, not pass with "0 points compared".
        let baseline = report(&[("EP", 16.0, 1.0, 100.0)]);
        let drifted = parse_json(r#"{"rows":[{"dataset":"EP","qps":100.0}]}"#).unwrap();
        let cmp = compare_throughput(&baseline, &drifted, 0.2).unwrap();
        assert_eq!(cmp.compared, 0);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("schemas have diverged"));
        // An empty baseline row set imposes nothing.
        let empty = parse_json(r#"{"rows":[]}"#).unwrap();
        assert!(compare_throughput(&empty, &drifted, 0.2).unwrap().passed());
    }

    #[test]
    fn dataset_only_rows_gate_by_dataset_key() {
        // The mixed read/write report has no batch/threads dimensions; its rows key on
        // the dataset alone and still gate.
        let baseline = parse_json(r#"{"rows":[{"dataset":"EP","qps":100.0}]}"#).unwrap();
        let regressed = parse_json(r#"{"rows":[{"dataset":"EP","qps":40.0}]}"#).unwrap();
        let cmp = compare_throughput(&baseline, &regressed, 0.2).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.compared, 1);
        let fine = parse_json(r#"{"rows":[{"dataset":"EP","qps":95.0}]}"#).unwrap();
        assert!(compare_throughput(&baseline, &fine, 0.2).unwrap().passed());
    }

    #[test]
    fn malformed_reports_are_rejected() {
        let good = report(&[("EP", 16.0, 1.0, 100.0)]);
        let no_rows = parse_json("{}").unwrap();
        assert!(compare_throughput(&no_rows, &good, 0.2).is_err());
        let bad_row = parse_json("{\"rows\":[{\"dataset\":\"EP\"}]}").unwrap();
        assert!(compare_throughput(&good, &bad_row, 0.2).is_err());
    }
}
