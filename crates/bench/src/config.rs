//! Benchmark configuration.
//!
//! The paper's full evaluation runs 100–500 queries against twelve graphs of up to 1.8 B
//! edges; the harness scales that down so the complete suite finishes on a laptop, while
//! every knob can be turned back up through environment variables:
//!
//! * `HCSP_BENCH_SCALE` — `tiny` | `small` | `medium` | `large` (default `tiny` for
//!   `cargo bench`, `small` for the `experiments` binary).
//! * `HCSP_BENCH_DATASETS` — comma-separated dataset codes (default: the smoke subset for
//!   `cargo bench`, all twelve for the `experiments` binary).
//! * `HCSP_BENCH_QUERIES` — query-set size (default 20 for `cargo bench`, 100 otherwise).
//! * `HCSP_BENCH_KMIN` / `HCSP_BENCH_KMAX` — hop-constraint range (default 3–4 at tiny
//!   scale, 4–7 otherwise, mirroring the paper's default of 4–7).

use hcsp_workload::{Dataset, DatasetScale};

/// Harness configuration shared by the `experiments` binary and the Criterion benches.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset analog scale.
    pub scale: DatasetScale,
    /// Datasets to run on.
    pub datasets: Vec<Dataset>,
    /// Number of queries per batch.
    pub query_set_size: usize,
    /// Smallest hop constraint.
    pub k_min: u32,
    /// Largest hop constraint.
    pub k_max: u32,
    /// Base RNG seed for query generation.
    pub seed: u64,
}

impl BenchConfig {
    /// The quick configuration used by `cargo bench`: smoke datasets at tiny scale.
    pub fn quick() -> Self {
        BenchConfig {
            scale: DatasetScale::Tiny,
            datasets: Dataset::SMOKE.to_vec(),
            query_set_size: 20,
            k_min: 3,
            k_max: 4,
            seed: 42,
        }
        .apply_env()
    }

    /// The fuller configuration used by the `experiments` binary: all twelve datasets at
    /// small scale with the paper's default workload shape.
    pub fn full() -> Self {
        BenchConfig {
            scale: DatasetScale::Small,
            datasets: Dataset::ALL.to_vec(),
            query_set_size: 100,
            k_min: 4,
            k_max: 7,
            seed: 42,
        }
        .apply_env()
    }

    /// Applies environment-variable overrides.
    pub fn apply_env(mut self) -> Self {
        if let Ok(scale) = std::env::var("HCSP_BENCH_SCALE") {
            self.scale = match scale.to_ascii_lowercase().as_str() {
                "tiny" => DatasetScale::Tiny,
                "small" => DatasetScale::Small,
                "medium" => DatasetScale::Medium,
                "large" => DatasetScale::Large,
                other => {
                    eprintln!("warning: unknown HCSP_BENCH_SCALE {other:?}, keeping default");
                    self.scale
                }
            };
        }
        if let Ok(datasets) = std::env::var("HCSP_BENCH_DATASETS") {
            let parsed: Vec<Dataset> = datasets
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
            if !parsed.is_empty() {
                self.datasets = parsed;
            }
        }
        if let Ok(size) = std::env::var("HCSP_BENCH_QUERIES") {
            if let Ok(size) = size.parse() {
                self.query_set_size = size;
            }
        }
        if let Ok(k) = std::env::var("HCSP_BENCH_KMIN") {
            if let Ok(k) = k.parse() {
                self.k_min = k;
            }
        }
        if let Ok(k) = std::env::var("HCSP_BENCH_KMAX") {
            if let Ok(k) = k.parse() {
                self.k_max = k;
            }
        }
        self.k_max = self.k_max.max(self.k_min);
        self
    }

    /// The query-set specification corresponding to this configuration.
    pub fn query_spec(&self) -> hcsp_workload::QuerySetSpec {
        hcsp_workload::QuerySetSpec::new(self.query_set_size, self.seed)
            .with_hops(self.k_min, self.k_max)
    }

    /// A copy with a different query-set size (Exp-2 size sweep).
    pub fn with_query_set_size(&self, size: usize) -> Self {
        BenchConfig {
            query_set_size: size,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_have_sane_defaults() {
        let quick = BenchConfig::quick();
        assert!(!quick.datasets.is_empty());
        assert!(quick.query_set_size > 0);
        assert!(quick.k_min <= quick.k_max);

        let full = BenchConfig::full();
        assert_eq!(full.datasets.len(), 12);
        assert_eq!(full.query_set_size, 100);
        assert_eq!((full.k_min, full.k_max), (4, 7));
    }

    #[test]
    fn query_spec_reflects_config() {
        let config = BenchConfig::quick().with_query_set_size(7);
        let spec = config.query_spec();
        assert_eq!(spec.size, 7);
        assert_eq!(spec.k_min, config.k_min);
        assert_eq!(spec.k_max, config.k_max);
    }
}
