//! # hcsp-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's evaluation
//! (§V). The heavy lifting lives in [`harness`]; the Criterion benches under `benches/`
//! and the `experiments` binary are thin wrappers around it, so the same code paths are
//! measured interactively (`cargo run -p hcsp-bench --bin experiments --release`) and via
//! `cargo bench`.
//!
//! | Paper artifact | Harness entry point | Bench target |
//! |----------------|---------------------|--------------|
//! | Table I        | [`harness::table1`] | `table1_datasets` |
//! | Fig. 3 (c)     | [`harness::fig3c_materialization`] | `fig03c_materialization` |
//! | Fig. 7 / Exp-1 | [`harness::exp1_vary_similarity`] | `fig07_vary_similarity` |
//! | Fig. 8 / Exp-2 | [`harness::exp2_vary_query_set_size`] | `fig08_vary_query_set_size` |
//! | Fig. 9 / Exp-3 | [`harness::exp3_decomposition`] | `fig09_decomposition` |
//! | Fig. 10 / Exp-4| [`harness::exp4_vary_gamma`] | `fig10_vary_gamma` |
//! | Fig. 11 / Exp-5| [`harness::exp5_scalability`] | `fig11_scalability` |
//! | Fig. 12 / Exp-6| [`harness::exp6_ksp_comparison`] | `fig12_ksp_comparison` |
//! | Fig. 13 / Exp-7| [`harness::exp7_path_counts`] | `fig13_path_counts` |
//! | Design ablations | [`harness::ablation_search_order`], [`harness::ablation_clustering`] | `micro_components` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod harness;
pub mod perf;
pub mod report;

pub use config::BenchConfig;
pub use perf::{compare_throughput, PerfComparison};
pub use report::{parse_json, Json, Table};
