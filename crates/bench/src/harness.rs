//! Experiment runners: one function per table / figure of the paper's evaluation.
//!
//! Every runner returns a [`Table`] (or a set of tables) with the same rows/series the
//! paper plots; absolute numbers differ (laptop-scale analog datasets instead of the
//! authors' 20-core / 512 GB testbed), but the comparisons — which algorithm wins, how the
//! gap scales with similarity, query-set size, γ, graph size and k — are reproduced.

use crate::config::BenchConfig;
use crate::report::{fmt_seconds, Table};
use hcsp_baselines::{DkSp, KspEnumerator, OnePass};
use hcsp_core::materialize::materialize_batch;
use hcsp_core::query::BatchSummary;
use hcsp_core::similarity::{QueryNeighborhood, SimilarityMatrix};
use hcsp_core::{
    Algorithm, BatchEngine, CountSink, Engine, EnumStats, ExpansionMode, Parallelism, PathQuery,
    QuerySpec, ResultMode, SearchOrder, ServiceStats, SplitPolicy, Stage,
};
use hcsp_graph::sampling::sample_vertices;
use hcsp_graph::DiGraph;
use hcsp_index::BatchIndex;
use hcsp_service::{BatchPolicy, PathService};
use hcsp_workload::{
    fold_updates, random_query_set, similar_query_set, update_stream, Dataset, StreamEvent,
    UpdateStreamSpec,
};
use std::time::{Duration, Instant};

/// Wall-clock seconds and statistics of one algorithm run over one batch (count-only sink).
pub fn time_algorithm(
    graph: &DiGraph,
    queries: &[PathQuery],
    algorithm: Algorithm,
    gamma: f64,
) -> (f64, u64, EnumStats) {
    let engine = BatchEngine::builder()
        .algorithm(algorithm)
        .gamma(gamma)
        .build();
    let mut sink = CountSink::new(queries.len());
    let start = Instant::now();
    let stats = engine.run_with_sink(graph, queries, &mut sink);
    (start.elapsed().as_secs_f64(), sink.total(), stats)
}

/// Measured average pairwise similarity µ_Q of a query set (the x-axis of Fig. 7).
pub fn measured_similarity(graph: &DiGraph, queries: &[PathQuery]) -> f64 {
    let summary = BatchSummary::of(queries);
    let index = BatchIndex::build(
        graph,
        &summary.sources,
        &summary.targets,
        summary.max_hop_limit,
    );
    let neighborhoods: Vec<QueryNeighborhood> = queries
        .iter()
        .map(|q| QueryNeighborhood::from_index(&index, q))
        .collect();
    SimilarityMatrix::compute(&neighborhoods).average()
}

/// Table I: statistics of the analog datasets next to the statistics of the original
/// datasets they stand in for.
pub fn table1(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Table I: dataset statistics (analog vs paper original)",
        &[
            "dataset",
            "|V|",
            "|E|",
            "d_avg",
            "d_max",
            "paper |V|",
            "paper |E|",
            "paper d_avg",
        ],
    );
    for &dataset in &config.datasets {
        let (_, stats) = dataset.build_with_stats(config.scale);
        let (pv, pe, pavg) = dataset.paper_statistics();
        table.push_row(vec![
            dataset.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            format!("{:.1}", stats.avg_degree),
            stats.max_degree.to_string(),
            pv.to_string(),
            pe.to_string(),
            format!("{pavg:.1}"),
        ]);
    }
    table
}

/// Fig. 3 (c): per-query enumeration time (BasicEnum+) vs per-query time to retrieve and
/// scan already-materialised results.
pub fn fig3c_materialization(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Fig. 3(c): enumeration vs materialised retrieval (per-query seconds)",
        &["dataset", "queries", "enumerate(s)", "scan(s)", "ratio"],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = random_query_set(&graph, config.query_spec());
        if queries.is_empty() {
            continue;
        }
        let start = Instant::now();
        let (materialized, _) =
            materialize_batch(&graph, &queries, SearchOrder::DistanceThenDegree);
        let enumerate_per_query = start.elapsed().as_secs_f64() / queries.len() as f64;

        // Scan the materialised results several times so very fast scans stay measurable.
        let repeats = 10;
        let start = Instant::now();
        let mut checksum = 0u64;
        for _ in 0..repeats {
            checksum ^= materialized.scan_all().1;
        }
        std::hint::black_box(checksum);
        let scan_per_query =
            start.elapsed().as_secs_f64() / (repeats * queries.len().max(1)) as f64;

        let ratio = if scan_per_query > 0.0 {
            enumerate_per_query / scan_per_query
        } else {
            f64::INFINITY
        };
        table.push_row(vec![
            dataset.to_string(),
            queries.len().to_string(),
            fmt_seconds(enumerate_per_query),
            fmt_seconds(scan_per_query),
            format!("{ratio:.0}x"),
        ]);
    }
    table
}

/// Exp-1 / Fig. 7: processing time and speedup when varying the query-set similarity.
pub fn exp1_vary_similarity(config: &BenchConfig, similarities: &[f64]) -> Table {
    let mut table = Table::new(
        "Fig. 7 (Exp-1): processing time vs query similarity",
        &[
            "dataset",
            "target_sim",
            "measured_mu",
            "PathEnum(s)",
            "BasicEnum(s)",
            "BasicEnum+(s)",
            "BatchEnum(s)",
            "BatchEnum+(s)",
            "speedup",
            "work_ratio",
            "speedup_limit",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        for &target in similarities {
            let queries = similar_query_set(&graph, config.query_spec(), target);
            if queries.is_empty() {
                continue;
            }
            let mu = measured_similarity(&graph, &queries);
            let mut times = Vec::new();
            let mut expanded = Vec::new();
            for algorithm in Algorithm::ALL {
                let (secs, _, stats) = time_algorithm(&graph, &queries, algorithm, 0.5);
                times.push(secs);
                expanded.push(stats.counters.expanded_vertices.max(1));
            }
            let speedup = times[2] / times[4].max(1e-9);
            // Traversal-work saving of the sharing algorithm over its non-sharing
            // counterpart on the same batch (vertices expanded by BasicEnum+ divided by
            // vertices expanded by BatchEnum+): the hardware-independent view of Fig. 7.
            let work_ratio = expanded[2] as f64 / expanded[4] as f64;
            let limit = 1.0 / (1.0 - mu.min(0.999));
            table.push_row(vec![
                dataset.to_string(),
                format!("{:.0}%", target * 100.0),
                format!("{mu:.3}"),
                fmt_seconds(times[0]),
                fmt_seconds(times[1]),
                fmt_seconds(times[2]),
                fmt_seconds(times[3]),
                fmt_seconds(times[4]),
                format!("{speedup:.2}x"),
                format!("{work_ratio:.2}x"),
                format!("{limit:.2}x"),
            ]);
        }
    }
    table
}

/// Exp-2 / Fig. 8: processing time when varying the query-set size.
pub fn exp2_vary_query_set_size(config: &BenchConfig, sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "Fig. 8 (Exp-2): processing time vs query set size",
        &[
            "dataset",
            "|Q|",
            "PathEnum(s)",
            "BasicEnum(s)",
            "BasicEnum+(s)",
            "BatchEnum(s)",
            "BatchEnum+(s)",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        for &size in sizes {
            let queries = random_query_set(&graph, config.with_query_set_size(size).query_spec());
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![dataset.to_string(), queries.len().to_string()];
            for algorithm in Algorithm::ALL {
                let (secs, _, _) = time_algorithm(&graph, &queries, algorithm, 0.5);
                row.push(fmt_seconds(secs));
            }
            table.push_row(row);
        }
    }
    table
}

/// Exp-3 / Fig. 9: time decomposition of BatchEnum+ into its four stages.
pub fn exp3_decomposition(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Fig. 9 (Exp-3): BatchEnum+ processing time decomposition (seconds)",
        &[
            "dataset",
            "BuildIndex",
            "ClusterQuery",
            "IdentifySubquery",
            "Enumeration",
            "total",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = random_query_set(&graph, config.query_spec());
        if queries.is_empty() {
            continue;
        }
        let (_, _, stats) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5);
        table.push_row(vec![
            dataset.to_string(),
            fmt_seconds(stats.stage_time(Stage::BuildIndex).as_secs_f64()),
            fmt_seconds(stats.stage_time(Stage::ClusterQuery).as_secs_f64()),
            fmt_seconds(stats.stage_time(Stage::IdentifySubquery).as_secs_f64()),
            fmt_seconds(stats.stage_time(Stage::Enumeration).as_secs_f64()),
            fmt_seconds(stats.total_time().as_secs_f64()),
        ]);
    }
    table
}

/// Exp-4 / Fig. 10: impact of the clustering threshold γ on BatchEnum+.
pub fn exp4_vary_gamma(config: &BenchConfig, gammas: &[f64]) -> Table {
    let mut table = Table::new(
        "Fig. 10 (Exp-4): BatchEnum+ processing time vs clustering threshold gamma",
        &[
            "dataset",
            "gamma",
            "time(s)",
            "clusters",
            "shared_subqueries",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        // Exp-4 is most meaningful on a batch with real overlap; mirror the default
        // workload of the paper but with a moderately similar query set.
        let queries = similar_query_set(&graph, config.query_spec(), 0.5);
        if queries.is_empty() {
            continue;
        }
        for &gamma in gammas {
            let (secs, _, stats) =
                time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, gamma);
            table.push_row(vec![
                dataset.to_string(),
                format!("{gamma:.1}"),
                fmt_seconds(secs),
                stats.num_clusters.to_string(),
                stats.num_shared_subqueries.to_string(),
            ]);
        }
    }
    table
}

/// Exp-5 / Fig. 11: scalability when sampling 20 %–100 % of the two largest analogs.
pub fn exp5_scalability(config: &BenchConfig, ratios: &[f64]) -> Table {
    let mut table = Table::new(
        "Fig. 11 (Exp-5): processing time vs sampled graph size",
        &[
            "dataset",
            "vertex_ratio",
            "BasicEnum(s)",
            "BasicEnum+(s)",
            "BatchEnum(s)",
            "BatchEnum+(s)",
        ],
    );
    // The paper uses the two largest graphs (TW and FS); fall back to the two largest
    // configured datasets when those are not selected.
    let mut datasets: Vec<Dataset> = config
        .datasets
        .iter()
        .copied()
        .filter(|d| matches!(d, Dataset::TW | Dataset::FS))
        .collect();
    if datasets.is_empty() {
        datasets = config.datasets.iter().rev().take(2).copied().collect();
    }
    for dataset in datasets {
        let graph = dataset.build(config.scale);
        for &ratio in ratios {
            let Ok(sampled) = sample_vertices(&graph, ratio, config.seed) else {
                continue;
            };
            let queries = random_query_set(&sampled.graph, config.query_spec());
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![dataset.to_string(), format!("{:.0}%", ratio * 100.0)];
            for algorithm in [
                Algorithm::BasicEnum,
                Algorithm::BasicEnumPlus,
                Algorithm::BatchEnum,
                Algorithm::BatchEnumPlus,
            ] {
                let (secs, _, _) = time_algorithm(&sampled.graph, &queries, algorithm, 0.5);
                row.push(fmt_seconds(secs));
            }
            table.push_row(row);
        }
    }
    table
}

/// Exp-6 / Fig. 12: comparison with the adapted k-shortest-path algorithms.
pub fn exp6_ksp_comparison(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Fig. 12 (Exp-6): adapted KSP algorithms vs BatchEnum+",
        &[
            "dataset",
            "queries",
            "DkSP(s)",
            "OnePass(s)",
            "BatchEnum+(s)",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        // The paper uses 100 queries with k in [3, 7]; the KSP comparators are orders of
        // magnitude slower, so the harness keeps the batch small and the k range identical
        // across all three algorithms.
        let spec = hcsp_workload::QuerySetSpec::new(config.query_set_size.min(20), config.seed)
            .with_hops(3, config.k_max.min(5));
        let queries = random_query_set(&graph, spec);
        if queries.is_empty() {
            continue;
        }

        let dksp = DkSp::default();
        let start = Instant::now();
        let mut sink = CountSink::new(queries.len());
        dksp.run_batch(&graph, &queries, &mut sink);
        let dksp_secs = start.elapsed().as_secs_f64();

        let onepass = OnePass::default();
        let start = Instant::now();
        let mut sink = CountSink::new(queries.len());
        onepass.run_batch(&graph, &queries, &mut sink);
        let onepass_secs = start.elapsed().as_secs_f64();

        let (batch_secs, _, _) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5);

        table.push_row(vec![
            dataset.to_string(),
            queries.len().to_string(),
            fmt_seconds(dksp_secs),
            fmt_seconds(onepass_secs),
            fmt_seconds(batch_secs),
        ]);
    }
    table
}

/// Exp-7 / Fig. 13: average number of HC-s-t paths per query as k grows.
pub fn exp7_path_counts(config: &BenchConfig, ks: &[u32]) -> Table {
    let mut table = Table::new(
        "Fig. 13 (Exp-7): average number of HC-s-t paths per query vs k",
        &["dataset", "k", "queries", "avg_paths_per_query"],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        for &k in ks {
            let spec = hcsp_workload::QuerySetSpec::new(
                config.query_set_size.min(50),
                config.seed.wrapping_add(k as u64),
            )
            .with_hops(k, k);
            let queries = random_query_set(&graph, spec);
            if queries.is_empty() {
                continue;
            }
            let (_, total_paths, _) =
                time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5);
            let avg = total_paths as f64 / queries.len() as f64;
            table.push_row(vec![
                dataset.to_string(),
                k.to_string(),
                queries.len().to_string(),
                format!("{avg:.1}"),
            ]);
        }
    }
    table
}

/// Parallel scaling: throughput of the cluster-sharded parallel executor across thread
/// counts and batch sizes (the data series behind `BENCH_parallel_scaling.json`).
///
/// For every `dataset × batch size × thread count` combination the batch is executed
/// `repeats` times on a fresh [`Engine`] via [`Engine::run_batch_parallel`] and the
/// fastest run is reported (best-of-N suppresses scheduler noise, which matters for the
/// CI regression gate; `threads = 1` is the sequential reference of the speedup column).
/// The reported throughput includes index construction and clustering, i.e. it is
/// end-to-end queries per second, and the result counts are cross-checked against the
/// sequential engine — a scaling number from a lossy run would be worthless.
pub fn parallel_scaling(
    config: &BenchConfig,
    thread_counts: &[usize],
    batch_sizes: &[usize],
    repeats: usize,
) -> Table {
    let mut table = Table::new(
        "Parallel scaling: cluster-sharded BatchEnum+ across worker threads",
        &[
            "dataset",
            "batch",
            "threads",
            "seconds",
            "qps",
            "speedup",
            "sharing_ratio",
            "paths",
            "clusters",
            "shards",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        for &batch in batch_sizes {
            let spec = hcsp_workload::QuerySetSpec::new(batch, config.seed)
                .with_hops(config.k_min, config.k_max);
            // A mildly similar set: sharing exists inside clusters, but the batch still
            // splits into several clusters — the parallel units the shards are built
            // from. When clustering nevertheless collapses a batch below the worker
            // count (the one-giant-cluster regime), `SplitPolicy::Auto` splits the big
            // clusters into sub-clusters (sharing kept within a sub-cluster, parallel
            // slack across them); the `clusters`/`shards` columns record both sides.
            let queries = similar_query_set(&graph, spec, 0.2);
            if queries.is_empty() {
                continue;
            }
            let engine_config = BatchEngine::default();
            let mut engine = Engine::new(graph.clone(), engine_config);
            let (reference_counts, _) = engine.run_counting(&queries);

            let mut measured: Vec<(usize, f64, f64, usize, usize, usize)> = Vec::new();
            for &threads in thread_counts {
                let mut seconds = f64::INFINITY;
                let mut outcome = None;
                for _ in 0..repeats.max(1) {
                    // A fresh engine per run: every run pays the full index build, so the
                    // thread counts compare end-to-end work, not cache luck.
                    let mut engine = Engine::new(graph.clone(), engine_config);
                    engine.set_parallel_split_policy(SplitPolicy::Auto);
                    let start = Instant::now();
                    let run =
                        engine.run_batch_parallel(&queries, Parallelism::Fixed(threads.max(1)));
                    seconds = seconds.min(start.elapsed().as_secs_f64());
                    let counts: Vec<u64> = run.paths.iter().map(|p| p.len() as u64).collect();
                    assert_eq!(counts, reference_counts, "parallel run must be lossless");
                    outcome = Some(run);
                }
                let outcome = outcome.expect("at least one repeat");
                measured.push((
                    threads.max(1),
                    seconds,
                    outcome.stats.sharing_ratio(),
                    outcome.total(),
                    outcome.stats.num_clusters,
                    outcome.stats.num_shards,
                ));
            }

            // Speedup is relative to the threads = 1 measurement regardless of the order
            // the thread counts were requested in (first measurement as a fallback when
            // no single-threaded point was asked for).
            let base = measured
                .iter()
                .find(|&&(threads, ..)| threads == 1)
                .or(measured.first())
                .map(|&(_, seconds, ..)| seconds)
                .unwrap_or(1.0);
            for (threads, seconds, sharing_ratio, total_paths, clusters, shards) in measured {
                let qps = queries.len() as f64 / seconds.max(1e-9);
                table.push_row(vec![
                    dataset.to_string(),
                    queries.len().to_string(),
                    threads.to_string(),
                    format!("{seconds:.6}"),
                    format!("{qps:.2}"),
                    format!("{:.3}", base / seconds.max(1e-9)),
                    format!("{sharing_ratio:.3}"),
                    total_paths.to_string(),
                    clusters.to_string(),
                    shards.to_string(),
                ]);
            }
        }
    }
    table
}

/// Frontier vs recursive expansion: end-to-end throughput of the two execution engines
/// on the identical batch (the data series behind `BENCH_frontier.json`).
///
/// Both engines run `BatchEnum+` on the same sharing-heavy query set, best-of-`repeats`;
/// `qps` is the frontier engine's throughput (the default engine, and the number the
/// perf gate compares against `bench/baseline_frontier.json`). Honesty checks built in:
/// the two engines must agree on the result counts *and* on every traversal counter —
/// the frontier engine is a pure execution-strategy change, so a speedup from different
/// work would be a correctness bug, not a win.
pub fn frontier_comparison(config: &BenchConfig, repeats: usize) -> Table {
    let mut table = Table::new(
        "Frontier vs recursive expansion: BatchEnum+ throughput per engine",
        &[
            "dataset",
            "queries",
            "recursive_s",
            "frontier_s",
            "qps",
            "recursive_qps",
            "speedup",
            "expanded",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = similar_query_set(&graph, config.query_spec(), 0.5);
        if queries.is_empty() {
            continue;
        }
        let run = |mode: ExpansionMode| {
            let engine = BatchEngine::builder()
                .algorithm(Algorithm::BatchEnumPlus)
                .gamma(0.5)
                .expansion_mode(mode)
                .build();
            let mut seconds = f64::INFINITY;
            let mut result = None;
            for _ in 0..repeats.max(1) {
                let mut sink = CountSink::new(queries.len());
                let start = Instant::now();
                let stats = engine.run_with_sink(&graph, &queries, &mut sink);
                seconds = seconds.min(start.elapsed().as_secs_f64());
                result = Some((sink.total(), stats));
            }
            let (total, stats) = result.expect("at least one repeat");
            (seconds, total, stats)
        };
        let (recursive_s, recursive_total, recursive_stats) = run(ExpansionMode::Recursive);
        let (frontier_s, frontier_total, frontier_stats) = run(ExpansionMode::Frontier);
        assert_eq!(
            frontier_total, recursive_total,
            "the engines must agree on result counts"
        );
        assert_eq!(
            frontier_stats.counters, recursive_stats.counters,
            "the engines must agree on every traversal counter"
        );
        let qps = queries.len() as f64 / frontier_s.max(1e-9);
        let recursive_qps = queries.len() as f64 / recursive_s.max(1e-9);
        table.push_row(vec![
            dataset.to_string(),
            queries.len().to_string(),
            format!("{recursive_s:.6}"),
            format!("{frontier_s:.6}"),
            format!("{qps:.2}"),
            format!("{recursive_qps:.2}"),
            format!("{:.3}", recursive_s / frontier_s.max(1e-9)),
            frontier_stats.counters.expanded_vertices.to_string(),
        ]);
    }
    table
}

/// Mixed read/write: a reusable [`Engine`] consuming an interleaved stream of query
/// arrivals and edge-update batches (the evolving-graph serving scenario).
///
/// Consecutive queries between two update events execute as one micro-batch (mirroring
/// the service layer, where each update publishes a new epoch and the next admission
/// window pins it); updates flow through [`Engine::apply_updates`], so the numbers
/// include incremental index maintenance and the lazy dirty-root re-BFS. Each dataset
/// contributes two rows: the balanced mix (50% insertions) and a delete-heavy mix
/// (`<dataset>:del`, 15% insertions) that stresses the precise delete maintenance. The
/// `rebfs_marked` / `rebfs_avoided` columns split the roots a conservative maintainer
/// would re-BFS (`marked + avoided`) into those the survivor scan actually marked and
/// those it proved still supported — on the delete-heavy mix `rebfs_avoided > 0`, i.e.
/// the precise count is strictly lower. Gated in CI: `perf-smoke` compares the per-row
/// `qps` against the committed `bench/baseline_mixed_rw.json` with the same tolerance
/// semantics as parallel scaling.
///
/// Honesty check built in: after the stream drains, the engine's answers for a probe
/// batch are asserted byte-identical against a fresh engine over the oracle fold of all
/// updates — a throughput number from a drifting replica would be worthless.
pub fn mixed_read_write(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Mixed read/write: query stream interleaved with edge updates",
        &[
            "dataset",
            "queries",
            "update_batches",
            "mutations",
            "query_s",
            "update_s",
            "qps",
            "update_refreshes",
            "invalidations",
            "dirty_flushes",
            "rebfs_marked",
            "rebfs_avoided",
        ],
    );
    let num_batches = (config.query_set_size / 4).max(2);
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let balanced = UpdateStreamSpec::new(config.query_set_size, num_batches, config.seed)
            .with_hops(config.k_min, config.k_max)
            .with_updates(4, 0.5);
        let delete_heavy =
            UpdateStreamSpec::delete_heavy(config.query_set_size, num_batches, config.seed)
                .with_hops(config.k_min, config.k_max);
        for (suffix, spec) in [("", balanced), (":del", delete_heavy)] {
            let events = update_stream(&graph, spec);
            if events.is_empty() {
                continue;
            }

            let mut engine = Engine::new(graph.clone(), BatchEngine::default());
            let mut pending: Vec<PathQuery> = Vec::new();
            let mut query_time = Duration::ZERO;
            let mut update_time = Duration::ZERO;
            let mut queries = 0usize;
            let mut update_batches = 0usize;
            let mut mutations = 0usize;
            let mut rebfs_marked = 0usize;
            let mut rebfs_avoided = 0usize;

            let flush = |engine: &mut Engine, pending: &mut Vec<PathQuery>| {
                if pending.is_empty() {
                    return Duration::ZERO;
                }
                let mut sink = CountSink::new(pending.len());
                let start = Instant::now();
                engine.run_with_sink(pending, &mut sink);
                pending.clear();
                start.elapsed()
            };
            for event in &events {
                match event {
                    StreamEvent::Query(q) => {
                        queries += 1;
                        pending.push(*q);
                    }
                    StreamEvent::Update(batch) => {
                        query_time += flush(&mut engine, &mut pending);
                        update_batches += 1;
                        mutations += batch.len();
                        let start = Instant::now();
                        let summary = engine.apply_updates(batch);
                        update_time += start.elapsed();
                        rebfs_marked += summary.dirty_roots;
                        rebfs_avoided += summary.supported_deletes;
                    }
                }
            }
            query_time += flush(&mut engine, &mut pending);

            // Lossless check against the oracle fold of the whole stream.
            let oracle_graph = fold_updates(&graph, &events);
            let probe = random_query_set(&oracle_graph, config.query_spec());
            if !probe.is_empty() {
                let (served, _) = engine.run_counting(&probe);
                let mut oracle = Engine::new(oracle_graph, BatchEngine::default());
                let (expected, _) = oracle.run_counting(&probe);
                assert_eq!(served, expected, "evolved engine drifted from the oracle");
            }

            let reuse = engine.index_reuse();
            let qps = queries as f64 / query_time.as_secs_f64().max(1e-9);
            table.push_row(vec![
                format!("{dataset}{suffix}"),
                queries.to_string(),
                update_batches.to_string(),
                mutations.to_string(),
                format!("{:.6}", query_time.as_secs_f64()),
                format!("{:.6}", update_time.as_secs_f64()),
                format!("{qps:.2}"),
                reuse.update_refreshes.to_string(),
                reuse.invalidations.to_string(),
                reuse.dirty_flushes.to_string(),
                rebfs_marked.to_string(),
                rebfs_avoided.to_string(),
            ]);
        }
    }
    table
}

/// Drives one dataset's delete-heavy stream through a live [`PathService`] and returns
/// the drained [`ServiceStats`] — the source of the epoch counters `perf-smoke` prints
/// (epochs published, batches pinned behind the tip, dirty re-BFS avoided).
///
/// Report-only: the counters describe the epoch machinery's behaviour on a live service
/// — updates publish while earlier submissions are still pinned to older epochs — and
/// are not gated against a baseline. Every query and update handle is waited on, so the
/// stats are complete when the service shuts down.
pub fn service_epoch_counters(config: &BenchConfig) -> ServiceStats {
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let spec = UpdateStreamSpec::delete_heavy(
        config.query_set_size,
        (config.query_set_size / 4).max(2),
        config.seed,
    )
    .with_hops(config.k_min, config.k_max);
    let events = update_stream(&graph, spec);

    let service = PathService::builder()
        .workers(2)
        .policy(BatchPolicy::by_size(8, Duration::from_millis(2)))
        .start(graph)
        .expect("an ephemeral service start cannot fail");
    let mut queries = Vec::new();
    let mut updates = Vec::new();
    for event in &events {
        match event {
            StreamEvent::Query(q) => queries.push(service.submit(*q)),
            StreamEvent::Update(batch) => updates.push(service.update(batch.clone())),
        }
    }
    for handle in updates {
        handle.wait();
    }
    for handle in queries {
        handle.wait();
    }
    service.shutdown()
}

/// One row per instrumentation counter: the complete contract surface of
/// [`hcsp_core::SearchCounters`], [`hcsp_core::IndexReuse`] and [`ServiceStats`].
///
/// This table is deliberately exhaustive — the `dead-counter` rule of
/// `hcsp-lint` requires every counter field to be read by the bench crate, and
/// this is where the long tail of them surfaces. Three short runs feed it: a
/// shared-pipeline batch (search counters), an engine driven through repeat
/// batches and a delete-heavy stream (index-reuse counters), and a live
/// service session (service counters).
pub fn instrumentation_counters(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Instrumentation counters (search / index reuse / service)",
        &["struct", "counter", "value"],
    );
    let Some(&dataset) = config.datasets.first() else {
        return table;
    };
    let graph = dataset.build(config.scale);
    let queries = random_query_set(&graph, config.query_spec());

    // Search counters: one shared-pipeline batch over the dataset.
    let (_, _, stats) = time_algorithm(&graph, &queries, Algorithm::BatchEnum, 0.5);
    let search = &stats.counters;
    for (name, value) in [
        ("expanded_vertices", search.expanded_vertices),
        ("scanned_edges", search.scanned_edges),
        ("pruned_edges", search.pruned_edges),
        ("stored_prefixes", search.stored_prefixes),
        ("cache_splices", search.cache_splices),
        ("produced_paths", search.produced_paths),
    ] {
        table.push_row(vec![
            "SearchCounters".to_string(),
            name.to_string(),
            value.to_string(),
        ]);
    }

    // Index-reuse counters: the same engine serves two identical batches (build,
    // then reuse), absorbs a delete-heavy stream (dirty roots, epoch advances),
    // and serves once more (flush + extension).
    let mut engine = Engine::new(graph.clone(), BatchEngine::default());
    engine.run_counting(&queries);
    engine.run_counting(&queries);
    let spec = UpdateStreamSpec::delete_heavy(
        config.query_set_size,
        (config.query_set_size / 4).max(2),
        config.seed,
    )
    .with_hops(config.k_min, config.k_max);
    for event in update_stream(&graph, spec) {
        if let StreamEvent::Update(batch) = event {
            engine.apply_updates(&batch);
        }
    }
    engine.run_counting(&queries);
    let reuse = engine.index_reuse();
    for (name, value) in [
        ("rebuilds", reuse.rebuilds),
        ("extensions", reuse.extensions),
        ("hits", reuse.hits),
        ("roots_added", reuse.roots_added),
        ("resets", reuse.resets),
        ("update_refreshes", reuse.update_refreshes),
        ("invalidations", reuse.invalidations),
        ("dirty_flushes", reuse.dirty_flushes),
        ("dirty_roots_refreshed", reuse.dirty_roots_refreshed),
        ("epoch_advances", reuse.epoch_advances),
        ("deletes_supported", reuse.deletes_supported),
    ] {
        table.push_row(vec![
            "IndexReuse".to_string(),
            name.to_string(),
            value.to_string(),
        ]);
    }

    // Service counters: a live session over the delete-heavy mix.
    let service = service_epoch_counters(config);
    let service_rows: Vec<(&str, String)> = vec![
        ("num_batches", service.num_batches.to_string()),
        ("num_queries", service.num_queries.to_string()),
        ("max_batch_size", service.max_batch_size.to_string()),
        (
            "total_queue_wait",
            fmt_seconds(service.total_queue_wait.as_secs_f64()),
        ),
        (
            "max_queue_wait",
            fmt_seconds(service.max_queue_wait.as_secs_f64()),
        ),
        (
            "total_exec_time",
            fmt_seconds(service.total_exec_time.as_secs_f64()),
        ),
        ("num_clusters", service.num_clusters.to_string()),
        ("produced_paths", service.produced_paths.to_string()),
        ("update_batches", service.update_batches.to_string()),
        ("update_calls", service.update_calls.to_string()),
        ("updates_applied", service.updates_applied.to_string()),
        ("epochs_published", service.epochs_published.to_string()),
        (
            "group_commit_batches",
            service.group_commit_batches.to_string(),
        ),
        (
            "batches_pinned_behind",
            service.batches_pinned_behind.to_string(),
        ),
        ("rebfs_avoided", service.rebfs_avoided.to_string()),
    ];
    for (name, value) in service_rows {
        table.push_row(vec!["ServiceStats".to_string(), name.to_string(), value]);
    }
    table
}

/// Result modes: the early-termination payoff of the typed request/response API.
///
/// The same dense (high-similarity) batch is executed once per [`ResultMode`] —
/// `Collect` (full enumeration, the old one-size-fits-all semantics), `Count`,
/// `FirstK(4)` and `Exists` — through [`Engine::run_specs`], for both the per-query
/// (`BasicEnum+`) and the sharing (`BatchEnum+`) algorithm. `expanded` is the number of
/// Durability costs: WAL append throughput per fsync policy, checkpoint latency, and
/// recovery (open + tail replay + fold) latency, on an in-memory vfs so the numbers
/// isolate the storage stack's own work (framing, CRC, snapshot encode/decode) from
/// disk variance. The `always` row is the ack-latency price of per-batch fsync; the
/// spread to `never` bounds what group commit could recover.
pub fn storage_durability(config: &BenchConfig) -> Table {
    use hcsp_storage::{fold_batches, FailpointFs, FsyncPolicy, StoreOptions, UpdateStore};

    let mut table = Table::new(
        "Durability: WAL append, checkpoint and recovery timings (in-memory vfs)",
        &[
            "dataset",
            "fsync",
            "batches",
            "updates",
            "append_s",
            "batches_per_s",
            "wal_kib",
            "checkpoint_s",
            "open_s",
            "replayed",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let spec = hcsp_workload::RecoveryWorkloadSpec {
            num_batches: (config.query_set_size * 2).max(64),
            updates_per_batch: 8,
            num_queries: 0,
            seed: config.seed,
            ..Default::default()
        };
        let workload = hcsp_workload::recovery_workload(&graph, spec);
        let num_updates: usize = workload.batches.iter().map(Vec::len).sum();
        for (label, fsync) in [
            ("always", FsyncPolicy::Always),
            ("every8", FsyncPolicy::EveryN(8)),
            ("never", FsyncPolicy::Never),
        ] {
            let fs = FailpointFs::new();
            let mut store =
                UpdateStore::create(fs.as_vfs(), StoreOptions { fsync }, &graph).expect("create");

            let start = Instant::now();
            for batch in &workload.batches {
                store.append(batch).expect("append");
            }
            store.sync().expect("sync");
            let append_s = start.elapsed().as_secs_f64();
            let wal_kib = store.tail_bytes() as f64 / 1024.0;
            drop(store);

            // Recovery with the full tail still in the log: open, replay, fold.
            let start = Instant::now();
            let rec = UpdateStore::open(fs.as_vfs(), StoreOptions { fsync }).expect("open");
            let folded = fold_batches(rec.base.clone(), &rec.batches);
            let open_s = start.elapsed().as_secs_f64();
            let replayed = rec.report.replayed_batches;

            let mut store = rec.store;
            let start = Instant::now();
            store.checkpoint(&folded).expect("checkpoint");
            let checkpoint_s = start.elapsed().as_secs_f64();

            table.push_row(vec![
                dataset.to_string(),
                label.to_string(),
                workload.batches.len().to_string(),
                num_updates.to_string(),
                fmt_seconds(append_s),
                format!("{:.0}", workload.batches.len() as f64 / append_s.max(1e-9)),
                format!("{wal_kib:.1}"),
                fmt_seconds(checkpoint_s),
                fmt_seconds(open_s),
                replayed.to_string(),
            ]);
        }
    }
    table
}

/// DFS vertex expansions ([`EnumStats`] search steps): the hardware-independent proof
/// that `Exists` (answered from the index) and `FirstK` (search aborted at the k-th
/// path) are *strictly cheaper* than full enumeration, not just faster on one box.
///
/// Honesty checks built in: per query, `Count` must equal the `Collect` length, `Exists`
/// must equal `count > 0`, and the `FirstK` paths must be a prefix of the `Collect`
/// paths — a speedup from a wrong answer would be worthless.
pub fn result_modes(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Result modes: early termination vs full enumeration",
        &[
            "dataset",
            "algorithm",
            "mode",
            "queries",
            "seconds",
            "qps",
            "expanded",
            "produced",
            "speedup_vs_collect",
        ],
    );
    const FIRST_K: usize = 4;
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        // A dense, overlapping workload (the Fig. 13 regime): large result sets are
        // exactly where stopping early pays.
        let queries = similar_query_set(&graph, config.query_spec(), 0.5);
        if queries.is_empty() {
            continue;
        }
        for algorithm in [Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
            let run_mode = |mode: ResultMode| {
                let specs: Vec<QuerySpec> =
                    queries.iter().map(|&q| QuerySpec::new(q, mode)).collect();
                // A fresh engine per mode: every run pays the full index build, so the
                // modes compare end-to-end cost.
                let mut engine = Engine::with_algorithm(graph.clone(), algorithm);
                let start = Instant::now();
                let outcome = engine.run_specs(&specs);
                (start.elapsed().as_secs_f64(), outcome)
            };
            let (collect_secs, collect) = run_mode(ResultMode::Collect);
            for (mode, label) in [
                (ResultMode::Collect, "Collect".to_string()),
                (ResultMode::Count, "Count".to_string()),
                (ResultMode::FirstK(FIRST_K), format!("FirstK({FIRST_K})")),
                (ResultMode::Exists, "Exists".to_string()),
            ] {
                let (secs, outcome) = if mode == ResultMode::Collect {
                    (collect_secs, collect.clone())
                } else {
                    run_mode(mode)
                };
                // Cross-mode consistency against the full enumeration.
                for (i, response) in outcome.responses.iter().enumerate() {
                    let full = collect.responses[i].paths().expect("collect returns paths");
                    match mode {
                        ResultMode::Exists => {
                            assert_eq!(response.exists(), !full.is_empty(), "query {i}")
                        }
                        ResultMode::Count => {
                            assert_eq!(response.count(), Some(full.len() as u64), "query {i}")
                        }
                        ResultMode::FirstK(k) => {
                            let first = response.paths().expect("firstk returns paths");
                            assert_eq!(first.len(), full.len().min(k), "query {i}");
                            for (j, p) in first.iter().enumerate() {
                                assert_eq!(p, full.get(j), "query {i}: FirstK must prefix Collect");
                            }
                        }
                        ResultMode::Collect => {}
                    }
                }
                let qps = queries.len() as f64 / secs.max(1e-9);
                table.push_row(vec![
                    dataset.to_string(),
                    algorithm.to_string(),
                    label,
                    queries.len().to_string(),
                    format!("{secs:.6}"),
                    format!("{qps:.2}"),
                    outcome.stats.counters.expanded_vertices.to_string(),
                    outcome.stats.counters.produced_paths.to_string(),
                    format!("{:.2}x", collect_secs / secs.max(1e-9)),
                ]);
            }
        }
    }
    table
}

/// Ablation: the effect of the optimized search order on the baseline and the shared
/// algorithm (BasicEnum vs BasicEnum+ and BatchEnum vs BatchEnum+).
pub fn ablation_search_order(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Ablation: optimized search order",
        &[
            "dataset",
            "BasicEnum(s)",
            "BasicEnum+(s)",
            "BatchEnum(s)",
            "BatchEnum+(s)",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = similar_query_set(&graph, config.query_spec(), 0.5);
        if queries.is_empty() {
            continue;
        }
        let mut row = vec![dataset.to_string()];
        for algorithm in [
            Algorithm::BasicEnum,
            Algorithm::BasicEnumPlus,
            Algorithm::BatchEnum,
            Algorithm::BatchEnumPlus,
        ] {
            let (secs, _, _) = time_algorithm(&graph, &queries, algorithm, 0.5);
            row.push(fmt_seconds(secs));
        }
        table.push_row(row);
    }
    table
}

/// Ablation: clustering on (default γ) vs off (γ = 1, every query alone) vs aggressive
/// (γ = 0.1, everything with any overlap merged).
pub fn ablation_clustering(config: &BenchConfig) -> Table {
    let mut table = Table::new(
        "Ablation: clustering threshold (off / default / aggressive)",
        &[
            "dataset",
            "gamma=1.0(s)",
            "gamma=0.5(s)",
            "gamma=0.1(s)",
            "clusters@0.5",
        ],
    );
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = similar_query_set(&graph, config.query_spec(), 0.6);
        if queries.is_empty() {
            continue;
        }
        let (off, _, _) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 1.0);
        let (default_g, _, stats) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5);
        let (aggressive, _, _) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.1);
        table.push_row(vec![
            dataset.to_string(),
            fmt_seconds(off),
            fmt_seconds(default_g),
            fmt_seconds(aggressive),
            stats.num_clusters.to_string(),
        ]);
    }
    table
}

/// End-to-end server latency per batch policy: a [`hcsp_server::PathServer`] on
/// loopback, driven by the crate's own open-loop load generator over one pipelined
/// connection, with a mixed statement stream (`PATHS … LIMIT`, `EXISTS`, `COUNT`, and
/// interleaved `INSERT`/`DELETE EDGE` pairs).
///
/// The per-request latency is *send instant → terminal response frame*, so it prices
/// the whole serving path — framing, parse, admission, the batch-formation wait, the
/// shared execution, and the response stream. The policy axis reproduces the paper's
/// central trade-off at the wire: `immediate` is the real-time regime (no admission
/// wait, no sharing), `by_size(8, 2ms)` holds arrivals back for up to the window to
/// execute them as one shared micro-batch — p50 pays the window, p99 and qps gain from
/// the sharing.
pub fn server_latency(config: &BenchConfig) -> Table {
    use hcsp_server::{run_load, PathServer, Reply, ServerConfig};
    use hcsp_workload::ArrivalProcess;
    use std::sync::Arc;

    let mut table = Table::new(
        "Server latency: end-to-end TCP percentiles per batch policy (Poisson arrivals)",
        &[
            "dataset", "policy", "requests", "p50_ms", "p99_ms", "qps", "errors",
        ],
    );
    let policies: [(&str, BatchPolicy); 2] = [
        ("immediate", BatchPolicy::immediate()),
        (
            "by_size(8,2ms)",
            BatchPolicy::by_size(8, Duration::from_millis(2)),
        ),
    ];
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = random_query_set(&graph, config.query_spec());
        if queries.is_empty() {
            continue;
        }
        // Edges to churn: each becomes a DELETE immediately followed by the matching
        // INSERT, so the graph always returns to its base state between measurements.
        let churn: Vec<(u32, u32)> = graph
            .edges()
            .step_by((graph.num_edges() / 8).max(1))
            .map(|(u, v)| (u.0, v.0))
            .collect();
        let mut statements = Vec::new();
        let mut churn_iter = churn.iter().cycle();
        for (i, q) in queries
            .iter()
            .cycle()
            .take(queries.len().max(64))
            .enumerate()
        {
            let (s, t, k) = (q.source.0, q.target.0, q.hop_limit);
            statements.push(match i % 4 {
                0 => format!("PATHS FROM {s} TO {t} WITHIN {k} LIMIT 4"),
                1 => format!("EXISTS FROM {s} TO {t} WITHIN {k}"),
                _ => format!("COUNT FROM {s} TO {t} WITHIN {k} LIMIT 64"),
            });
            if i % 8 == 3 {
                let &(u, v) = churn_iter.next().expect("cycle never ends");
                statements.push(format!("DELETE EDGE {u} {v}"));
                statements.push(format!("INSERT EDGE {u} {v}"));
            }
        }
        let arrivals = ArrivalProcess::Poisson { rate_qps: 400.0 };
        for (name, policy) in &policies {
            let service = Arc::new(
                PathService::builder()
                    .workers(2)
                    .policy(*policy)
                    .start(graph.clone())
                    .expect("an ephemeral service start cannot fail"),
            );
            let server = PathServer::bind(
                Arc::clone(&service),
                ("127.0.0.1", 0),
                ServerConfig::default(),
            )
            .expect("bind loopback");
            let report = run_load(server.local_addr(), &statements, &arrivals, config.seed)
                .expect("load run against a live server");
            let errors = report
                .replies
                .iter()
                .filter(|r| matches!(r, Reply::Error { .. }))
                .count();
            table.push_row(vec![
                dataset.to_string(),
                (*name).to_string(),
                report.replies.len().to_string(),
                format!("{:.3}", report.p50().as_secs_f64() * 1e3),
                format!("{:.3}", report.p99().as_secs_f64() * 1e3),
                format!("{:.1}", report.qps()),
                errors.to_string(),
            ]);
            server.shutdown();
            Arc::try_unwrap(service)
                .expect("the shut-down server held the last other reference")
                .shutdown();
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_workload::DatasetScale;

    fn test_config() -> BenchConfig {
        BenchConfig {
            scale: DatasetScale::Tiny,
            datasets: vec![Dataset::EP, Dataset::WT],
            query_set_size: 8,
            k_min: 3,
            k_max: 4,
            seed: 7,
        }
    }

    #[test]
    fn table1_lists_every_configured_dataset() {
        let t = table1(&test_config());
        assert_eq!(t.len(), 2);
        assert!(t.to_string().contains("EP"));
    }

    #[test]
    fn fig3c_shows_enumeration_slower_than_scanning() {
        let t = fig3c_materialization(&test_config());
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            let enumerate: f64 = row[2].parse().unwrap();
            let scan: f64 = row[3].parse().unwrap();
            assert!(
                enumerate > scan,
                "enumeration must cost more than scanning: {row:?}"
            );
        }
    }

    #[test]
    fn exp1_rows_cover_every_similarity_point() {
        let t = exp1_vary_similarity(&test_config(), &[0.0, 0.8]);
        assert_eq!(t.len(), 4);
        assert!(t.to_csv().contains("80%"));
    }

    #[test]
    fn exp2_and_exp3_produce_rows() {
        let config = test_config();
        assert_eq!(exp2_vary_query_set_size(&config, &[5, 10]).len(), 4);
        let decomposition = exp3_decomposition(&config);
        assert_eq!(decomposition.len(), 2);
    }

    #[test]
    fn exp4_exp5_exp6_exp7_produce_rows() {
        let config = test_config();
        assert!(exp4_vary_gamma(&config, &[0.3, 0.7]).len() == 4);
        assert!(!exp5_scalability(&config, &[0.5, 1.0]).is_empty());
        assert_eq!(exp6_ksp_comparison(&config).len(), 2);
        assert_eq!(exp7_path_counts(&config, &[3, 4]).len(), 4);
    }

    #[test]
    fn ablations_produce_rows() {
        let config = test_config();
        assert_eq!(ablation_search_order(&config).len(), 2);
        assert_eq!(ablation_clustering(&config).len(), 2);
    }

    #[test]
    fn mixed_read_write_reports_per_dataset_rows() {
        let config = test_config();
        let t = mixed_read_write(&config);
        // Two rows per dataset: the balanced mix and the delete-heavy mix.
        assert_eq!(t.len(), 4);
        let mut delete_heavy_avoided = 0usize;
        for row in t.rows() {
            let queries: usize = row[1].parse().unwrap();
            let update_batches: usize = row[2].parse().unwrap();
            let mutations: usize = row[3].parse().unwrap();
            assert_eq!(queries, 8);
            assert_eq!(update_batches, 2);
            assert_eq!(mutations, update_batches * 4);
            let qps: f64 = row[6].parse().unwrap();
            assert!(qps > 0.0, "throughput must be positive: {row:?}");
            let refreshes: usize = row[7].parse().unwrap();
            let invalidations: usize = row[8].parse().unwrap();
            // Batches arriving before the first query find no cached index to maintain,
            // so the maintained count is bounded by (not equal to) the batch count.
            assert!(
                refreshes + invalidations <= update_batches,
                "maintenance counters exceed the update batches: {row:?}"
            );
            assert!(
                refreshes > 0,
                "the stream must exercise incremental maintenance"
            );
            if row[0].ends_with(":del") {
                delete_heavy_avoided += row[11].parse::<usize>().unwrap();
            }
        }
        // The survivor scan must beat the conservative baseline (marked + avoided)
        // somewhere on the delete-heavy mix: precise re-BFS count strictly lower.
        assert!(
            delete_heavy_avoided > 0,
            "delete-heavy rows must avoid at least one conservative re-BFS:\n{}",
            t.to_csv()
        );
    }

    #[test]
    fn service_epoch_counters_reflect_the_delete_heavy_stream() {
        let stats = service_epoch_counters(&test_config());
        assert_eq!(stats.num_queries, 8);
        assert!(
            stats.epochs_published >= 1,
            "the delete-heavy stream must publish epochs: {stats:?}"
        );
        assert_eq!(stats.update_batches, stats.epochs_published);
    }

    #[test]
    fn parallel_scaling_produces_one_row_per_combination() {
        let config = test_config();
        let t = parallel_scaling(&config, &[1, 2], &[6], 2);
        // 2 datasets × 1 batch size × 2 thread counts.
        assert_eq!(t.len(), 4);
        for row in t.rows() {
            let threads: usize = row[2].parse().unwrap();
            assert!(threads == 1 || threads == 2);
            let qps: f64 = row[4].parse().unwrap();
            assert!(qps > 0.0, "throughput must be positive: {row:?}");
            let speedup: f64 = row[5].parse().unwrap();
            assert!(speedup > 0.0);
            let sharing: f64 = row[6].parse().unwrap();
            assert!((0.0..=1.0).contains(&sharing));
            let clusters: usize = row[8].parse().unwrap();
            let shards: usize = row[9].parse().unwrap();
            assert!(clusters >= 1);
            assert!(shards >= 1);
            if threads > 1 {
                // The Auto split policy guarantees parallel slack: even a batch that
                // clustering collapses into one giant cluster is split into more than
                // one effective shard.
                assert!(
                    shards > 1,
                    "multi-threaded rows must plan more than one shard: {row:?}"
                );
            }
        }
        // The threads=1 rows are the speedup reference.
        assert_eq!(t.rows()[0][5], "1.000");
    }

    #[test]
    fn frontier_comparison_reports_matching_engines() {
        let t = frontier_comparison(&test_config(), 2);
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            let qps: f64 = row[4].parse().unwrap();
            let recursive_qps: f64 = row[5].parse().unwrap();
            assert!(qps > 0.0, "frontier throughput must be positive: {row:?}");
            assert!(recursive_qps > 0.0);
            let expanded: u64 = row[7].parse().unwrap();
            assert!(
                expanded > 0,
                "the workload must do real search work: {row:?}"
            );
        }
    }

    #[test]
    fn result_modes_short_circuit_strictly() {
        // A genuinely dense point (EP at k = 5..6 yields hundreds of paths per query):
        // the regime where the early-termination claims must hold *strictly*.
        let config = BenchConfig {
            scale: DatasetScale::Tiny,
            datasets: vec![Dataset::EP],
            query_set_size: 8,
            k_min: 5,
            k_max: 6,
            seed: 7,
        };
        let t = result_modes(&config);
        // 1 dataset x 2 algorithms x 4 modes.
        assert_eq!(t.len(), 8);
        for chunk in t.rows().chunks(4) {
            let algorithm = &chunk[0][1];
            let expanded: Vec<u64> = chunk.iter().map(|r| r[6].parse().unwrap()).collect();
            let (collect, count, first_k, exists) =
                (expanded[0], expanded[1], expanded[2], expanded[3]);
            assert!(collect > 0, "dense workload must do real search work");
            assert_eq!(count, collect, "counting pays full enumeration");
            assert_eq!(exists, 0, "exists probes are answered from the index");
            assert!(
                first_k <= collect,
                "{algorithm}: FirstK may never cost more search steps"
            );
            if algorithm == "BasicEnum+" {
                assert!(
                    first_k < collect,
                    "BasicEnum+: the streaming join must abort the DFS early \
                     ({first_k} vs {collect})"
                );
            }
            // Produced paths shrink with the mode's need.
            let produced: Vec<u64> = chunk.iter().map(|r| r[7].parse().unwrap()).collect();
            assert!(produced[2] <= produced[0]);
            assert_eq!(produced[3], 0, "exists probes enumerate nothing");
        }
    }

    #[test]
    fn timing_helper_reports_counts_and_stats() {
        let graph = Dataset::EP.build(DatasetScale::Tiny);
        let queries = random_query_set(
            &graph,
            hcsp_workload::QuerySetSpec::new(5, 3).with_hops(3, 3),
        );
        let (secs, total, stats) = time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5);
        assert!(secs >= 0.0);
        assert_eq!(stats.num_queries, queries.len());
        assert_eq!(total, stats.counters.produced_paths);
        let mu = measured_similarity(&graph, &queries);
        assert!((0.0..=1.0).contains(&mu));
    }
}
