//! Plain-text table rendering for experiment output.
//!
//! The harness prints each experiment as a fixed-width table (one row per dataset /
//! parameter value, one column per algorithm or sub-measurement), matching the series the
//! paper's figures plot.

use std::fmt;

/// A simple fixed-width table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw rows (used by tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (header + rows), convenient for plotting scripts.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths from header and contents.
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{:>width$}", cell, width = widths[i]));
            }
            writeln!(f, "{}", parts.join("  "))
        };
        render_row(f, &self.header)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration in seconds with sensible precision for experiment tables.
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.6}", seconds)
    } else if seconds < 1.0 {
        format!("{:.4}", seconds)
    } else {
        format!("{:.3}", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = Table::new("Fig. X", &["dataset", "time(s)"]);
        t.push_row(vec!["EP".into(), "0.123".into()]);
        t.push_row(vec!["TW".into(), "10.5".into()]);
        let text = t.to_string();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("dataset"));
        assert!(text.contains("EP"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Fig. X");
        assert_eq!(t.rows()[1][1], "10.5");
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn seconds_formatting_adapts_precision() {
        assert_eq!(fmt_seconds(0.0000123), "0.000012");
        assert_eq!(fmt_seconds(0.1234), "0.1234");
        assert_eq!(fmt_seconds(12.3456), "12.346");
    }
}
