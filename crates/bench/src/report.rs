//! Experiment output rendering: fixed-width tables, CSV, and machine-readable JSON.
//!
//! The harness prints each experiment as a fixed-width table (one row per dataset /
//! parameter value, one column per algorithm or sub-measurement), matching the series the
//! paper's figures plot. Every table also renders as JSON ([`Table::to_json`]) so CI jobs
//! and plotting scripts can consume results without scraping text, and a small
//! self-contained JSON reader ([`parse_json`]) lets the perf gate compare a fresh run
//! against a committed baseline without external dependencies (the build environment has
//! no crates.io access, so `serde_json` is not available).

use std::collections::BTreeMap;
use std::fmt;

/// A simple fixed-width table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw rows (used by tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (header + rows), convenient for plotting scripts.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON document: `{"title": ..., "rows": [{col: value}]}`.
    ///
    /// Cells that parse as finite numbers are emitted as JSON numbers; everything else is
    /// emitted as a string. Row objects use the header names as keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"title\":{},\"rows\":[",
            json_string(&self.title)
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (name, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(name));
                out.push(':');
                out.push_str(&json_cell(cell));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes and quotes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one table cell as a JSON value: a number when it parses as one, else a string.
///
/// Numbers are re-rendered from the parsed value (not echoed verbatim) so spellings Rust
/// accepts but JSON does not — `inf`, `nan`, `5.`, `+1` — can never leak into the output.
fn json_cell(cell: &str) -> String {
    match cell.trim().parse::<f64>() {
        Ok(n) if n.is_finite() => {
            if n == n.trunc() && n.abs() < 1e15 {
                format!("{}", n as i64)
            } else {
                format!("{n}")
            }
        }
        _ => json_string(cell),
    }
}

/// A parsed JSON value (the subset of JSON this workspace emits: no `\u` surrogate pairs
/// beyond the BMP are reconstructed, numbers are `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order is not preserved).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, numbers, booleans, null).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through verbatim).
                let tail = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = tail.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths from header and contents.
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{:>width$}", cell, width = widths[i]));
            }
            writeln!(f, "{}", parts.join("  "))
        };
        render_row(f, &self.header)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration in seconds with sensible precision for experiment tables.
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.6}", seconds)
    } else if seconds < 1.0 {
        format!("{:.4}", seconds)
    } else {
        format!("{:.3}", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = Table::new("Fig. X", &["dataset", "time(s)"]);
        t.push_row(vec!["EP".into(), "0.123".into()]);
        t.push_row(vec!["TW".into(), "10.5".into()]);
        let text = t.to_string();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("dataset"));
        assert!(text.contains("EP"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Fig. X");
        assert_eq!(t.rows()[1][1], "10.5");
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn seconds_formatting_adapts_precision() {
        assert_eq!(fmt_seconds(0.0000123), "0.000012");
        assert_eq!(fmt_seconds(0.1234), "0.1234");
        assert_eq!(fmt_seconds(12.3456), "12.346");
    }

    #[test]
    fn json_rendering_types_cells() {
        let mut t = Table::new("Quote \"me\"", &["dataset", "qps", "note"]);
        t.push_row(vec!["EP".into(), "123.5".into(), "2.1x".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"title\":\"Quote \\\"me\\\"\",\"rows\":[{\"dataset\":\"EP\",\"qps\":123.5,\"note\":\"2.1x\"}]}"
        );
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut t = Table::new("rt", &["a", "b"]);
        t.push_row(vec!["x".into(), "1".into()]);
        t.push_row(vec!["y".into(), "-2.5e3".into()]);
        let parsed = parse_json(&t.to_json()).unwrap();
        assert_eq!(parsed.get("title").and_then(Json::as_str), Some("rt"));
        let rows = parsed.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(rows[0].get("b").and_then(Json::as_f64), Some(1.0));
        assert_eq!(rows[1].get("b").and_then(Json::as_f64), Some(-2500.0));
    }

    #[test]
    fn parser_handles_the_full_value_zoo() {
        let parsed = parse_json(
            "  {\"s\": \"a\\n\\\"b\\u0041\", \"n\": -1.5e-2, \"t\": true, \"f\": false,
                \"z\": null, \"arr\": [1, [], {}], \"o\": {\"k\": 2}} ",
        )
        .unwrap();
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some("a\n\"bA"));
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(-0.015));
        assert_eq!(parsed.get("t"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("f"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("z"), Some(&Json::Null));
        assert_eq!(parsed.get("arr").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(
            parsed
                .get("o")
                .and_then(|o| o.get("k"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        // Non-values are rejected, not mangled.
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("true false").is_err());
        assert!(parse_json("\"open").is_err());
    }
}
