//! Experiment driver: regenerates every table and figure of the paper's evaluation.
//!
//! ```bash
//! # run everything with the default (laptop-friendly) configuration
//! cargo run -p hcsp-bench --bin experiments --release -- all
//!
//! # a single experiment, a subset of datasets, a bigger scale
//! cargo run -p hcsp-bench --bin experiments --release -- exp1 --datasets EP,SL --scale small
//! ```
//!
//! Experiments: `table1`, `fig3c`, `exp1` … `exp7`, `ablation-order`, `ablation-cluster`,
//! `all`. Options: `--scale tiny|small|medium|large`, `--datasets A,B,...`,
//! `--queries N`, `--kmin K`, `--kmax K` (the same knobs are also available through the
//! `HCSP_BENCH_*` environment variables).

use hcsp_bench::harness;
use hcsp_bench::BenchConfig;
use hcsp_workload::{Dataset, DatasetScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let (experiments, config) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            std::process::exit(2);
        }
    };

    println!(
        "# configuration: scale={:?} datasets={:?} queries={} k={}..{}\n",
        config.scale,
        config
            .datasets
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        config.query_set_size,
        config.k_min,
        config.k_max
    );

    for experiment in &experiments {
        run_experiment(experiment, &config);
    }
}

fn run_experiment(experiment: &str, config: &BenchConfig) {
    let start = std::time::Instant::now();
    match experiment {
        "table1" => println!("{}", harness::table1(config)),
        "fig3c" => println!("{}", harness::fig3c_materialization(config)),
        "exp1" => println!(
            "{}",
            harness::exp1_vary_similarity(config, &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9])
        ),
        "exp2" => {
            let base = config.query_set_size.max(20);
            let sizes: Vec<usize> = (1..=5).map(|i| base * i).collect();
            println!("{}", harness::exp2_vary_query_set_size(config, &sizes));
        }
        "exp3" => println!("{}", harness::exp3_decomposition(config)),
        "exp4" => println!(
            "{}",
            harness::exp4_vary_gamma(config, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
        ),
        "exp5" => println!(
            "{}",
            harness::exp5_scalability(config, &[0.2, 0.4, 0.6, 0.8, 1.0])
        ),
        "exp6" => println!("{}", harness::exp6_ksp_comparison(config)),
        "exp7" => println!("{}", harness::exp7_path_counts(config, &[3, 4, 5, 6, 7])),
        "ablation-order" => println!("{}", harness::ablation_search_order(config)),
        "ablation-cluster" => println!("{}", harness::ablation_clustering(config)),
        other => {
            eprintln!("error: unknown experiment {other:?}");
            print_usage();
            std::process::exit(2);
        }
    }
    println!(
        "# {experiment} finished in {:.1}s\n",
        start.elapsed().as_secs_f64()
    );
}

fn parse(args: &[String]) -> Result<(Vec<String>, BenchConfig), String> {
    let mut config = BenchConfig::full();
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} expects a value"))
        };
        match arg.as_str() {
            "--scale" => {
                config.scale = match take_value(&mut i)?.to_ascii_lowercase().as_str() {
                    "tiny" => DatasetScale::Tiny,
                    "small" => DatasetScale::Small,
                    "medium" => DatasetScale::Medium,
                    "large" => DatasetScale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--datasets" => {
                let list = take_value(&mut i)?;
                let datasets: Result<Vec<Dataset>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                config.datasets = datasets?;
            }
            "--queries" => {
                config.query_set_size = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--queries expects a number".to_string())?;
            }
            "--kmin" => {
                config.k_min = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--kmin expects a number".to_string())?;
            }
            "--kmax" => {
                config.k_max = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--kmax expects a number".to_string())?;
            }
            "all" => {
                experiments = vec![
                    "table1",
                    "fig3c",
                    "exp1",
                    "exp2",
                    "exp3",
                    "exp4",
                    "exp5",
                    "exp6",
                    "exp7",
                    "ablation-order",
                    "ablation-cluster",
                ]
                .into_iter()
                .map(String::from)
                .collect();
            }
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("table1".to_string());
    }
    config.k_max = config.k_max.max(config.k_min);
    Ok((experiments, config))
}

fn print_usage() {
    println!(
        "usage: experiments [EXPERIMENT ...] [--scale tiny|small|medium|large] \
         [--datasets EP,SL,...] [--queries N] [--kmin K] [--kmax K]\n\
         experiments: table1 fig3c exp1 exp2 exp3 exp4 exp5 exp6 exp7 \
         ablation-order ablation-cluster all"
    );
}
