//! Experiment driver: regenerates every table and figure of the paper's evaluation.
//!
//! ```bash
//! # run everything with the default (laptop-friendly) configuration
//! cargo run -p hcsp-bench --bin experiments --release -- all
//!
//! # a single experiment, a subset of datasets, a bigger scale
//! cargo run -p hcsp-bench --bin experiments --release -- exp1 --datasets EP,SL --scale small
//!
//! # machine-readable output (one JSON document per experiment)
//! cargo run -p hcsp-bench --bin experiments --release -- exp3 --json
//!
//! # the CI perf gate: quick parallel-scaling run, JSON artifact, baseline comparison
//! cargo run -p hcsp-bench --bin experiments --release -- perf-smoke
//! cargo run -p hcsp-bench --bin experiments --release -- perf-smoke --write-baseline
//! ```
//!
//! Experiments: `table1`, `fig3c`, `exp1` … `exp7`, `ablation-order`, `ablation-cluster`,
//! `parallel-scaling`, `frontier` (recursive vs frontier expansion engine), `mixed-rw`,
//! `result-modes`, `storage`, `server-latency` (drives a
//! live TCP server with the load generator and writes `BENCH_server_latency.json`),
//! `all`, plus the `perf-smoke` gate (parallel scaling, mixed read/write **and** the
//! frontier engine comparison, each against its committed baseline).
//! Options: `--scale
//! tiny|small|medium|large`, `--datasets A,B,...`, `--queries N`, `--kmin K`, `--kmax K`,
//! `--json`, `--threads 1,2,4`, `--batches 8,32`, `--out FILE`, `--baseline FILE`,
//! `--tolerance 0.2`, `--write-baseline` (the same scale/dataset/query knobs are also
//! available through the `HCSP_BENCH_*` environment variables, and the gate tolerance
//! through `HCSP_PERF_TOLERANCE`).

// Stdout is the product here: this binary exists to print result tables.
#![allow(clippy::print_stdout)]

use hcsp_bench::report::Table;
use hcsp_bench::{compare_throughput, harness, parse_json, BenchConfig};
use hcsp_workload::{Dataset, DatasetScale};

/// Output and perf-gate options on top of the workload configuration.
struct CliOptions {
    json: bool,
    threads: Vec<usize>,
    batches: Vec<usize>,
    repeats: usize,
    out: String,
    baseline: String,
    tolerance: f64,
    write_baseline: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            json: false,
            threads: vec![1, 2, 4],
            // Batches big enough that a point measures tens of milliseconds: the 20 %
            // regression gate needs headroom above scheduler jitter.
            batches: vec![64, 256],
            repeats: 3,
            out: "BENCH_parallel_scaling.json".to_string(),
            baseline: "bench/baseline.json".to_string(),
            tolerance: std::env::var("HCSP_PERF_TOLERANCE")
                .ok()
                .and_then(|t| t.parse().ok())
                .unwrap_or(0.2),
            write_baseline: false,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let (experiments, config, options, workload_flags) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            std::process::exit(2);
        }
    };

    if experiments.iter().any(|e| e == "perf-smoke") {
        // The gate runs standalone on the quick configuration (env overrides still
        // apply) so its numbers stay comparable to the committed baseline; mixing it
        // with other experiments or with workload flags would silently produce numbers
        // that are not comparable, so both are rejected up front.
        if experiments.len() > 1 {
            eprintln!(
                "error: perf-smoke runs standalone (requested alongside: {})",
                experiments
                    .iter()
                    .filter(|e| *e != "perf-smoke")
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
        if !workload_flags.is_empty() {
            eprintln!(
                "error: perf-smoke ignores workload flags ({}); it always uses the quick \
                 configuration (override via HCSP_BENCH_* environment variables so the \
                 baseline stays comparable)",
                workload_flags.join(", ")
            );
            std::process::exit(2);
        }
        run_perf_smoke(&options);
        return;
    }

    println!(
        "# configuration: scale={:?} datasets={:?} queries={} k={}..{}\n",
        config.scale,
        config
            .datasets
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        config.query_set_size,
        config.k_min,
        config.k_max
    );

    for experiment in &experiments {
        run_experiment(experiment, &config, &options);
    }
}

/// Prints a finished table as fixed-width text or as one JSON document.
fn emit(table: &Table, options: &CliOptions) {
    if options.json {
        println!("{}", table.to_json());
    } else {
        println!("{table}");
    }
}

fn run_experiment(experiment: &str, config: &BenchConfig, options: &CliOptions) {
    let start = std::time::Instant::now();
    let table = match experiment {
        "table1" => harness::table1(config),
        "fig3c" => harness::fig3c_materialization(config),
        "exp1" => harness::exp1_vary_similarity(config, &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9]),
        "exp2" => {
            let base = config.query_set_size.max(20);
            let sizes: Vec<usize> = (1..=5).map(|i| base * i).collect();
            harness::exp2_vary_query_set_size(config, &sizes)
        }
        "exp3" => harness::exp3_decomposition(config),
        "exp4" => {
            harness::exp4_vary_gamma(config, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
        }
        "exp5" => harness::exp5_scalability(config, &[0.2, 0.4, 0.6, 0.8, 1.0]),
        "exp6" => harness::exp6_ksp_comparison(config),
        "exp7" => harness::exp7_path_counts(config, &[3, 4, 5, 6, 7]),
        "ablation-order" => harness::ablation_search_order(config),
        "ablation-cluster" => harness::ablation_clustering(config),
        "parallel-scaling" => {
            harness::parallel_scaling(config, &options.threads, &options.batches, options.repeats)
        }
        "frontier" => harness::frontier_comparison(config, options.repeats),
        "mixed-rw" => harness::mixed_read_write(config),
        "result-modes" => harness::result_modes(config),
        "storage" => harness::storage_durability(config),
        "counters" => harness::instrumentation_counters(config),
        "server-latency" => {
            let table = harness::server_latency(config);
            let document = format!(
                "{{\"bench\":\"server_latency\",\"schema_version\":1,{}",
                &table.to_json()[1..]
            );
            write_or_die("BENCH_server_latency.json", &document);
            table
        }
        other => {
            eprintln!("error: unknown experiment {other:?}");
            print_usage();
            std::process::exit(2);
        }
    };
    emit(&table, options);
    if !options.json {
        println!(
            "# {experiment} finished in {:.1}s\n",
            start.elapsed().as_secs_f64()
        );
    }
}

/// Wraps a scaling table into the `BENCH_parallel_scaling.json` document.
fn scaling_document(table: &Table) -> String {
    let table_json = table.to_json();
    // `to_json` renders `{"title":...}`; prepend the bench identity to the same object.
    format!(
        "{{\"bench\":\"parallel_scaling\",\"schema_version\":1,{}",
        &table_json[1..]
    )
}

/// Committed baseline of the mixed read/write scenario (gated alongside parallel
/// scaling; regenerate with `perf-smoke --write-baseline`).
const MIXED_BASELINE: &str = "bench/baseline_mixed_rw.json";

/// Committed baseline of the frontier-vs-recursive engine comparison (gated alongside
/// the other perf-smoke scenarios; regenerate with `perf-smoke --write-baseline`).
const FRONTIER_BASELINE: &str = "bench/baseline_frontier.json";

/// The CI perf gate: quick scaling + mixed read/write runs → JSON artifacts → baseline
/// comparisons. Both scenarios gate with the same tolerance semantics; a scenario with
/// no committed baseline is skipped (with a note) rather than failed.
fn run_perf_smoke(options: &CliOptions) {
    let config = BenchConfig::quick();
    println!(
        "# perf-smoke: scale={:?} datasets={:?} threads={:?} batches={:?}",
        config.scale,
        config
            .datasets
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        options.threads,
        options.batches
    );
    let table =
        harness::parallel_scaling(&config, &options.threads, &options.batches, options.repeats);
    emit(&table, options);
    let document = scaling_document(&table);
    write_or_die(&options.out, &document);

    let mixed = harness::mixed_read_write(&config);
    let mixed_document = format!(
        "{{\"bench\":\"mixed_read_write\",\"schema_version\":1,{}",
        &mixed.to_json()[1..]
    );
    let mixed_out = "BENCH_mixed_rw.json";
    write_or_die(mixed_out, &mixed_document);

    let frontier = harness::frontier_comparison(&config, options.repeats);
    let frontier_document = format!(
        "{{\"bench\":\"frontier\",\"schema_version\":1,{}",
        &frontier.to_json()[1..]
    );
    let frontier_out = "BENCH_frontier.json";
    write_or_die(frontier_out, &frontier_document);

    // Report-only epoch counters from a live service run over the delete-heavy mix:
    // proof the snapshot machinery is exercised (not a gated number).
    let epoch_stats = harness::service_epoch_counters(&config);
    println!(
        "# epoch counters: epochs_published={} batches_pinned_behind={} rebfs_avoided={}",
        epoch_stats.epochs_published, epoch_stats.batches_pinned_behind, epoch_stats.rebfs_avoided
    );

    if options.write_baseline {
        write_baseline_or_die(&options.baseline, &document);
        write_baseline_or_die(MIXED_BASELINE, &mixed_document);
        write_baseline_or_die(FRONTIER_BASELINE, &frontier_document);
        return;
    }

    let scaling_ok = gate_against(
        "parallel-scaling",
        &options.baseline,
        &document,
        options.tolerance,
    );
    let mixed_ok = gate_against(
        "mixed-rw",
        MIXED_BASELINE,
        &mixed_document,
        options.tolerance,
    );
    let frontier_ok = gate_against(
        "frontier",
        FRONTIER_BASELINE,
        &frontier_document,
        options.tolerance,
    );
    if !(scaling_ok && mixed_ok && frontier_ok) {
        std::process::exit(1);
    }
}

fn write_or_die(path: &str, document: &str) {
    if let Err(e) = std::fs::write(path, document) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");
}

fn write_baseline_or_die(path: &str, document: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, document) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote baseline {path}");
}

/// Gates `document` against the baseline at `baseline_path`. Returns `false` on a
/// failed gate; a missing baseline skips (and passes) with a note.
fn gate_against(name: &str, baseline_path: &str, document: &str, tolerance: f64) -> bool {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(_) => {
            println!(
                "# no baseline at {baseline_path} — {name} gate skipped (run with \
                 --write-baseline to create one)"
            );
            return true;
        }
    };
    let outcome = parse_json(&baseline_text)
        .and_then(|baseline| {
            parse_json(document)
                .and_then(|current| compare_throughput(&baseline, &current, tolerance))
        })
        .unwrap_or_else(|e| {
            eprintln!("error: {name} perf comparison failed: {e}");
            std::process::exit(1);
        });
    println!(
        "# {name} gate: {} points compared ({} missing from baseline), geomean throughput \
         ratio {:.3}, tolerance {:.0}%",
        outcome.compared,
        outcome.missing_in_baseline,
        outcome.geomean_ratio,
        tolerance * 100.0
    );
    for warning in &outcome.warnings {
        println!("#   warning (not failing): {warning}");
    }
    if outcome.passed() {
        println!("# {name} gate PASSED");
        true
    } else {
        eprintln!("# {name} gate FAILED: throughput regressed beyond tolerance");
        for regression in &outcome.regressions {
            eprintln!("#   {regression}");
        }
        false
    }
}

/// Parse result: experiments, workload config, output/gate options, and which workload
/// flags were explicitly passed (perf-smoke rejects those — it pins the quick config).
type Parsed = (Vec<String>, BenchConfig, CliOptions, Vec<&'static str>);

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut config = BenchConfig::full();
    let mut options = CliOptions::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut workload_flags: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} expects a value"))
        };
        match arg.as_str() {
            "--scale" => {
                workload_flags.push("--scale");
                config.scale = match take_value(&mut i)?.to_ascii_lowercase().as_str() {
                    "tiny" => DatasetScale::Tiny,
                    "small" => DatasetScale::Small,
                    "medium" => DatasetScale::Medium,
                    "large" => DatasetScale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--datasets" => {
                workload_flags.push("--datasets");
                let list = take_value(&mut i)?;
                let datasets: Result<Vec<Dataset>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                config.datasets = datasets?;
            }
            "--queries" => {
                workload_flags.push("--queries");
                config.query_set_size = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--queries expects a number".to_string())?;
            }
            "--kmin" => {
                workload_flags.push("--kmin");
                config.k_min = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--kmin expects a number".to_string())?;
            }
            "--kmax" => {
                workload_flags.push("--kmax");
                config.k_max = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--kmax expects a number".to_string())?;
            }
            "--json" => options.json = true,
            "--threads" => {
                options.threads = parse_usize_list(&take_value(&mut i)?, "--threads")?;
            }
            "--batches" => {
                options.batches = parse_usize_list(&take_value(&mut i)?, "--batches")?;
            }
            "--repeats" => {
                options.repeats = take_value(&mut i)?
                    .parse::<usize>()
                    .map_err(|_| "--repeats expects a number".to_string())?
                    .max(1);
            }
            "--out" => options.out = take_value(&mut i)?,
            "--baseline" => options.baseline = take_value(&mut i)?,
            "--tolerance" => {
                options.tolerance = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "--tolerance expects a number in [0, 1]".to_string())?;
            }
            "--write-baseline" => options.write_baseline = true,
            "all" => {
                experiments = vec![
                    "table1",
                    "fig3c",
                    "exp1",
                    "exp2",
                    "exp3",
                    "exp4",
                    "exp5",
                    "exp6",
                    "exp7",
                    "ablation-order",
                    "ablation-cluster",
                    "parallel-scaling",
                    "frontier",
                    "mixed-rw",
                    "result-modes",
                    "storage",
                    "counters",
                    "server-latency",
                ]
                .into_iter()
                .map(String::from)
                .collect();
            }
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("table1".to_string());
    }
    config.k_max = config.k_max.max(config.k_min);
    Ok((experiments, config, options, workload_flags))
}

fn parse_usize_list(list: &str, flag: &str) -> Result<Vec<usize>, String> {
    let parsed: Result<Vec<usize>, _> = list.split(',').map(|s| s.trim().parse()).collect();
    match parsed {
        Ok(values) if !values.is_empty() => Ok(values),
        _ => Err(format!("{flag} expects a comma-separated list of numbers")),
    }
}

fn print_usage() {
    println!(
        "usage: experiments [EXPERIMENT ...] [--scale tiny|small|medium|large] \
         [--datasets EP,SL,...] [--queries N] [--kmin K] [--kmax K] [--json] \
         [--threads 1,2,4] [--batches 64,256] [--repeats N] [--out FILE] [--baseline FILE] \
         [--tolerance 0.2] [--write-baseline]\n\
         experiments: table1 fig3c exp1 exp2 exp3 exp4 exp5 exp6 exp7 \
         ablation-order ablation-cluster parallel-scaling frontier mixed-rw result-modes \
         storage counters server-latency perf-smoke all\n\
         perf-smoke: runs parallel-scaling, mixed-rw and frontier in quick mode, writes \
         the JSON artifacts (--out, BENCH_mixed_rw.json and BENCH_frontier.json) and \
         fails when any scenario's throughput regresses more than --tolerance against \
         its committed baseline (--baseline, bench/baseline_mixed_rw.json and \
         bench/baseline_frontier.json); --write-baseline (re)creates all baselines \
         instead"
    );
}
