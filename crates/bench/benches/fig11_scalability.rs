//! Fig. 11 (Exp-5): scalability over sampled subgraphs of the largest analog (Twitter-like).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::Algorithm;
use hcsp_graph::sampling::sample_vertices;
use hcsp_workload::{random_query_set, Dataset};

fn bench_scalability(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let graph = Dataset::TW.build(config.scale);
    let mut group = c.benchmark_group("fig11/TW");
    for ratio in [0.2, 0.6, 1.0] {
        let sampled = sample_vertices(&graph, ratio, config.seed).expect("valid ratio");
        let queries = random_query_set(&sampled.graph, config.query_spec());
        if queries.is_empty() {
            continue;
        }
        for algorithm in [Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm}"), format!("{:.0}%", ratio * 100.0)),
                &(&sampled.graph, &queries),
                |b, (graph, queries)| {
                    b.iter(|| time_algorithm(graph, queries, algorithm, 0.5));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scalability
}
criterion_main!(benches);
