//! Fig. 9 (Exp-3): time decomposition of BatchEnum+.
//!
//! Benchmarks each stage of the pipeline in isolation (index construction, clustering,
//! common HC-s path query detection) alongside the full run, so the relative stage costs
//! the paper reports can be checked directly from the Criterion output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::BenchConfig;
use hcsp_core::clustering::cluster_queries;
use hcsp_core::detection::detect_cluster;
use hcsp_core::query::BatchSummary;
use hcsp_core::sharing_graph::SharingGraph;
use hcsp_core::similarity::{QueryNeighborhood, SimilarityMatrix};
use hcsp_core::{Algorithm, BatchEngine, CountSink, PathQuery};
use hcsp_index::BatchIndex;
use hcsp_workload::random_query_set;

fn bench_stage_decomposition(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let queries = random_query_set(&graph, config.query_spec());
    if queries.is_empty() {
        return;
    }
    let summary = BatchSummary::of(&queries);
    let mut group = c.benchmark_group(format!("fig09/{dataset}"));

    group.bench_function(BenchmarkId::new("stage", "BuildIndex"), |b| {
        b.iter(|| {
            BatchIndex::build(
                &graph,
                &summary.sources,
                &summary.targets,
                summary.max_hop_limit,
            )
        });
    });

    let index = BatchIndex::build(
        &graph,
        &summary.sources,
        &summary.targets,
        summary.max_hop_limit,
    );
    group.bench_function(BenchmarkId::new("stage", "ClusterQuery"), |b| {
        b.iter(|| {
            let neighborhoods: Vec<QueryNeighborhood> = queries
                .iter()
                .map(|q| QueryNeighborhood::from_index(&index, q))
                .collect();
            let matrix = SimilarityMatrix::compute(&neighborhoods);
            cluster_queries(&matrix, 0.5)
        });
    });

    let neighborhoods: Vec<QueryNeighborhood> = queries
        .iter()
        .map(|q| QueryNeighborhood::from_index(&index, q))
        .collect();
    let matrix = SimilarityMatrix::compute(&neighborhoods);
    let clusters = cluster_queries(&matrix, 0.5);
    group.bench_function(BenchmarkId::new("stage", "IdentifySubquery"), |b| {
        b.iter(|| {
            let mut total_nodes = 0usize;
            for cluster in &clusters {
                let cluster_queries_list: Vec<(usize, PathQuery)> =
                    cluster.iter().map(|&qid| (qid, queries[qid])).collect();
                let mut sharing = SharingGraph::new();
                detect_cluster(&graph, &index, &cluster_queries_list, &mut sharing);
                total_nodes += sharing.len();
            }
            total_nodes
        });
    });

    group.bench_function(BenchmarkId::new("stage", "FullRun"), |b| {
        b.iter(|| {
            let mut sink = CountSink::new(queries.len());
            BatchEngine::with_algorithm(Algorithm::BatchEnumPlus)
                .run_with_sink(&graph, &queries, &mut sink);
            sink.total()
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stage_decomposition
}
criterion_main!(benches);
