//! Fig. 7 (Exp-1): processing time when varying the query-set similarity.
//!
//! The key claim: as the constructed similarity grows, `BatchEnum(+)` pulls away from
//! `BasicEnum(+)` (ideally towards the 1/(1−µ) speed-up limit), while at zero similarity
//! the overhead of sharing stays negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::Algorithm;
use hcsp_workload::similar_query_set;

fn bench_similarity_sweep(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let mut group = c.benchmark_group(format!("fig07/{dataset}"));
    for similarity in [0.0, 0.4, 0.8] {
        let queries = similar_query_set(&graph, config.query_spec(), similarity);
        if queries.is_empty() {
            continue;
        }
        for algorithm in [Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm}"), format!("sim={similarity:.1}")),
                &(&graph, &queries),
                |b, (graph, queries)| {
                    b.iter(|| time_algorithm(graph, queries, algorithm, 0.5));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_similarity_sweep
}
criterion_main!(benches);
