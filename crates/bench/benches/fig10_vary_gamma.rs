//! Fig. 10 (Exp-4): impact of the clustering threshold γ on BatchEnum+.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::Algorithm;
use hcsp_workload::similar_query_set;

fn bench_gamma_sweep(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let queries = similar_query_set(&graph, config.query_spec(), 0.5);
    if queries.is_empty() {
        return;
    }
    let mut group = c.benchmark_group(format!("fig10/{dataset}"));
    for gamma in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gamma={gamma:.1}")),
            &gamma,
            |b, &gamma| {
                b.iter(|| time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, gamma));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gamma_sweep
}
criterion_main!(benches);
