//! Fig. 13 (Exp-7): enumeration cost (and result count) as the hop constraint k grows.
//!
//! The paper reports the average number of HC-s-t paths per query for k ∈ [3, 7]; the
//! benchmark measures the enumeration time of the same sweep (the count itself is printed
//! by `experiments exp7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::Algorithm;
use hcsp_workload::{random_query_set, QuerySetSpec};

fn bench_path_count_sweep(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let mut group = c.benchmark_group(format!("fig13/{dataset}"));
    for k in [3u32, 4, 5] {
        let spec = QuerySetSpec::new(10, config.seed.wrapping_add(k as u64)).with_hops(k, k);
        let queries = random_query_set(&graph, spec);
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}")),
            &queries,
            |b, queries| {
                b.iter(|| time_algorithm(&graph, queries, Algorithm::BatchEnumPlus, 0.5));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_path_count_sweep
}
criterion_main!(benches);
