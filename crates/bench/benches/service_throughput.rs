//! Service-mode throughput: micro-batching policies vs per-query serving.
//!
//! The offline figures (`fig07`–`fig13`) hand a pre-assembled batch to the algorithms;
//! this bench measures the *serving* scenario the ROADMAP targets: queries stream into a
//! long-lived `PathService` one at a time, the admission policy forms micro-batches, and
//! the whole stream is timed end to end (submit → every result delivered). Three policies
//! bracket the design space:
//!
//! * `per_query` — deadline 0, the PathEnum-style real-time regime (no sharing),
//! * `window` — a small size cap + deadline window (the serving sweet spot),
//! * `one_batch` — the whole stream in a single batch (the offline regime, upper bound on
//!   sharing).
//!
//! The report also prints each policy's measured sharing ratio and mean batch size once,
//! so throughput differences can be attributed to batch formation rather than noise.

// Stdout is this bench's report channel: criterion harnesses print their summaries.
#![allow(clippy::print_stdout)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::BenchConfig;
use hcsp_core::PathQuery;
use hcsp_graph::DiGraph;
use hcsp_service::{BatchPolicy, PathService};
use hcsp_workload::similar_query_set;
use std::sync::Arc;
use std::time::Duration;

fn policies(num_queries: usize) -> Vec<(&'static str, BatchPolicy)> {
    vec![
        ("per_query", BatchPolicy::immediate()),
        ("window", BatchPolicy::by_size(16, Duration::from_millis(2))),
        (
            "one_batch",
            BatchPolicy::by_size(num_queries.max(1), Duration::from_millis(50)),
        ),
    ]
}

/// Serves the whole query stream through a fresh service and waits for every result.
fn serve_stream(graph: &Arc<DiGraph>, queries: &[PathQuery], policy: BatchPolicy) -> u64 {
    let service = PathService::builder()
        .policy(policy)
        .start(Arc::clone(graph))
        .expect("an ephemeral service start cannot fail");
    let handles = service.submit_all(queries.iter().copied());
    let total: u64 = handles
        .into_iter()
        .map(|h| h.wait().paths.len() as u64)
        .sum();
    service.shutdown();
    total
}

fn bench_service_throughput(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = Arc::new(dataset.build(config.scale));
    // A similarity-heavy stream: the regime where batch formation pays.
    let queries = similar_query_set(&graph, config.query_spec(), 0.6);
    if queries.is_empty() {
        return;
    }

    // One descriptive pass outside the timer: policy -> formed batches + sharing.
    for (name, policy) in policies(queries.len()) {
        let service = PathService::builder()
            .policy(policy)
            .start(Arc::clone(&graph))
            .expect("an ephemeral service start cannot fail");
        let handles = service.submit_all(queries.iter().copied());
        for h in handles {
            h.wait();
        }
        let stats = service.shutdown();
        println!(
            "service_throughput/{dataset}/{name}: batches={} mean_batch_size={:.1} \
             sharing_ratio={:.2} mean_queue_wait={:?}",
            stats.num_batches,
            stats.mean_batch_size(),
            stats.sharing_ratio(),
            stats.mean_queue_wait(),
        );
    }

    let mut group = c.benchmark_group(format!("service_throughput/{dataset}"));
    for (name, policy) in policies(queries.len()) {
        group.bench_function(BenchmarkId::new("policy", name), |b| {
            b.iter(|| serve_stream(&graph, &queries, policy));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
