//! Table I: analog dataset generation and statistics.
//!
//! Benchmarks how long each analog dataset takes to generate and to characterise; the
//! `experiments table1` binary prints the actual Table I rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::BenchConfig;
use hcsp_graph::GraphStats;

fn bench_datasets(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let mut group = c.benchmark_group("table1/generate_and_stats");
    for &dataset in &config.datasets {
        group.bench_with_input(BenchmarkId::from_parameter(dataset), &dataset, |b, &d| {
            b.iter(|| {
                let graph = d.build(config.scale);
                GraphStats::compute(&graph)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_datasets
}
criterion_main!(benches);
