//! Fig. 3 (c): enumeration from scratch vs retrieving/scanning materialised results.
//!
//! The paper observes a gap of roughly three orders of magnitude between the two, which is
//! the motivation for sharing materialised HC-s path results across queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::BenchConfig;
use hcsp_core::materialize::materialize_batch;
use hcsp_core::SearchOrder;
use hcsp_workload::random_query_set;

fn bench_materialization_gap(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let mut group = c.benchmark_group("fig03c");
    for &dataset in &config.datasets {
        let graph = dataset.build(config.scale);
        let queries = random_query_set(&graph, config.query_spec());
        if queries.is_empty() {
            continue;
        }
        // Side 1: enumerate (and materialise) the batch from scratch.
        group.bench_with_input(
            BenchmarkId::new("enumerate", dataset),
            &(&graph, &queries),
            |b, (graph, queries)| {
                b.iter(|| materialize_batch(graph, queries, SearchOrder::DistanceThenDegree));
            },
        );
        // Side 2: retrieve + scan already-materialised results.
        let (materialized, _) =
            materialize_batch(&graph, &queries, SearchOrder::DistanceThenDegree);
        group.bench_with_input(
            BenchmarkId::new("scan_materialized", dataset),
            &materialized,
            |b, materialized| {
                b.iter(|| materialized.scan_all());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_materialization_gap
}
criterion_main!(benches);
