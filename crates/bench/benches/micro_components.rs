//! Component micro-benchmarks: the building blocks whose costs the design decisions in
//! DESIGN.md reason about (multi-source BFS vs repeated single-source BFS, the ⊕ join,
//! similarity matrix construction, clustering, and the path arena).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::BenchConfig;
use hcsp_core::clustering::cluster_queries;
use hcsp_core::concat::concatenate;
use hcsp_core::query::BatchSummary;
use hcsp_core::similarity::{QueryNeighborhood, SimilarityMatrix};
use hcsp_core::{PathQuery, PathSet};
use hcsp_graph::traversal::bfs_distances_bounded;
use hcsp_graph::{Direction, VertexId};
use hcsp_index::{multi_source_bfs, BatchIndex};
use hcsp_workload::random_query_set;

fn bench_components(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let queries = random_query_set(&graph, config.query_spec());
    if queries.is_empty() {
        return;
    }
    let summary = BatchSummary::of(&queries);

    // Index construction: bit-parallel MS-BFS vs one BFS per root.
    let mut group = c.benchmark_group("micro/index");
    group.bench_function(BenchmarkId::new("msbfs", "batched"), |b| {
        b.iter(|| {
            multi_source_bfs(
                &graph,
                &summary.sources,
                Direction::Forward,
                summary.max_hop_limit,
            )
        });
    });
    group.bench_function(BenchmarkId::new("msbfs", "one_bfs_per_root"), |b| {
        b.iter(|| {
            summary
                .sources
                .iter()
                .map(|&s| {
                    bfs_distances_bounded(&graph, s, Direction::Forward, summary.max_hop_limit)
                        .len()
                })
                .sum::<usize>()
        });
    });
    group.finish();

    // Similarity matrix + clustering.
    let index = BatchIndex::build(
        &graph,
        &summary.sources,
        &summary.targets,
        summary.max_hop_limit,
    );
    let neighborhoods: Vec<QueryNeighborhood> = queries
        .iter()
        .map(|q| QueryNeighborhood::from_index(&index, q))
        .collect();
    let mut group = c.benchmark_group("micro/clustering");
    group.bench_function("similarity_matrix", |b| {
        b.iter(|| SimilarityMatrix::compute(&neighborhoods));
    });
    let matrix = SimilarityMatrix::compute(&neighborhoods);
    group.bench_function("cluster_queries", |b| {
        b.iter(|| cluster_queries(&matrix, 0.5));
    });
    group.finish();

    // The ⊕ join on synthetic prefix sets.
    let mut forward = PathSet::new();
    let mut backward = PathSet::new();
    for i in 0..300u32 {
        forward.push_slice(&[VertexId(0), VertexId(1000 + i), VertexId(i % 50)]);
        backward.push_slice(&[VertexId(1), VertexId(2000 + i), VertexId(i % 50)]);
    }
    let mut group = c.benchmark_group("micro/join");
    group.bench_function("concatenate_300x300", |b| {
        b.iter(|| concatenate(&forward, &backward, 6));
    });
    group.finish();

    // Path arena throughput.
    let mut group = c.benchmark_group("micro/pathset");
    group.bench_function("push_10k_paths", |b| {
        let path: Vec<VertexId> = (0..6).map(VertexId).collect();
        b.iter(|| {
            let mut set = PathSet::with_capacity(10_000, 6);
            for _ in 0..10_000 {
                set.push_slice(&path);
            }
            set.len()
        });
    });
    group.finish();

    // Keep the query type in use so the workload generation cost is visible too.
    let mut group = c.benchmark_group("micro/workload");
    group.bench_function("random_query_set", |b| {
        b.iter(|| random_query_set(&graph, config.query_spec()).len());
    });
    let _: Vec<PathQuery> = queries;
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_components
}
criterion_main!(benches);
