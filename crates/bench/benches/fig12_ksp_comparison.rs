//! Fig. 12 (Exp-6): comparison with the adapted k-shortest-path algorithms DkSP and
//! OnePass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_baselines::{DkSp, KspEnumerator, OnePass};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::{Algorithm, CountSink};
use hcsp_workload::{random_query_set, QuerySetSpec};

fn bench_ksp_comparison(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    // Small batch (the KSP comparators are orders of magnitude slower) with the paper's
    // k ∈ [3, 7] range clamped to the configured maximum.
    let spec = QuerySetSpec::new(10, config.seed).with_hops(3, config.k_max);
    let queries = random_query_set(&graph, spec);
    if queries.is_empty() {
        return;
    }
    let mut group = c.benchmark_group(format!("fig12/{dataset}"));

    group.bench_function(BenchmarkId::new("algorithm", "DkSP"), |b| {
        b.iter(|| {
            let mut sink = CountSink::new(queries.len());
            DkSp::default().run_batch(&graph, &queries, &mut sink);
            sink.total()
        });
    });
    group.bench_function(BenchmarkId::new("algorithm", "OnePass"), |b| {
        b.iter(|| {
            let mut sink = CountSink::new(queries.len());
            OnePass::default().run_batch(&graph, &queries, &mut sink);
            sink.total()
        });
    });
    group.bench_function(BenchmarkId::new("algorithm", "BatchEnum+"), |b| {
        b.iter(|| time_algorithm(&graph, &queries, Algorithm::BatchEnumPlus, 0.5));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ksp_comparison
}
criterion_main!(benches);
