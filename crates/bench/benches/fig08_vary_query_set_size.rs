//! Fig. 8 (Exp-2): processing time when varying the query-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcsp_bench::harness::time_algorithm;
use hcsp_bench::BenchConfig;
use hcsp_core::Algorithm;
use hcsp_workload::random_query_set;

fn bench_query_set_size_sweep(c: &mut Criterion) {
    let config = BenchConfig::quick();
    let dataset = config.datasets[0];
    let graph = dataset.build(config.scale);
    let mut group = c.benchmark_group(format!("fig08/{dataset}"));
    for size in [10usize, 20, 40] {
        let queries = random_query_set(&graph, config.with_query_set_size(size).query_spec());
        if queries.is_empty() {
            continue;
        }
        for algorithm in [
            Algorithm::PathEnum,
            Algorithm::BasicEnumPlus,
            Algorithm::BatchEnumPlus,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm}"), format!("|Q|={size}")),
                &(&graph, &queries),
                |b, (graph, queries)| {
                    b.iter(|| time_algorithm(graph, queries, algorithm, 0.5));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_query_set_size_sweep
}
criterion_main!(benches);
