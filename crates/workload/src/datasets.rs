//! Synthetic analogs of the paper's Table I datasets.
//!
//! | Code | Paper dataset | Character reproduced by the analog |
//! |------|---------------|------------------------------------|
//! | EP   | Epinions      | small social graph, heavy-tailed degrees, d_avg ≈ 13 |
//! | SL   | Slashdot      | small social graph, denser than EP |
//! | BK   | Baidu-baike   | sparse encyclopedia link graph, d_avg ≈ 5, extreme hub |
//! | WT   | WikiTalk      | very sparse communication graph, d_avg ≈ 5 |
//! | BS   | BerkStan      | web graph: strong locality + long-range links |
//! | SK   | Skitter       | internet topology, d_avg ≈ 13 |
//! | UK   | Web-uk-2005   | dense web crawl, d_avg ≈ 181 (scaled down, still the densest) |
//! | DA   | Rec-dating    | dense bipartite-ish interaction graph, d_avg ≈ 205 (scaled) |
//! | PO   | Pokec         | mid-size social network, d_avg ≈ 37 |
//! | LJ   | LiveJournal   | large social network, d_avg ≈ 18 |
//! | TW   | Twitter-2010  | billion-scale follower graph (largest analog), low reciprocity |
//! | FS   | Friendster    | billion-scale friendship graph, high reciprocity |
//!
//! Every analog is deterministic for a given [`DatasetScale`] and the workspace-wide seed,
//! so experiment runs are reproducible.

use hcsp_graph::generators::preferential::{preferential_attachment, PreferentialConfig};
use hcsp_graph::generators::{gnm_random, small_world};
use hcsp_graph::{DiGraph, GraphStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scale factor for the analog datasets.
///
/// The paper runs on graphs up to 1.8 B edges on a 512 GB server; the analogs default to
/// sizes that let the full benchmark suite finish on a laptop, with [`DatasetScale::Medium`]
/// and [`DatasetScale::Large`] available for longer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DatasetScale {
    /// Tiny graphs for unit/integration tests (hundreds of vertices).
    Tiny,
    /// Default benchmark scale (thousands to tens of thousands of vertices).
    #[default]
    Small,
    /// Extended benchmark scale (~10x Small).
    Medium,
    /// Stress scale (~40x Small); only used when explicitly requested.
    Large,
}

impl DatasetScale {
    /// Multiplier applied to the base vertex counts.
    pub fn multiplier(self) -> f64 {
        match self {
            DatasetScale::Tiny => 0.12,
            DatasetScale::Small => 1.0,
            DatasetScale::Medium => 8.0,
            DatasetScale::Large => 40.0,
        }
    }
}

/// The twelve dataset analogs, named by the paper's abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Dataset {
    /// Epinions analog.
    EP,
    /// Slashdot analog.
    SL,
    /// Baidu-baike analog.
    BK,
    /// WikiTalk analog.
    WT,
    /// BerkStan analog.
    BS,
    /// Skitter analog.
    SK,
    /// Web-uk-2005 analog.
    UK,
    /// Rec-dating analog.
    DA,
    /// Pokec analog.
    PO,
    /// LiveJournal analog.
    LJ,
    /// Twitter-2010 analog.
    TW,
    /// Friendster analog.
    FS,
}

impl Dataset {
    /// All datasets in the order Table I lists them.
    pub const ALL: [Dataset; 12] = [
        Dataset::EP,
        Dataset::SL,
        Dataset::BK,
        Dataset::WT,
        Dataset::BS,
        Dataset::SK,
        Dataset::UK,
        Dataset::DA,
        Dataset::PO,
        Dataset::LJ,
        Dataset::TW,
        Dataset::FS,
    ];

    /// A fast default subset used where running all twelve would be excessive
    /// (unit tests, smoke benchmarks): one small social graph, one sparse graph, one web
    /// graph and one "billion-scale" analog.
    pub const SMOKE: [Dataset; 4] = [Dataset::EP, Dataset::WT, Dataset::BS, Dataset::TW];

    /// The full name of the original dataset this analog stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            Dataset::EP => "Epinions",
            Dataset::SL => "Slashdot",
            Dataset::BK => "Baidu-baike",
            Dataset::WT => "WikiTalk",
            Dataset::BS => "BerkStan",
            Dataset::SK => "Skitter",
            Dataset::UK => "Web-uk-2005",
            Dataset::DA => "Rec-dating",
            Dataset::PO => "Pokec",
            Dataset::LJ => "LiveJournal",
            Dataset::TW => "Twitter-2010",
            Dataset::FS => "Friendster",
        }
    }

    /// Statistics of the original dataset as reported in Table I: `(|V|, |E|, d_avg)`.
    pub fn paper_statistics(self) -> (u64, u64, f64) {
        match self {
            Dataset::EP => (75_000, 508_000, 13.4),
            Dataset::SL => (82_000, 948_000, 21.2),
            Dataset::BK => (416_000, 3_000_000, 5.0),
            Dataset::WT => (2_000_000, 5_000_000, 5.0),
            Dataset::BS => (685_000, 7_000_000, 22.2),
            Dataset::SK => (1_600_000, 11_000_000, 13.1),
            Dataset::UK => (130_000, 11_700_000, 181.2),
            Dataset::DA => (169_000, 17_000_000, 205.7),
            Dataset::PO => (1_600_000, 31_000_000, 37.5),
            Dataset::LJ => (4_000_000, 69_000_000, 17.9),
            Dataset::TW => (42_000_000, 1_460_000_000, 70.5),
            Dataset::FS => (65_000_000, 1_810_000_000, 27.5),
        }
    }

    /// Deterministic per-dataset seed.
    fn seed(self) -> u64 {
        0x5CDB_0000 + self as u64
    }

    /// Base vertex count at [`DatasetScale::Small`]; scaled by the multiplier.
    fn base_vertices(self) -> usize {
        match self {
            Dataset::EP => 1_500,
            Dataset::SL => 1_600,
            Dataset::BK => 6_000,
            Dataset::WT => 12_000,
            Dataset::BS => 5_000,
            Dataset::SK => 9_000,
            Dataset::UK => 1_400,
            Dataset::DA => 1_700,
            Dataset::PO => 10_000,
            Dataset::LJ => 20_000,
            Dataset::TW => 40_000,
            Dataset::FS => 48_000,
        }
    }

    /// Generates the analog graph at the given scale.
    pub fn build(self, scale: DatasetScale) -> DiGraph {
        let n = ((self.base_vertices() as f64 * scale.multiplier()) as usize).max(50);
        let seed = self.seed();
        match self {
            // Small social graphs: preferential attachment with moderate reciprocity.
            Dataset::EP => pref(n, 6, 0.30, seed),
            Dataset::SL => pref(n, 9, 0.35, seed),
            // Sparse link / communication graphs.
            Dataset::BK => pref(n, 2, 0.15, seed),
            Dataset::WT => pref(n, 2, 0.05, seed),
            // Web graphs: ring locality plus rewiring.
            Dataset::BS => small_world(n, 10, 0.15, seed).expect("valid parameters"),
            Dataset::UK => small_world(n, 28, 0.10, seed).expect("valid parameters"),
            // Internet topology.
            Dataset::SK => pref(n, 6, 0.40, seed),
            // Dense interaction graph: uniform random with high average degree.
            Dataset::DA => gnm_random(n, n * 28, seed).expect("valid parameters"),
            // Mid/large social networks.
            Dataset::PO => pref(n, 9, 0.40, seed),
            Dataset::LJ => pref(n, 5, 0.50, seed),
            // Billion-scale analogs.
            Dataset::TW => pref(n, 8, 0.10, seed),
            Dataset::FS => pref(n, 6, 0.60, seed),
        }
    }

    /// Generates the analog and returns it with its statistics (a Table I row).
    pub fn build_with_stats(self, scale: DatasetScale) -> (DiGraph, GraphStats) {
        let graph = self.build(scale);
        let stats = GraphStats::compute(&graph);
        (graph, stats)
    }
}

fn pref(n: usize, m: usize, reciprocity: f64, seed: u64) -> DiGraph {
    preferential_attachment(PreferentialConfig {
        num_vertices: n,
        edges_per_vertex: m,
        reciprocity,
        seed,
    })
    .expect("valid parameters")
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dataset::ALL
            .iter()
            .find(|d| d.to_string().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| format!("unknown dataset {s:?} (expected one of EP..FS)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_tiny_scale() {
        for d in Dataset::ALL {
            let (g, stats) = d.build_with_stats(DatasetScale::Tiny);
            assert!(g.num_vertices() >= 50, "{d}: too few vertices");
            assert!(g.num_edges() > 0, "{d}: empty graph");
            assert_eq!(stats.num_edges, g.num_edges());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::EP.build(DatasetScale::Tiny);
        let b = Dataset::EP.build(DatasetScale::Tiny);
        assert_eq!(a, b);
        let c = Dataset::SL.build(DatasetScale::Tiny);
        assert_ne!(a, c);
    }

    #[test]
    fn relative_size_ordering_follows_table_one() {
        let sizes: Vec<(Dataset, usize)> = [Dataset::EP, Dataset::WT, Dataset::LJ, Dataset::TW]
            .into_iter()
            .map(|d| (d, d.build(DatasetScale::Tiny).num_vertices()))
            .collect();
        // EP < WT < LJ < TW in vertex count, mirroring Table I.
        assert!(sizes[0].1 < sizes[1].1);
        assert!(sizes[1].1 < sizes[2].1);
        assert!(sizes[2].1 < sizes[3].1);
    }

    #[test]
    fn dense_analogs_are_denser_than_sparse_ones() {
        let (_, uk) = Dataset::UK.build_with_stats(DatasetScale::Tiny);
        let (_, da) = Dataset::DA.build_with_stats(DatasetScale::Tiny);
        let (_, wt) = Dataset::WT.build_with_stats(DatasetScale::Tiny);
        let (_, bk) = Dataset::BK.build_with_stats(DatasetScale::Tiny);
        assert!(
            uk.avg_degree > 4.0 * wt.avg_degree,
            "UK {uk:?} vs WT {wt:?}"
        );
        assert!(
            da.avg_degree > 4.0 * bk.avg_degree,
            "DA {da:?} vs BK {bk:?}"
        );
    }

    #[test]
    fn social_analogs_have_degree_skew() {
        let (_, tw) = Dataset::TW.build_with_stats(DatasetScale::Tiny);
        assert!(tw.max_degree as f64 > 5.0 * tw.avg_degree, "{tw:?}");
    }

    #[test]
    fn scale_multiplies_vertex_counts() {
        let tiny = Dataset::EP.build(DatasetScale::Tiny).num_vertices();
        let small = Dataset::EP.build(DatasetScale::Small).num_vertices();
        assert!(small > 4 * tiny);
        assert!(DatasetScale::Medium.multiplier() > DatasetScale::Small.multiplier());
        assert!(DatasetScale::Large.multiplier() > DatasetScale::Medium.multiplier());
    }

    #[test]
    fn names_parse_and_round_trip() {
        for d in Dataset::ALL {
            let parsed: Dataset = d.to_string().parse().unwrap();
            assert_eq!(parsed, d);
            assert!(!d.paper_name().is_empty());
            let (v, e, avg) = d.paper_statistics();
            assert!(v > 0 && e > 0 && avg > 0.0);
        }
        assert!("ep".parse::<Dataset>().is_ok());
        assert!("nope".parse::<Dataset>().is_err());
        assert_eq!(Dataset::ALL.len(), 12);
        assert_eq!(Dataset::SMOKE.len(), 4);
    }
}
