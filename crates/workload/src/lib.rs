//! # hcsp-workload
//!
//! Workload layer of the reproduction: synthetic analogs of the paper's twelve evaluation
//! datasets (Table I), the query-set generators used by every experiment
//! (random reachable `(s, t, k)` pairs, similarity-controlled sets for Exp-1, and size
//! sweeps for Exp-2), the open-loop [`arrival`] processes that turn a query set into
//! a timed stream for the micro-batching service scenarios, the
//! [`update_stream`](mod@update_stream) generator interleaving edge
//! insertions/deletions with query arrivals for the evolving-graph scenarios, and the
//! [`spec_gen`] generator assigning typed result modes (`Exists`/`Count`/`FirstK`/
//! `Collect`) to a query set for the mixed-mode request/response scenarios.
//!
//! The real datasets (SNAP / LAW / NetworkRepository downloads, up to 1.8 B edges) are not
//! available in this environment; [`datasets`] instead generates deterministic laptop-scale
//! graphs whose *shape* (degree skew, average degree ordering, relative size ordering)
//! mirrors Table I, as documented in `DESIGN.md`. All compared algorithms run on the same
//! analog graph, so the relative results the paper reports remain meaningful.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod datasets;
pub mod query_gen;
pub mod query_io;
pub mod recovery;
pub mod spec_gen;
pub mod update_stream;

pub use arrival::ArrivalProcess;
pub use datasets::{Dataset, DatasetScale};
pub use query_gen::{random_query_set, similar_query_set, QuerySetSpec};
pub use query_io::{read_queries, read_queries_file, write_queries, write_queries_file};
pub use recovery::{recovery_workload, state_after, RecoveryWorkload, RecoveryWorkloadSpec};
pub use spec_gen::{assign_modes, mixed_mode_query_set, ModeMix};
pub use update_stream::{fold_updates, update_stream, StreamEvent, UpdateStreamSpec};
