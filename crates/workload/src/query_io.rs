//! Query-set serialisation.
//!
//! Experiments should be replayable: a generated query batch can be written to a plain
//! text file (`s t k` per line, `#` comments allowed) and read back later, so a slow run
//! can be repeated on the exact same workload or shared alongside experiment results.

use hcsp_core::PathQuery;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while reading a query-set file.
#[derive(Debug)]
pub enum QueryIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line could not be parsed as `s t k`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content (truncated).
        content: String,
    },
}

impl std::fmt::Display for QueryIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryIoError::Io(e) => write!(f, "io error: {e}"),
            QueryIoError::Parse { line, content } => {
                write!(f, "cannot parse query on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for QueryIoError {}

impl From<std::io::Error> for QueryIoError {
    fn from(e: std::io::Error) -> Self {
        QueryIoError::Io(e)
    }
}

/// Writes a query set as `s t k` lines with a small header comment.
pub fn write_queries<W: Write>(queries: &[PathQuery], mut writer: W) -> Result<(), QueryIoError> {
    writeln!(
        writer,
        "# HC-s-t path query set: {} queries (source target hop_limit)",
        queries.len()
    )?;
    for q in queries {
        writeln!(
            writer,
            "{} {} {}",
            q.source.raw(),
            q.target.raw(),
            q.hop_limit
        )?;
    }
    Ok(())
}

/// Reads a query set written by [`write_queries`] (or by hand).
pub fn read_queries<R: Read>(reader: R) -> Result<Vec<PathQuery>, QueryIoError> {
    let mut queries = Vec::new();
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next()), parse(it.next())) {
            (Some(s), Some(t), Some(k)) => queries.push(PathQuery::new(s, t, k)),
            _ => {
                return Err(QueryIoError::Parse {
                    line: line_no + 1,
                    content: trimmed.chars().take(64).collect(),
                })
            }
        }
    }
    Ok(queries)
}

/// Writes a query set to a file path.
pub fn write_queries_file<P: AsRef<Path>>(
    queries: &[PathQuery],
    path: P,
) -> Result<(), QueryIoError> {
    let file = std::fs::File::create(path)?;
    write_queries(queries, file)
}

/// Reads a query set from a file path.
pub fn read_queries_file<P: AsRef<Path>>(path: P) -> Result<Vec<PathQuery>, QueryIoError> {
    read_queries(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PathQuery> {
        vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(2u32, 13u32, 5),
            PathQuery::new(9u32, 14u32, 3),
        ]
    }

    #[test]
    fn round_trip_through_memory() {
        let queries = sample();
        let mut buffer = Vec::new();
        write_queries(&queries, &mut buffer).unwrap();
        let back = read_queries(buffer.as_slice()).unwrap();
        assert_eq!(back, queries);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n0 1 4\n  2 3 5 \n";
        let queries = read_queries(text.as_bytes()).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[1], PathQuery::new(2u32, 3u32, 5));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 1 4\nbroken line\n";
        match read_queries(text.as_bytes()) {
            Err(QueryIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let missing = read_queries("1 2\n".as_bytes());
        assert!(missing.is_err());
        assert!(!format!("{}", missing.unwrap_err()).is_empty());
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join("hcsp_query_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queries.txt");
        let queries = sample();
        write_queries_file(&queries, &path).unwrap();
        assert_eq!(read_queries_file(&path).unwrap(), queries);
        assert!(read_queries_file(dir.join("missing.txt")).is_err());
    }
}
