//! Open-loop arrival processes for service scenarios.
//!
//! The offline experiments hand a pre-assembled batch to the algorithms; the serving
//! layer (`hcsp-service`) instead receives queries over time and must *form* batches
//! under its admission policy. An [`ArrivalProcess`] turns a generated query set into a
//! deterministic open-loop schedule — `(offset from start, query)` pairs — that a service
//! replays at its intended inter-arrival gaps. "Open loop" means arrival times do not
//! depend on service completion times, the standard model for studying queueing behaviour
//! under offered load.

use hcsp_core::PathQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// How inter-arrival gaps of an open-loop schedule are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: independent exponential inter-arrival gaps with mean `1 / rate`,
    /// the classic model of many independent users. `rate_qps` is queries per second.
    Poisson {
        /// Mean offered load in queries per second (must be positive).
        rate_qps: f64,
    },
    /// Deterministic arrivals: exactly one query every `gap`.
    Uniform {
        /// The fixed inter-arrival gap.
        gap: Duration,
    },
    /// Bursty arrivals: `burst_size` queries arrive at the same instant, consecutive
    /// bursts are `gap` apart — the best case for an admission window (whole bursts share
    /// one micro-batch) and the worst case for per-query serving.
    Bursty {
        /// Queries per burst (values of 0 are treated as 1).
        burst_size: usize,
        /// Gap between consecutive bursts.
        gap: Duration,
    },
}

impl ArrivalProcess {
    /// Assigns an arrival offset to every query, in order. Offsets are non-decreasing and
    /// start at zero; for a fixed process and seed the schedule is fully deterministic.
    pub fn schedule(&self, queries: &[PathQuery], seed: u64) -> Vec<(Duration, PathQuery)> {
        self.offsets(queries.len(), seed)
            .into_iter()
            .zip(queries.iter().copied())
            .collect()
    }

    /// The bare arrival offsets for `count` items — the same deterministic schedule as
    /// [`ArrivalProcess::schedule`] without tying it to [`PathQuery`] values, so callers
    /// can pace anything (the network front-end paces query-language statements with it).
    pub fn offsets(&self, count: usize, seed: u64) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA881_7A1E);
        let mut offset = Duration::ZERO;
        (0..count)
            .map(|i| {
                if i > 0 {
                    offset += self.next_gap(i, &mut rng);
                }
                offset
            })
            .collect()
    }

    /// The gap between arrival `i - 1` and arrival `i` (`i >= 1`).
    fn next_gap(&self, i: usize, rng: &mut StdRng) -> Duration {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                assert!(rate_qps > 0.0, "Poisson rate must be positive");
                // Inverse-CDF exponential sampling; 1 - u avoids ln(0).
                let u: f64 = rng.gen_range(0.0..1.0);
                Duration::from_secs_f64(-(1.0 - u).ln() / rate_qps)
            }
            ArrivalProcess::Uniform { gap } => gap,
            ArrivalProcess::Bursty { burst_size, gap } => {
                if i.is_multiple_of(burst_size.max(1)) {
                    gap
                } else {
                    Duration::ZERO
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries(n: usize) -> Vec<PathQuery> {
        (0..n as u32).map(|i| PathQuery::new(i, i + 1, 4)).collect()
    }

    fn offsets(schedule: &[(Duration, PathQuery)]) -> Vec<Duration> {
        schedule.iter().map(|&(o, _)| o).collect()
    }

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let q = queries(50);
        let p = ArrivalProcess::Poisson { rate_qps: 1000.0 };
        let a = p.schedule(&q, 7);
        let b = p.schedule(&q, 7);
        assert_eq!(a, b);
        let c = p.schedule(&q, 8);
        assert_ne!(offsets(&a), offsets(&c));
        assert_eq!(a[0].0, Duration::ZERO);
        assert!(offsets(&a).windows(2).all(|w| w[0] <= w[1]));
        // Queries keep their order.
        assert_eq!(a.iter().map(|&(_, q)| q).collect::<Vec<_>>(), q);
    }

    #[test]
    fn poisson_mean_gap_approximates_the_rate() {
        let q = queries(2000);
        let rate = 500.0;
        let schedule = ArrivalProcess::Poisson { rate_qps: rate }.schedule(&q, 42);
        let span = schedule.last().unwrap().0.as_secs_f64();
        let mean_gap = span / (q.len() - 1) as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap - expected).abs() < expected * 0.2,
            "mean gap {mean_gap} should be within 20% of {expected}"
        );
    }

    #[test]
    fn uniform_gaps_are_exact() {
        let q = queries(4);
        let schedule = ArrivalProcess::Uniform {
            gap: Duration::from_millis(3),
        }
        .schedule(&q, 1);
        assert_eq!(
            offsets(&schedule),
            vec![
                Duration::ZERO,
                Duration::from_millis(3),
                Duration::from_millis(6),
                Duration::from_millis(9),
            ]
        );
    }

    #[test]
    fn bursts_arrive_together() {
        let q = queries(7);
        let schedule = ArrivalProcess::Bursty {
            burst_size: 3,
            gap: Duration::from_millis(10),
        }
        .schedule(&q, 1);
        let o = offsets(&schedule);
        // Bursts of 3: [0,0,0], [10,10,10], [20].
        assert_eq!(o[0], o[2]);
        assert_eq!(o[3], o[5]);
        assert!(o[3] > o[2]);
        assert_eq!(o[6], Duration::from_millis(20));
        // Degenerate burst size behaves like Uniform.
        let degenerate = ArrivalProcess::Bursty {
            burst_size: 0,
            gap: Duration::from_millis(1),
        }
        .schedule(&queries(3), 1);
        assert_eq!(
            offsets(&degenerate),
            vec![
                Duration::ZERO,
                Duration::from_millis(1),
                Duration::from_millis(2)
            ]
        );
    }

    #[test]
    fn offsets_match_the_schedule() {
        let q = queries(32);
        let p = ArrivalProcess::Poisson { rate_qps: 2000.0 };
        assert_eq!(p.offsets(q.len(), 9), offsets(&p.schedule(&q, 9)));
        assert!(p.offsets(0, 9).is_empty());
    }

    #[test]
    fn empty_query_sets_schedule_nothing() {
        let schedule = ArrivalProcess::Uniform {
            gap: Duration::from_millis(1),
        }
        .schedule(&[], 0);
        assert!(schedule.is_empty());
    }
}
