//! Deterministic workloads for crash-recovery testing.
//!
//! The crash matrix (`tests/integration_recovery.rs` in the umbrella crate) replays the
//! same sequence of update batches into a durable service twice — once through a
//! fail-point filesystem that is killed at a chosen byte or operation, once un-crashed —
//! and asserts the recovered service answers a reference query set byte-identically to
//! the twin serving the same acknowledged prefix. Everything here is a pure function of
//! the seed so a failing `(seed, kill point)` pair reproduces exactly.
//!
//! Queries are drawn reachable against *every* prefix state of the batch sequence, not
//! just the final one: a crash can recover any acknowledged prefix, and the oracle only
//! has discriminating power at a kill point if some query has a non-empty answer on the
//! state recovered there.

use crate::update_stream::{update_stream, StreamEvent, UpdateStreamSpec};
use hcsp_core::PathQuery;
use hcsp_graph::traversal::VisitScratch;
use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a deterministic crash-recovery workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryWorkloadSpec {
    /// Number of update batches to feed the service before/around the kill point.
    pub num_batches: usize,
    /// Edge mutations per batch.
    pub updates_per_batch: usize,
    /// Fraction of mutations that are insertions, in `[0, 1]`.
    pub insert_fraction: f64,
    /// Total reference queries, spread across the prefix states.
    pub num_queries: usize,
    /// Smallest hop constraint (inclusive).
    pub k_min: u32,
    /// Largest hop constraint (inclusive).
    pub k_max: u32,
    /// RNG seed; batches and queries are both pure functions of it.
    pub seed: u64,
}

impl Default for RecoveryWorkloadSpec {
    fn default() -> Self {
        RecoveryWorkloadSpec {
            num_batches: 6,
            updates_per_batch: 4,
            insert_fraction: 0.5,
            num_queries: 12,
            k_min: 3,
            k_max: 5,
            seed: 42,
        }
    }
}

impl RecoveryWorkloadSpec {
    /// Creates a spec with the default shape and the given seed.
    pub fn seeded(seed: u64) -> Self {
        RecoveryWorkloadSpec {
            seed,
            ..Default::default()
        }
    }
}

/// A generated crash-recovery workload: the update batches to feed the service and the
/// reference queries the oracle compares across the crashed/un-crashed twins.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryWorkload {
    /// Update batches, in submission order. May hold fewer than `num_batches` entries on
    /// degenerate graphs (no mutable edge).
    pub batches: Vec<Vec<GraphUpdate>>,
    /// Reference queries; each was drawn reachable on one of the prefix states.
    pub queries: Vec<PathQuery>,
}

/// Generates the deterministic workload for `graph` under `spec`.
///
/// Batches reuse the [`update_stream`] generator (with no interleaved queries), so
/// deletions always target edges present at that point of the sequence and insertions
/// never duplicate an edge — every batch applies cleanly in order. Queries are then
/// drawn reachable-within-`k` against each prefix state `s_0..=s_B`, distributing
/// `num_queries` round-robin across the `B + 1` states.
pub fn recovery_workload(graph: &DiGraph, spec: RecoveryWorkloadSpec) -> RecoveryWorkload {
    let stream_spec = UpdateStreamSpec {
        num_queries: 0,
        num_update_batches: spec.num_batches,
        updates_per_batch: spec.updates_per_batch,
        insert_fraction: spec.insert_fraction,
        k_min: spec.k_min,
        k_max: spec.k_max,
        seed: spec.seed,
    };
    let batches: Vec<Vec<GraphUpdate>> = update_stream(graph, stream_spec)
        .into_iter()
        .filter_map(|event| match event {
            StreamEvent::Update(batch) => Some(batch),
            StreamEvent::Query(_) => None,
        })
        .collect();

    // A distinct RNG stream from the batch generator, so adding queries never perturbs
    // the batch contents for a given seed.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0BAC_1E55);
    let mut scratch = VisitScratch::new();
    let mut delta = DeltaGraph::new(graph.clone());
    let mut snapshot = graph.clone();
    let states = batches.len() + 1;
    let mut queries = Vec::with_capacity(spec.num_queries);
    for state in 0..states {
        if state > 0 {
            for update in &batches[state - 1] {
                delta.apply(update);
            }
            snapshot = delta.compact();
        }
        // Distributes num_queries across the states, earlier states getting the
        // remainder: the per-state counts sum exactly to num_queries.
        let want = (spec.num_queries + states - 1 - state) / states;
        for _ in 0..want {
            if let Some((query, _)) = crate::query_gen::draw_reachable_query(
                &snapshot,
                spec.k_min,
                spec.k_max,
                &mut rng,
                &mut scratch,
            ) {
                queries.push(query);
            }
        }
    }
    RecoveryWorkload { batches, queries }
}

/// Folds a prefix of the workload's batches into the graph state a correct engine must
/// serve after acknowledging them — the oracle view for a kill point at which exactly
/// `prefix` batches were made durable.
pub fn state_after(graph: &DiGraph, batches: &[Vec<GraphUpdate>], prefix: usize) -> DiGraph {
    let mut delta = DeltaGraph::new(graph.clone());
    for batch in &batches[..prefix.min(batches.len())] {
        for update in batch {
            delta.apply(update);
        }
    }
    delta.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetScale};

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let a = recovery_workload(&g, RecoveryWorkloadSpec::seeded(7));
        let b = recovery_workload(&g, RecoveryWorkloadSpec::seeded(7));
        assert_eq!(a, b);
        let c = recovery_workload(&g, RecoveryWorkloadSpec::seeded(8));
        assert_ne!(a, c);
    }

    #[test]
    fn batches_apply_cleanly_and_queries_hit_the_requested_count() {
        let g = Dataset::WT.build(DatasetScale::Tiny);
        let spec = RecoveryWorkloadSpec {
            num_batches: 5,
            num_queries: 11,
            ..RecoveryWorkloadSpec::seeded(3)
        };
        let w = recovery_workload(&g, spec);
        assert_eq!(w.batches.len(), 5);
        assert_eq!(w.queries.len(), 11);
        let mut delta = DeltaGraph::new(g.clone());
        for (i, batch) in w.batches.iter().enumerate() {
            assert_eq!(batch.len(), spec.updates_per_batch);
            for update in batch {
                assert!(delta.apply(update), "batch {i}: {update} must apply");
            }
        }
        // The full-prefix fold agrees with the incremental application.
        assert_eq!(
            state_after(&g, &w.batches, w.batches.len()),
            delta.compact()
        );
    }

    #[test]
    fn state_after_walks_the_prefix_lattice() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let w = recovery_workload(&g, RecoveryWorkloadSpec::seeded(1));
        assert_eq!(state_after(&g, &w.batches, 0), g);
        let mut prev = g.clone();
        let mut changed = 0;
        for prefix in 1..=w.batches.len() {
            let state = state_after(&g, &w.batches, prefix);
            if state != prev {
                changed += 1;
            }
            prev = state;
        }
        assert!(
            changed > 0,
            "the batch sequence must actually move the graph"
        );
        // Out-of-range prefixes clamp to the full fold.
        assert_eq!(state_after(&g, &w.batches, usize::MAX), prev);
    }

    #[test]
    fn queries_are_admissible_on_every_prefix_state() {
        // Reference queries must *run* (endpoints in range, k within bounds) on every
        // recoverable state, even those drawn against a different prefix: the vertex set
        // never changes, only edges do.
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let w = recovery_workload(&g, RecoveryWorkloadSpec::seeded(5));
        let n = g.num_vertices();
        for q in &w.queries {
            assert!(q.source.index() < n && q.target.index() < n);
            assert!(q.hop_limit >= 3 && q.hop_limit <= 5);
        }
    }
}
