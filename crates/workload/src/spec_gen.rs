//! Mixed-mode query generation: typed [`QuerySpec`] workloads for the request/response
//! serving scenarios.
//!
//! The paper's workloads are pure full-enumeration batches. Real serving traffic mixes
//! answer shapes — fraud screens ask *exists?*, analytics asks for counts, interactive
//! exploration asks for the first few paths, offline jobs still collect everything. This
//! module turns any query set drawn by the paper's rule into such a mixed stream: each
//! query is assigned a [`ResultMode`] by a seeded weighted draw, so the stream is
//! deterministic per seed and its mode composition is tunable per scenario.

use crate::query_gen::{random_query_set, QuerySetSpec};
use hcsp_core::{PathQuery, QuerySpec, ResultMode};
use hcsp_graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative weights of the four result modes in a generated mixed-mode workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeMix {
    /// Weight of [`ResultMode::Exists`].
    pub exists: u32,
    /// Weight of [`ResultMode::Count`].
    pub count: u32,
    /// Weight of [`ResultMode::FirstK`].
    pub first_k: u32,
    /// Weight of [`ResultMode::Collect`].
    pub collect: u32,
    /// The `k` used for generated `FirstK` specs.
    pub first_k_paths: usize,
}

impl Default for ModeMix {
    /// A balanced serving mix: every mode equally likely, `FirstK(4)`.
    fn default() -> Self {
        ModeMix {
            exists: 1,
            count: 1,
            first_k: 1,
            collect: 1,
            first_k_paths: 4,
        }
    }
}

impl ModeMix {
    /// A mix with explicit weights (all-zero weights fall back to `Collect`).
    pub fn new(exists: u32, count: u32, first_k: u32, collect: u32) -> Self {
        ModeMix {
            exists,
            count,
            first_k,
            collect,
            ..ModeMix::default()
        }
    }

    /// Returns the mix with a different `k` for generated `FirstK` specs.
    pub fn with_first_k_paths(mut self, k: usize) -> Self {
        self.first_k_paths = k.max(1);
        self
    }

    /// A mix containing only one mode (for A/B comparisons in the bench harness).
    pub fn only(mode: ResultMode) -> Self {
        let mut mix = ModeMix::new(0, 0, 0, 0);
        match mode {
            ResultMode::Exists => mix.exists = 1,
            ResultMode::Count => mix.count = 1,
            ResultMode::FirstK(k) => {
                mix.first_k = 1;
                mix.first_k_paths = k.max(1);
            }
            ResultMode::Collect => mix.collect = 1,
        }
        mix
    }

    /// Total weight (0 means "always Collect").
    fn total(&self) -> u32 {
        self.exists + self.count + self.first_k + self.collect
    }

    /// Draws one mode according to the weights.
    pub fn draw(&self, rng: &mut StdRng) -> ResultMode {
        let total = self.total();
        if total == 0 {
            return ResultMode::Collect;
        }
        let mut roll = rng.gen_range(0..total);
        for (weight, mode) in [
            (self.exists, ResultMode::Exists),
            (self.count, ResultMode::Count),
            (self.first_k, ResultMode::FirstK(self.first_k_paths)),
            (self.collect, ResultMode::Collect),
        ] {
            if roll < weight {
                return mode;
            }
            roll -= weight;
        }
        ResultMode::Collect
    }
}

/// Assigns a result mode to each query of an existing set by a seeded weighted draw
/// (deterministic per `(queries, seed, mix)`).
pub fn assign_modes(queries: &[PathQuery], mix: ModeMix, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC0_0DE5);
    queries
        .iter()
        .map(|&q| QuerySpec::new(q, mix.draw(&mut rng)))
        .collect()
}

/// Generates the paper's default workload (`random_query_set`) and assigns each query a
/// result mode drawn from `mix` — the mixed-mode serving scenario in one call.
pub fn mixed_mode_query_set(graph: &DiGraph, spec: QuerySetSpec, mix: ModeMix) -> Vec<QuerySpec> {
    let queries = random_query_set(graph, spec);
    assign_modes(&queries, mix, spec.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetScale};

    #[test]
    fn mixed_sets_are_deterministic_and_cover_modes() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let spec = QuerySetSpec::new(40, 9).with_hops(3, 4);
        let a = mixed_mode_query_set(&g, spec, ModeMix::default());
        let b = mixed_mode_query_set(&g, spec, ModeMix::default());
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 40);
        // With 40 draws at equal weights, every mode appears with overwhelming
        // probability (deterministic given the fixed seed).
        for probe in [
            ResultMode::Exists,
            ResultMode::Count,
            ResultMode::FirstK(4),
            ResultMode::Collect,
        ] {
            assert!(
                a.iter().any(|s| s.mode == probe),
                "mode {probe} missing from the default mix"
            );
        }
    }

    #[test]
    fn single_mode_mixes_assign_uniformly() {
        let g = Dataset::WT.build(DatasetScale::Tiny);
        let spec = QuerySetSpec::new(12, 3).with_hops(3, 4);
        let exists = mixed_mode_query_set(&g, spec, ModeMix::only(ResultMode::Exists));
        assert!(exists.iter().all(|s| s.mode == ResultMode::Exists));
        let first = mixed_mode_query_set(&g, spec, ModeMix::only(ResultMode::FirstK(7)));
        assert!(first.iter().all(|s| s.mode == ResultMode::FirstK(7)));
        // The underlying queries are the paper's rule, independent of the mix.
        let collect = mixed_mode_query_set(&g, spec, ModeMix::only(ResultMode::Collect));
        let qs: Vec<_> = exists.iter().map(|s| s.query).collect();
        let qs2: Vec<_> = collect.iter().map(|s| s.query).collect();
        assert_eq!(qs, qs2);
    }

    #[test]
    fn zero_weight_mix_falls_back_to_collect() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = ModeMix::new(0, 0, 0, 0);
        assert_eq!(mix.draw(&mut rng), ResultMode::Collect);
        assert_eq!(ModeMix::only(ResultMode::FirstK(0)).first_k_paths, 1);
        assert_eq!(ModeMix::default().with_first_k_paths(0).first_k_paths, 1);
    }
}
