//! Update-stream generation for the evolving-graph scenarios.
//!
//! The offline experiments run against a frozen snapshot; the dynamic-update scenarios
//! need a *stream* in which edge insertions and deletions interleave with query arrivals.
//! [`update_stream`] produces such a stream deterministically: update batches (a seeded
//! insert/delete mix drawn against the graph state *at that point of the stream*) are
//! shuffled among queries, and every query is drawn reachable on the snapshot it will
//! actually execute against — so a correct engine must return a non-trivial answer at
//! every step, and a cross-validation harness can fold the same events into an oracle.

use hcsp_core::PathQuery;
use hcsp_graph::traversal::VisitScratch;
use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One event of a mixed read/write stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A query arrival, to be answered against the current snapshot.
    Query(PathQuery),
    /// A batch of edge mutations, applied atomically between queries.
    Update(Vec<GraphUpdate>),
}

impl StreamEvent {
    /// Whether the event is a query arrival.
    pub fn is_query(&self) -> bool {
        matches!(self, StreamEvent::Query(_))
    }
}

/// Parameters of a generated mixed read/write stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamSpec {
    /// Number of query events.
    pub num_queries: usize,
    /// Number of update-batch events interleaved among the queries.
    pub num_update_batches: usize,
    /// Edge mutations per update batch.
    pub updates_per_batch: usize,
    /// Fraction of mutations that are insertions (the rest are deletions), in `[0, 1]`.
    pub insert_fraction: f64,
    /// Smallest hop constraint (inclusive).
    pub k_min: u32,
    /// Largest hop constraint (inclusive).
    pub k_max: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateStreamSpec {
    fn default() -> Self {
        UpdateStreamSpec {
            num_queries: 40,
            num_update_batches: 10,
            updates_per_batch: 4,
            insert_fraction: 0.5,
            k_min: 4,
            k_max: 7,
            seed: 42,
        }
    }
}

impl UpdateStreamSpec {
    /// Creates a spec with the paper's default k range.
    pub fn new(num_queries: usize, num_update_batches: usize, seed: u64) -> Self {
        UpdateStreamSpec {
            num_queries,
            num_update_batches,
            seed,
            ..Default::default()
        }
    }

    /// Overrides the hop-constraint range.
    pub fn with_hops(mut self, k_min: u32, k_max: u32) -> Self {
        self.k_min = k_min;
        self.k_max = k_max.max(k_min);
        self
    }

    /// Overrides the update-batch shape.
    pub fn with_updates(mut self, per_batch: usize, insert_fraction: f64) -> Self {
        self.updates_per_batch = per_batch;
        self.insert_fraction = insert_fraction.clamp(0.0, 1.0);
        self
    }

    /// A delete-dominated preset (15% insertions) exercising the precise delete
    /// maintenance path: most mutations remove edges, so index correctness hinges on
    /// the survivor scan deciding which roots truly need a re-BFS.
    pub fn delete_heavy(num_queries: usize, num_update_batches: usize, seed: u64) -> Self {
        UpdateStreamSpec::new(num_queries, num_update_batches, seed).with_updates(4, 0.15)
    }
}

/// Mutable mirror of the evolving edge set, supporting O(1) random picks of an existing
/// edge (deletion candidates) and O(1) membership tests (insertion candidates).
struct EdgePool {
    edges: Vec<(VertexId, VertexId)>,
    present: HashSet<(VertexId, VertexId)>,
}

impl EdgePool {
    fn of(graph: &DiGraph) -> Self {
        let edges: Vec<_> = graph.edges().collect();
        let present = edges.iter().copied().collect();
        EdgePool { edges, present }
    }

    fn insert(&mut self, e: (VertexId, VertexId)) {
        if self.present.insert(e) {
            self.edges.push(e);
        }
    }

    fn remove_random(&mut self, rng: &mut StdRng) -> Option<(VertexId, VertexId)> {
        if self.edges.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.edges.len());
        let e = self.edges.swap_remove(i);
        self.present.remove(&e);
        Some(e)
    }

    fn contains(&self, e: (VertexId, VertexId)) -> bool {
        self.present.contains(&e)
    }
}

/// Generates a deterministic mixed read/write stream over `graph`.
///
/// Event positions, update contents and query endpoints are all derived from
/// `spec.seed`. Deletions pick uniformly among the edges present at that point of the
/// stream; insertions pick uniformly among absent non-loop pairs (the vertex set stays
/// fixed, so any engine snapshot accepts every query of the stream). Queries are drawn
/// reachable-within-`k` on the evolved snapshot they will execute against, mirroring the
/// paper's query-generation rule on a moving graph. Degenerate graphs (no admissible
/// query / no mutable edge) simply produce fewer events.
pub fn update_stream(graph: &DiGraph, spec: UpdateStreamSpec) -> Vec<StreamEvent> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5EED_CAFE);
    let n = graph.num_vertices();

    // Lay out which positions are update batches: a shuffled boolean deck.
    let mut is_update: Vec<bool> = (0..spec.num_queries + spec.num_update_batches)
        .map(|i| i < spec.num_update_batches)
        .collect();
    is_update.shuffle(&mut rng);

    let mut delta = DeltaGraph::new(graph.clone());
    let mut pool = EdgePool::of(graph);
    let mut snapshot: Option<DiGraph> = Some(graph.clone());
    let mut scratch = VisitScratch::new();
    let mut events = Vec::with_capacity(is_update.len());

    for update_slot in is_update {
        if update_slot {
            let mut batch = Vec::with_capacity(spec.updates_per_batch);
            for _ in 0..spec.updates_per_batch {
                let want_insert = rng.gen_range(0.0..1.0) < spec.insert_fraction;
                if want_insert && n >= 2 {
                    // Rejection-sample an absent non-loop pair; dense graphs may fail,
                    // in which case the slot falls through to a deletion.
                    let mut found = None;
                    for _ in 0..64 {
                        let u = VertexId::new(rng.gen_range(0..n));
                        let v = VertexId::new(rng.gen_range(0..n));
                        if u != v && !pool.contains((u, v)) {
                            found = Some((u, v));
                            break;
                        }
                    }
                    if let Some((u, v)) = found {
                        pool.insert((u, v));
                        delta.insert_edge(u, v);
                        batch.push(GraphUpdate::Insert(u, v));
                        continue;
                    }
                }
                if let Some((u, v)) = pool.remove_random(&mut rng) {
                    delta.delete_edge(u, v);
                    batch.push(GraphUpdate::Delete(u, v));
                }
            }
            if !batch.is_empty() {
                snapshot = None; // the cached compaction is stale now
                events.push(StreamEvent::Update(batch));
            }
        } else {
            let current = snapshot.get_or_insert_with(|| delta.compact());
            if let Some((query, _)) = crate::query_gen::draw_reachable_query(
                current,
                spec.k_min,
                spec.k_max,
                &mut rng,
                &mut scratch,
            ) {
                events.push(StreamEvent::Query(query));
            }
        }
    }
    events
}

/// Folds every update of a stream prefix into a fresh snapshot (the oracle view): the
/// graph a correct engine must be serving after consuming `events`.
pub fn fold_updates(graph: &DiGraph, events: &[StreamEvent]) -> DiGraph {
    let mut delta = DeltaGraph::new(graph.clone());
    for event in events {
        if let StreamEvent::Update(batch) = event {
            for update in batch {
                delta.apply(update);
            }
        }
    }
    delta.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetScale};
    use hcsp_graph::traversal::reaches_within;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let spec = UpdateStreamSpec::new(20, 6, 9).with_hops(3, 4);
        let a = update_stream(&g, spec);
        let b = update_stream(&g, spec);
        assert_eq!(a, b);
        let c = update_stream(&g, UpdateStreamSpec { seed: 10, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn streams_have_the_requested_shape() {
        let g = Dataset::WT.build(DatasetScale::Tiny);
        let spec = UpdateStreamSpec::new(25, 8, 3)
            .with_hops(3, 4)
            .with_updates(5, 0.5);
        let events = update_stream(&g, spec);
        let queries = events.iter().filter(|e| e.is_query()).count();
        let updates = events.len() - queries;
        assert_eq!(queries, 25);
        assert_eq!(updates, 8);
        let mutations: usize = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Update(batch) => Some(batch.len()),
                _ => None,
            })
            .sum();
        assert_eq!(mutations, 8 * 5);
        // Both kinds of mutation occur at a 50/50 mix over 40 draws.
        let inserts = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Update(batch) => Some(batch.iter().filter(|u| u.is_insert()).count()),
                _ => None,
            })
            .sum::<usize>();
        assert!(inserts > 0 && inserts < mutations);
    }

    #[test]
    fn queries_are_reachable_on_their_snapshot_and_updates_are_applicable() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let spec = UpdateStreamSpec::new(15, 6, 7)
            .with_hops(3, 5)
            .with_updates(4, 0.4);
        let events = update_stream(&g, spec);
        let mut delta = DeltaGraph::new(g.clone());
        for (i, event) in events.iter().enumerate() {
            match event {
                StreamEvent::Update(batch) => {
                    for update in batch {
                        assert!(delta.apply(update), "event {i}: {update} must apply");
                    }
                }
                StreamEvent::Query(q) => {
                    let snapshot = delta.compact();
                    assert!(
                        reaches_within(&snapshot, q.source, q.target, q.hop_limit),
                        "event {i}: {q} unreachable on its snapshot"
                    );
                }
            }
        }
        // The oracle fold agrees with the incremental delta.
        assert_eq!(fold_updates(&g, &events), delta.compact());
    }

    #[test]
    fn insert_only_and_delete_only_mixes() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let inserts = update_stream(
            &g,
            UpdateStreamSpec::new(2, 4, 1)
                .with_hops(3, 3)
                .with_updates(3, 1.0),
        );
        assert!(inserts.iter().all(|e| match e {
            StreamEvent::Update(batch) => batch.iter().all(GraphUpdate::is_insert),
            StreamEvent::Query(_) => true,
        }));
        let deletes = update_stream(
            &g,
            UpdateStreamSpec::new(2, 4, 1)
                .with_hops(3, 3)
                .with_updates(3, 0.0),
        );
        assert!(deletes.iter().all(|e| match e {
            StreamEvent::Update(batch) => batch.iter().all(|u| !u.is_insert()),
            StreamEvent::Query(_) => true,
        }));
    }

    #[test]
    fn delete_heavy_preset_is_dominated_by_deletions() {
        let g = Dataset::EP.build(DatasetScale::Tiny);
        let spec = UpdateStreamSpec::delete_heavy(10, 8, 5).with_hops(3, 4);
        assert_eq!(spec.insert_fraction, 0.15);
        let events = update_stream(&g, spec);
        let (mut inserts, mut deletes) = (0, 0);
        for event in &events {
            if let StreamEvent::Update(batch) = event {
                for update in batch {
                    if update.is_insert() {
                        inserts += 1;
                    } else {
                        deletes += 1;
                    }
                }
            }
        }
        assert!(deletes > 0);
        assert!(
            deletes > inserts,
            "delete-heavy mix must be dominated by deletions ({deletes} del / {inserts} ins)"
        );
    }

    #[test]
    fn degenerate_graphs_produce_short_streams() {
        let lonely = hcsp_graph::generators::regular::path(1);
        let events = update_stream(&lonely, UpdateStreamSpec::new(5, 2, 1));
        // No admissible query, no insertable pair (needs n >= 2), no deletable edge.
        assert!(events.is_empty());
    }
}
