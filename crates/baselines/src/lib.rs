//! # hcsp-baselines
//!
//! The two k-shortest-path comparators of Exp-6 (Fig. 12 of the paper), adapted to
//! HC-s-t path enumeration exactly as the paper describes: *"we adapt them to the problem
//! of HC-s-t path enumeration by ignoring their similarity constraint and keeping
//! generating the path results until reaching the hop constraint."*
//!
//! * [`dksp::DkSp`] — the diversified top-k route planning algorithm of Luo et al.
//!   (ref. \[34\]), reduced to its path-generation core: repeated shortest-path deviations
//!   à la Yen, with the diversity filter disabled and `k = ∞` (generation stops when the
//!   next candidate exceeds the hop constraint).
//! * [`onepass::OnePass`] — the k-shortest-paths-with-limited-overlap algorithm of
//!   Chondrogiannis et al. (ref. \[35\]), likewise with the overlap constraint disabled:
//!   a label-expanding search that grows every partial path ordered by length, emitting
//!   complete s-t paths in non-decreasing hop count.
//!
//! Neither algorithm exploits Lemma 3.1's distance pruning or any cross-query sharing,
//! which is precisely why the paper reports them more than two orders of magnitude slower
//! than `BatchEnum+`; the benches in `hcsp-bench` reproduce that gap's *shape*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dksp;
pub mod ksp;
pub mod onepass;

pub use dksp::DkSp;
pub use ksp::{shortest_path_hops, yen_k_shortest};
pub use onepass::OnePass;

use hcsp_core::{EnumStats, PathQuery, PathSink};
use hcsp_graph::DiGraph;

/// Common interface of the adapted KSP comparators, mirroring the batch entry points of
/// the main algorithms so the experiment harness can drive them interchangeably.
pub trait KspEnumerator {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Enumerates all HC-s-t paths of one query, streaming them into `sink` under `query_id`.
    fn enumerate<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: usize,
        sink: &mut S,
    );

    /// Processes a batch sequentially (neither comparator shares work across queries).
    fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        let start = std::time::Instant::now();
        for (id, q) in queries.iter().enumerate() {
            self.enumerate(graph, q, id, sink);
        }
        stats.add_stage(hcsp_core::Stage::Enumeration, start.elapsed());
        sink.finish();
        stats
    }
}
