//! `OnePass` — k-shortest paths with limited overlap (ref. \[35\]) adapted to HC-s-t
//! enumeration.
//!
//! The original OnePass grows partial paths ("labels") from `s` in a single best-first
//! sweep, pruning a label when its overlap with already-reported paths exceeds the
//! similarity threshold. With the similarity constraint dropped (as the paper's adaptation
//! prescribes), what remains is a best-first label expansion over simple paths ordered by
//! hop count that emits every s-t path not exceeding the hop constraint. Unlike the
//! index-pruned algorithms it expands labels with no dead-end pruning whatsoever, which is
//! what makes it orders of magnitude slower on large graphs (Fig. 12).

use crate::KspEnumerator;
use hcsp_core::{PathQuery, PathSink};
use hcsp_graph::{DiGraph, Direction, VertexId};
use std::collections::BinaryHeap;

/// The adapted OnePass enumerator.
#[derive(Debug, Clone, Copy)]
pub struct OnePass {
    /// Safety cap on the number of emitted paths per query.
    pub max_results_per_query: usize,
    /// Safety cap on expanded labels per query (guards against dense-graph blow-ups).
    pub max_labels_per_query: usize,
}

impl Default for OnePass {
    fn default() -> Self {
        OnePass {
            max_results_per_query: 1_000_000,
            max_labels_per_query: 50_000_000,
        }
    }
}

/// A partial path label ordered by (hop count, lexicographic sequence) for the best-first
/// queue (min-heap behaviour on a max-heap via reversed comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Label {
    path: Vec<VertexId>,
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .path
            .len()
            .cmp(&self.path.len())
            .then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl KspEnumerator for OnePass {
    fn name(&self) -> &'static str {
        "OnePass"
    }

    fn enumerate<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: usize,
        sink: &mut S,
    ) {
        if query.source.index() >= graph.num_vertices()
            || query.target.index() >= graph.num_vertices()
        {
            return;
        }
        let mut heap: BinaryHeap<Label> = BinaryHeap::new();
        heap.push(Label {
            path: vec![query.source],
        });
        let mut emitted = 0usize;
        let mut expanded = 0usize;

        while let Some(Label { path }) = heap.pop() {
            expanded += 1;
            if expanded > self.max_labels_per_query || emitted >= self.max_results_per_query {
                break;
            }
            let last = *path.last().expect("labels are non-empty");
            if last == query.target {
                sink.accept(query_id, &path);
                emitted += 1;
                // A simple path cannot be extended past its target vertex and come back,
                // so this label is final.
                continue;
            }
            if (path.len() - 1) as u32 >= query.hop_limit {
                continue;
            }
            for &w in graph.neighbors(last, Direction::Forward) {
                if path.contains(&w) {
                    continue;
                }
                let mut next = Vec::with_capacity(path.len() + 1);
                next.extend_from_slice(&path);
                next.push(w);
                heap.push(Label { path: next });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::bruteforce::enumerate_reference;
    use hcsp_core::{CollectSink, CountSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, cycle, grid};

    #[test]
    fn matches_reference_enumeration() {
        let g = grid(3, 4);
        let queries = vec![
            PathQuery::new(0u32, 11u32, 6),
            PathQuery::new(3u32, 8u32, 5),
        ];
        let mut sink = CollectSink::new(queries.len());
        OnePass::default().run_batch(&g, &queries, &mut sink);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                sink.paths(i).len(),
                enumerate_reference(&g, q).len(),
                "query {q}"
            );
        }
    }

    #[test]
    fn emits_paths_in_non_decreasing_hop_order() {
        let g = complete(5);
        let q = PathQuery::new(0u32, 4u32, 4);
        let mut order: Vec<usize> = Vec::new();
        let mut sink = hcsp_core::CallbackSink::new(|_, p: &[VertexId]| order.push(p.len() - 1));
        OnePass::default().enumerate(&g, &q, 0, &mut sink);
        assert!(
            order.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {order:?}"
        );
        assert_eq!(order.len(), enumerate_reference(&g, &q).len());
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 5..8 {
            let g = gnm_random(50, 260, seed).unwrap();
            let q = PathQuery::new(2u32, 33u32, 4);
            let mut sink = CountSink::new(1);
            OnePass::default().run_batch(&g, &[q], &mut sink);
            assert_eq!(sink.count(0) as usize, enumerate_reference(&g, &q).len());
        }
    }

    #[test]
    fn caps_bound_the_work() {
        let g = complete(7);
        let q = PathQuery::new(0u32, 6u32, 6);
        let mut sink = CountSink::new(1);
        OnePass {
            max_results_per_query: 5,
            max_labels_per_query: 1_000_000,
        }
        .run_batch(&g, &[q], &mut sink);
        assert_eq!(sink.count(0), 5);

        let mut tight = CountSink::new(1);
        OnePass {
            max_results_per_query: 1_000,
            max_labels_per_query: 3,
        }
        .run_batch(&g, &[q], &mut tight);
        assert!(tight.count(0) <= 3);
        assert_eq!(OnePass::default().name(), "OnePass");
    }

    #[test]
    fn unreachable_and_out_of_range_queries_produce_nothing() {
        let g = cycle(4);
        let mut sink = CountSink::new(2);
        // Out of range target.
        OnePass::default().enumerate(&g, &PathQuery::new(0u32, 99u32, 3), 0, &mut sink);
        // Reachable but beyond the hop constraint.
        OnePass::default().enumerate(&g, &PathQuery::new(0u32, 3u32, 2), 1, &mut sink);
        assert_eq!(sink.total(), 0);
    }
}
