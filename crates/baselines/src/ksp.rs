//! Shared k-shortest-simple-path machinery (Yen's algorithm on hop counts).
//!
//! Both adapted comparators need "give me the next shortest simple s-t path not seen yet"
//! as a primitive. On unweighted graphs the path cost is the hop count, so the spur
//! shortest-path queries inside Yen's algorithm are plain BFS runs with edge/vertex
//! removals expressed as filter sets.

use hcsp_graph::{DiGraph, Direction, VertexId};
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Hop length of the shortest `s → t` path avoiding `banned_vertices` and `banned_edges`,
/// together with the path itself; `None` when no such path exists.
pub fn shortest_path_hops(
    graph: &DiGraph,
    s: VertexId,
    t: VertexId,
    banned_vertices: &HashSet<VertexId>,
    banned_edges: &HashSet<(VertexId, VertexId)>,
) -> Option<Vec<VertexId>> {
    if banned_vertices.contains(&s) || banned_vertices.contains(&t) {
        return None;
    }
    if s == t {
        return Some(vec![s]);
    }
    let n = graph.num_vertices();
    if s.index() >= n || t.index() >= n {
        return None;
    }
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[s.index()] = true;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        for &w in graph.neighbors(u, Direction::Forward) {
            if visited[w.index()] || banned_vertices.contains(&w) || banned_edges.contains(&(u, w))
            {
                continue;
            }
            visited[w.index()] = true;
            parent[w.index()] = Some(u);
            if w == t {
                // Reconstruct.
                let mut path = vec![t];
                let mut cur = t;
                while let Some(p) = parent[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(w);
        }
    }
    None
}

/// A candidate path ordered by (hop count, lexicographic vertex sequence) so the heap pops
/// candidates deterministically in non-decreasing length.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    path: Vec<VertexId>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so shorter (then lexicographically smaller)
        // paths pop first.
        other
            .path
            .len()
            .cmp(&self.path.len())
            .then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Yen's algorithm generating simple `s → t` paths in non-decreasing hop count, stopping
/// once the next path would exceed `max_hops` (the HC-s-t adaptation: keep generating
/// "until reaching the hop constraint") or once `limit` paths have been produced.
pub fn yen_k_shortest(
    graph: &DiGraph,
    s: VertexId,
    t: VertexId,
    max_hops: u32,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    let mut results: Vec<Vec<VertexId>> = Vec::new();
    let empty_v: HashSet<VertexId> = HashSet::new();
    let empty_e: HashSet<(VertexId, VertexId)> = HashSet::new();
    let Some(first) = shortest_path_hops(graph, s, t, &empty_v, &empty_e) else {
        return results;
    };
    if (first.len() - 1) as u32 > max_hops {
        return results;
    }
    results.push(first);

    let mut candidates: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
    seen.insert(results[0].clone());

    while results.len() < limit {
        let previous = results.last().expect("at least one accepted path").clone();
        // Deviate at every spur position of the previously accepted path.
        for spur_idx in 0..previous.len() - 1 {
            let spur_node = previous[spur_idx];
            let root: Vec<VertexId> = previous[..=spur_idx].to_vec();

            // Ban edges used by already-accepted paths sharing this root prefix, so the
            // spur path cannot rediscover them.
            let mut banned_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
            for accepted in &results {
                if accepted.len() > spur_idx && accepted[..=spur_idx] == root[..] {
                    banned_edges.insert((accepted[spur_idx], accepted[spur_idx + 1]));
                }
            }
            // Ban root vertices (except the spur node) to keep the total path simple.
            let banned_vertices: HashSet<VertexId> = root[..spur_idx].iter().copied().collect();

            if let Some(spur) =
                shortest_path_hops(graph, spur_node, t, &banned_vertices, &banned_edges)
            {
                let mut total = root.clone();
                total.extend_from_slice(&spur[1..]);
                if (total.len() - 1) as u32 <= max_hops && seen.insert(total.clone()) {
                    candidates.push(Candidate { path: total });
                }
            }
        }
        match candidates.pop() {
            Some(c) => results.push(c.path),
            None => break,
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{complete, grid, layered_dag};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn shortest_path_respects_bans() {
        let g = grid(3, 3);
        let p = shortest_path_hops(&g, v(0), v(8), &HashSet::new(), &HashSet::new()).unwrap();
        assert_eq!(p.len() - 1, 4);
        assert_eq!(p[0], v(0));
        assert_eq!(*p.last().unwrap(), v(8));

        // Ban the first edge of that path: a different shortest path must be found.
        let mut banned_e = HashSet::new();
        banned_e.insert((p[0], p[1]));
        let q = shortest_path_hops(&g, v(0), v(8), &HashSet::new(), &banned_e).unwrap();
        assert_eq!(q.len() - 1, 4);
        assert_ne!(q[1], p[1]);

        // Banning the target makes it unreachable.
        let mut banned_v = HashSet::new();
        banned_v.insert(v(8));
        assert!(shortest_path_hops(&g, v(0), v(8), &banned_v, &HashSet::new()).is_none());
        // Trivial s == t path.
        assert_eq!(
            shortest_path_hops(&g, v(3), v(3), &HashSet::new(), &HashSet::new()).unwrap(),
            vec![v(3)]
        );
    }

    #[test]
    fn yen_enumerates_paths_in_length_order() {
        let g = complete(5);
        let paths = yen_k_shortest(&g, v(0), v(4), 4, 100);
        // All simple paths 0 -> 4 in K5: lengths 1 (1), 2 (3), 3 (6), 4 (6) = 16 total.
        assert_eq!(paths.len(), 16);
        let lengths: Vec<usize> = paths.iter().map(|p| p.len() - 1).collect();
        assert!(
            lengths.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {lengths:?}"
        );
        // No duplicates.
        let unique: HashSet<_> = paths.iter().cloned().collect();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn yen_respects_hop_limit_and_result_limit() {
        let g = complete(5);
        let within_2 = yen_k_shortest(&g, v(0), v(4), 2, 100);
        assert_eq!(within_2.len(), 4);
        assert!(within_2.iter().all(|p| p.len() - 1 <= 2));
        let capped = yen_k_shortest(&g, v(0), v(4), 4, 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn yen_handles_unreachable_and_dag_cases() {
        let g = layered_dag(2, 2);
        let sink = VertexId::new(g.num_vertices() - 1);
        assert!(yen_k_shortest(&g, sink, v(0), 5, 10).is_empty());
        let paths = yen_k_shortest(&g, v(0), sink, 5, 100);
        assert_eq!(
            paths.len(),
            4,
            "2 layers of width 2 give 4 source-sink paths"
        );
        // If the shortest path already violates the hop bound, nothing is returned.
        assert!(yen_k_shortest(&g, v(0), sink, 2, 10).is_empty());
    }
}
