//! `DkSP` — diversified top-k route planning (ref. \[34\]) adapted to HC-s-t enumeration.
//!
//! The original algorithm returns the top-k shortest routes whose pairwise similarity is
//! below a threshold, generating candidates by shortest-path deviations and filtering by
//! the diversity constraint. The adaptation of the paper drops the diversity filter and
//! keeps generating deviations "until reaching the hop constraint": what remains is a
//! Yen-style enumeration of *all* simple s-t paths in non-decreasing hop order, truncated
//! at the query's hop limit. It never consults a distance index, so every spur query pays
//! a full BFS — the per-result cost the paper measures in Fig. 12.

use crate::ksp::yen_k_shortest;
use crate::KspEnumerator;
use hcsp_core::{PathQuery, PathSink};
use hcsp_graph::DiGraph;

/// The adapted DkSP enumerator.
#[derive(Debug, Clone, Copy)]
pub struct DkSp {
    /// Safety cap on the number of generated paths per query, so adversarial queries on
    /// dense graphs cannot run forever (the paper uses a wall-clock timeout instead).
    pub max_results_per_query: usize,
}

impl Default for DkSp {
    fn default() -> Self {
        DkSp {
            max_results_per_query: 1_000_000,
        }
    }
}

impl KspEnumerator for DkSp {
    fn name(&self) -> &'static str {
        "DkSP"
    }

    fn enumerate<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: usize,
        sink: &mut S,
    ) {
        let paths = yen_k_shortest(
            graph,
            query.source,
            query.target,
            query.hop_limit,
            self.max_results_per_query,
        );
        for p in paths {
            sink.accept(query_id, &p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::bruteforce::enumerate_reference;
    use hcsp_core::{CollectSink, CountSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, grid};

    #[test]
    fn matches_reference_enumeration() {
        let g = grid(3, 4);
        let queries = vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(0u32, 11u32, 7),
            PathQuery::new(1u32, 10u32, 5),
        ];
        let mut sink = CollectSink::new(queries.len());
        DkSp::default().run_batch(&g, &queries, &mut sink);
        for (i, q) in queries.iter().enumerate() {
            let expected = enumerate_reference(&g, q).len();
            assert_eq!(sink.paths(i).len(), expected, "query {q}");
            for p in sink.paths(i).iter() {
                assert!(hcsp_core::path::vertices_are_distinct(p));
                assert!((p.len() - 1) as u32 <= q.hop_limit);
            }
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm_random(50, 250, seed).unwrap();
            let q = PathQuery::new(1u32, 30u32, 4);
            let mut sink = CountSink::new(1);
            DkSp::default().run_batch(&g, &[q], &mut sink);
            assert_eq!(sink.count(0) as usize, enumerate_reference(&g, &q).len());
        }
    }

    #[test]
    fn result_cap_truncates_output() {
        let g = complete(7);
        let q = PathQuery::new(0u32, 6u32, 5);
        let mut sink = CountSink::new(1);
        DkSp {
            max_results_per_query: 10,
        }
        .run_batch(&g, &[q], &mut sink);
        assert_eq!(sink.count(0), 10);
        assert_eq!(DkSp::default().name(), "DkSP");
    }
}
