//! # hcsp
//!
//! Batch hop-constrained s-t simple path query processing in large graphs — a Rust
//! reproduction of the ICDE 2024 paper of the same name.
//!
//! This facade crate re-exports the whole workspace behind a single dependency:
//!
//! * [`graph`] — directed CSR graphs, generators, IO, sampling ([`hcsp_graph`]).
//! * [`index`] — bounded-distance multi-source BFS index ([`hcsp_index`]).
//! * [`core`] — the enumeration algorithms: `PathEnum`, `BasicEnum(+)`, `BatchEnum(+)`
//!   ([`hcsp_core`]).
//! * [`baselines`] — the adapted k-shortest-path comparators `DkSP` and `OnePass`
//!   ([`hcsp_baselines`]).
//! * [`service`] — the micro-batching serving layer: a long-lived `PathService` forming
//!   shared batches from a query stream ([`hcsp_service`]).
//! * [`storage`] — the durability layer: append-only update log, snapshot store,
//!   crash-recovery, and the fail-point filesystem the crash matrix uses
//!   ([`hcsp_storage`]).
//! * [`workload`] — the Table I dataset analogs, query-set generators, and open-loop
//!   arrival processes ([`hcsp_workload`]).
//! * [`server`] — the network front-end: CRC-framed wire protocol, text query
//!   language, TCP server and load-generator client ([`hcsp_server`]).
//!
//! ## Quickstart
//!
//! ```
//! use hcsp::prelude::*;
//!
//! // Build a graph (here: a tiny synthetic social network), pose a batch of queries and
//! // run the shared batch algorithm.
//! let graph = hcsp::workload::Dataset::EP.build(hcsp::workload::DatasetScale::Tiny);
//! let queries = hcsp::workload::random_query_set(
//!     &graph,
//!     hcsp::workload::QuerySetSpec::new(10, 7).with_hops(3, 4),
//! );
//! let engine = BatchEngine::builder().algorithm(Algorithm::BatchEnumPlus).gamma(0.5).build();
//! let outcome = engine.run(&graph, &queries);
//! assert_eq!(outcome.paths.len(), queries.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Directed-graph substrate (re-export of `hcsp-graph`).
pub mod graph {
    pub use hcsp_graph::*;
}

/// Bounded-distance index (re-export of `hcsp-index`).
pub mod index {
    pub use hcsp_index::*;
}

/// Enumeration algorithms (re-export of `hcsp-core`).
pub mod core {
    pub use hcsp_core::*;
}

/// Adapted KSP comparators (re-export of `hcsp-baselines`).
pub mod baselines {
    pub use hcsp_baselines::*;
}

/// Micro-batching service layer (re-export of `hcsp-service`).
pub mod service {
    pub use hcsp_service::*;
}

/// Durable update log, snapshot store and crash-test harness (re-export of
/// `hcsp-storage`).
pub mod storage {
    pub use hcsp_storage::*;
}

/// Dataset analogs and query generators (re-export of `hcsp-workload`).
pub mod workload {
    pub use hcsp_workload::*;
}

/// Network front-end: wire protocol, query language, TCP server and client
/// (re-export of `hcsp-server`).
pub mod server {
    pub use hcsp_server::*;
}

/// The most commonly used items, for `use hcsp::prelude::*`.
pub mod prelude {
    pub use hcsp_core::{
        Algorithm, BatchEngine, BatchOutcome, CallbackSink, CollectSink, ControlSink, CountSink,
        Engine, EnumStats, Epoch, EpochAdvance, EpochPublisher, ExpansionMode, MicroBatchStats,
        ParallelBasicEnum, ParallelBatchEnum, Parallelism, Path, PathQuery, PathSet, PathSink,
        QueryResponse, QuerySpec, ResultMode, SearchBuffers, SearchOrder, ServiceStats, SinkFlow,
        SpecOutcome, SpecSink, SplitPolicy, Stage, UpdateSummary, MAX_EPOCH_DELTAS,
    };
    pub use hcsp_graph::{DeltaGraph, DiGraph, Direction, GraphBuilder, GraphUpdate, VertexId};
    pub use hcsp_index::BatchIndex;
    pub use hcsp_server::{Client, PathServer, Reply, ServerConfig};
    pub use hcsp_service::{
        Abandoned, AdmissionError, BatchPolicy, DurabilityBackend, DurabilityOptions, FsyncPolicy,
        PathService, PathServiceBuilder, QueryHandle, QueryResult, RecoveryReport, SpecHandle,
        SpecResult, StorageError, UpdateHandle,
    };
}

pub use hcsp_core::{Algorithm, BatchEngine, PathQuery};
pub use hcsp_graph::{DiGraph, VertexId};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let queries = vec![PathQuery::new(0u32, 3u32, 3)];
        for algorithm in Algorithm::ALL {
            let outcome = BatchEngine::with_algorithm(algorithm).run(&graph, &queries);
            assert_eq!(outcome.count(0), 2, "{algorithm}");
        }
    }
}
