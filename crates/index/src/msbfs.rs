//! Bit-parallel multi-source BFS ("The more the merrier", Then et al., ref. \[36\] of the paper).
//!
//! Up to 64 BFS roots are advanced together: each vertex keeps a 64-bit `seen` mask and a
//! 64-bit `frontier` mask, one bit per root. A single pass over the adjacency of the
//! current frontier advances *all* roots whose bit is set, so the graph is scanned once per
//! BFS *level* for the whole root batch instead of once per root. Roots beyond 64 are
//! processed in consecutive batches.

use crate::sparse_map::SparseDistanceMap;
use hcsp_graph::{DiGraph, Direction, VertexId};

/// The per-root sparse distance maps produced by one multi-source BFS run.
#[derive(Debug, Clone)]
pub struct MsBfsResult {
    /// `maps[i]` holds the bounded distances from `roots[i]`.
    pub maps: Vec<SparseDistanceMap>,
    /// The roots, in the order the maps are stored.
    pub roots: Vec<VertexId>,
    /// Total number of (vertex, root) visitation events — the work metric reported by the
    /// index-construction stage of the experiments.
    pub visited_pairs: usize,
}

impl MsBfsResult {
    /// The distance map of a given root, if that root was part of the run.
    pub fn map_of(&self, root: VertexId) -> Option<&SparseDistanceMap> {
        self.roots
            .iter()
            .position(|&r| r == root)
            .map(|i| &self.maps[i])
    }
}

/// Runs a bounded multi-source BFS from `roots` in the given direction.
///
/// Every root obtains its own bounded distance map: `dist(root, v)` for all `v` within
/// `max_hops` hops of `root` (hops counted along `dir`). Duplicate roots are allowed and
/// produce identical (shared BFS, separately stored) maps, because the batch query sets of
/// the paper may repeat a source or target vertex across queries.
pub fn multi_source_bfs(
    graph: &DiGraph,
    roots: &[VertexId],
    dir: Direction,
    max_hops: u32,
) -> MsBfsResult {
    let mut maps: Vec<SparseDistanceMap> = Vec::with_capacity(roots.len());
    let mut visited_pairs = 0usize;

    // Deduplicate roots for the traversal itself; duplicates share the computed map.
    let mut unique_roots: Vec<VertexId> = roots.to_vec();
    unique_roots.sort_unstable();
    unique_roots.dedup();

    let mut unique_maps: Vec<(VertexId, SparseDistanceMap)> =
        Vec::with_capacity(unique_roots.len());
    for chunk in unique_roots.chunks(64) {
        let chunk_maps = ms_bfs_chunk(graph, chunk, dir, max_hops, &mut visited_pairs);
        unique_maps.extend(chunk.iter().copied().zip(chunk_maps));
    }

    for &root in roots {
        let map = unique_maps
            .iter()
            .find(|(r, _)| *r == root)
            .map(|(_, m)| m.clone())
            .unwrap_or_default();
        maps.push(map);
    }
    MsBfsResult {
        maps,
        roots: roots.to_vec(),
        visited_pairs,
    }
}

/// Advances one batch of at most 64 roots.
fn ms_bfs_chunk(
    graph: &DiGraph,
    roots: &[VertexId],
    dir: Direction,
    max_hops: u32,
    visited_pairs: &mut usize,
) -> Vec<SparseDistanceMap> {
    debug_assert!(roots.len() <= 64);
    let n = graph.num_vertices();
    let mut seen: Vec<u64> = vec![0; n];
    let mut frontier: Vec<(VertexId, u64)> = Vec::with_capacity(roots.len());
    let mut collected: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); roots.len()];

    for (bit, &root) in roots.iter().enumerate() {
        let mask = 1u64 << bit;
        if root.index() >= n {
            continue;
        }
        if seen[root.index()] & mask == 0 {
            seen[root.index()] |= mask;
            collected[bit].push((root, 0));
            *visited_pairs += 1;
        }
        frontier.push((root, mask));
    }
    // Merge frontier entries that refer to the same vertex (duplicate roots in one chunk).
    coalesce(&mut frontier);

    let mut depth = 0u32;
    while !frontier.is_empty() && depth < max_hops {
        depth += 1;
        let mut next: Vec<(VertexId, u64)> = Vec::with_capacity(frontier.len());
        for &(u, mask) in &frontier {
            for &w in graph.neighbors(u, dir) {
                let fresh = mask & !seen[w.index()];
                if fresh != 0 {
                    seen[w.index()] |= fresh;
                    next.push((w, fresh));
                    let mut bits = fresh;
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        collected[bit].push((w, depth));
                        *visited_pairs += 1;
                    }
                }
            }
        }
        coalesce(&mut next);
        frontier = next;
    }

    collected
        .into_iter()
        .map(SparseDistanceMap::from_pairs)
        .collect()
}

/// Merges frontier entries sharing a vertex by OR-ing their masks, keeping the frontier
/// linear in the number of distinct frontier vertices.
fn coalesce(frontier: &mut Vec<(VertexId, u64)>) {
    if frontier.len() <= 1 {
        return;
    }
    frontier.sort_unstable_by_key(|&(v, _)| v);
    let mut write = 0usize;
    for read in 1..frontier.len() {
        if frontier[read].0 == frontier[write].0 {
            frontier[write].1 |= frontier[read].1;
        } else {
            write += 1;
            frontier[write] = frontier[read];
        }
    }
    frontier.truncate(write + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{complete, grid, path};
    use hcsp_graph::traversal::{bfs_distances_bounded, UNREACHED};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    /// Compares every MS-BFS map against an independent single-source BFS.
    fn assert_matches_single_source(graph: &DiGraph, roots: &[VertexId], dir: Direction, k: u32) {
        let result = multi_source_bfs(graph, roots, dir, k);
        assert_eq!(result.maps.len(), roots.len());
        for (i, &root) in roots.iter().enumerate() {
            let reference = bfs_distances_bounded(graph, root, dir, k);
            let map = &result.maps[i];
            for vertex in graph.vertices() {
                let expected = reference[vertex.index()];
                match map.get(vertex) {
                    Some(d) => assert_eq!(d, expected, "root {root} vertex {vertex}"),
                    None => assert_eq!(expected, UNREACHED, "root {root} vertex {vertex}"),
                }
            }
        }
    }

    #[test]
    fn matches_single_source_on_grid() {
        let g = grid(6, 6);
        let roots: Vec<_> = (0..8).map(v).collect();
        assert_matches_single_source(&g, &roots, Direction::Forward, 5);
        assert_matches_single_source(&g, &roots, Direction::Backward, 5);
    }

    #[test]
    fn matches_single_source_on_complete_graph() {
        let g = complete(20);
        let roots: Vec<_> = (0..20).map(v).collect();
        assert_matches_single_source(&g, &roots, Direction::Forward, 3);
    }

    #[test]
    fn more_than_64_roots_use_multiple_chunks() {
        let g = grid(10, 10);
        let roots: Vec<_> = (0..100).map(v).collect();
        assert_matches_single_source(&g, &roots, Direction::Forward, 4);
    }

    #[test]
    fn duplicate_roots_share_results() {
        let g = path(6);
        let roots = vec![v(0), v(0), v(2)];
        let r = multi_source_bfs(&g, &roots, Direction::Forward, 3);
        assert_eq!(r.maps[0], r.maps[1]);
        assert_eq!(r.map_of(v(2)).unwrap().get(v(4)), Some(2));
        assert_eq!(r.map_of(v(5)), None);
    }

    #[test]
    fn zero_hop_bound_only_contains_roots() {
        let g = complete(5);
        let r = multi_source_bfs(&g, &[v(1), v(3)], Direction::Forward, 0);
        for (i, root) in [v(1), v(3)].iter().enumerate() {
            assert_eq!(r.maps[i].len(), 1);
            assert_eq!(r.maps[i].get(*root), Some(0));
        }
    }

    #[test]
    fn visited_pairs_counts_work() {
        let g = path(5);
        let r = multi_source_bfs(&g, &[v(0)], Direction::Forward, 10);
        // Path 0->1->2->3->4: 5 visitation events for a single root.
        assert_eq!(r.visited_pairs, 5);
    }

    #[test]
    fn empty_roots_yield_empty_result() {
        let g = path(3);
        let r = multi_source_bfs(&g, &[], Direction::Forward, 3);
        assert!(r.maps.is_empty());
        assert_eq!(r.visited_pairs, 0);
    }
}
