//! Sparse per-root distance maps.
//!
//! For hop bounds of 3–7 the vertices within distance `k` of a root are typically a small
//! fraction of `V`, so the index stores them as a sorted `(vertex, distance)` array:
//! lookups are `O(log |Γ|)`, iteration is cache-friendly, and memory is proportional to the
//! neighbourhood actually reached instead of `O(|V|)` per root.

use hcsp_graph::VertexId;

/// A sorted sparse map from vertex to bounded hop distance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseDistanceMap {
    entries: Vec<(VertexId, u32)>,
}

impl SparseDistanceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map from unsorted `(vertex, distance)` pairs (deduplicating by minimum
    /// distance, which is what a BFS frontier union requires).
    pub fn from_pairs(mut pairs: Vec<(VertexId, u32)>) -> Self {
        pairs.sort_unstable_by_key(|&(v, d)| (v, d));
        pairs.dedup_by_key(|&mut (v, _)| v);
        SparseDistanceMap { entries: pairs }
    }

    /// Number of vertices with a recorded (finite) distance.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no vertex is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bounded distance of `v`, or `None` when the vertex is farther than the bound
    /// (the paper treats those as distance ∞).
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        self.entries
            .binary_search_by_key(&v, |&(vertex, _)| vertex)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Distance with ∞ mapped to `u32::MAX`, convenient for arithmetic pruning checks.
    #[inline]
    pub fn distance_or_inf(&self, v: VertexId) -> u32 {
        self.get(v).unwrap_or(crate::INF)
    }

    /// Whether `v` lies within the bound.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.get(v).is_some()
    }

    /// Records `d` for `v` if it is smaller than the stored distance (or if `v` is
    /// absent). Returns whether the map changed.
    ///
    /// This is the primitive of incremental index maintenance after edge insertions:
    /// inserts can only *shorten* bounded distances, so a minimum-merge is exact.
    pub fn insert_min(&mut self, v: VertexId, d: u32) -> bool {
        match self.entries.binary_search_by_key(&v, |&(vertex, _)| vertex) {
            Ok(i) => {
                if d < self.entries[i].1 {
                    self.entries[i].1 = d;
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.entries.insert(i, (v, d));
                true
            }
        }
    }

    /// Iterates `(vertex, distance)` pairs in increasing vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The vertices recorded in this map (the hop-constrained neighbourhood Γ).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.entries.iter().map(|&(v, _)| v)
    }

    /// Size of the intersection of the vertex sets of two maps.
    ///
    /// Used by the query-similarity measure µ (Def. 4.5): `|Γ(qA) ∩ Γ(qB)|`.
    pub fn intersection_size(&self, other: &SparseDistanceMap) -> usize {
        let mut a = self.entries.iter().peekable();
        let mut b = other.entries.iter().peekable();
        let mut count = 0;
        while let (Some(&&(va, _)), Some(&&(vb, _))) = (a.peek(), b.peek()) {
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    count += 1;
                    a.next();
                    b.next();
                }
            }
        }
        count
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(VertexId, u32)>()
    }
}

impl FromIterator<(VertexId, u32)> for SparseDistanceMap {
    fn from_iter<T: IntoIterator<Item = (VertexId, u32)>>(iter: T) -> Self {
        SparseDistanceMap::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn from_pairs_sorts_and_keeps_minimum_distance() {
        let m = SparseDistanceMap::from_pairs(vec![(v(5), 2), (v(1), 1), (v(5), 1), (v(3), 0)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(v(5)), Some(1));
        assert_eq!(m.get(v(1)), Some(1));
        assert_eq!(m.get(v(3)), Some(0));
        assert_eq!(m.get(v(2)), None);
        assert!(m.contains(v(1)));
        assert!(!m.contains(v(9)));
        assert_eq!(m.distance_or_inf(v(9)), u32::MAX);
    }

    #[test]
    fn iteration_is_sorted_by_vertex() {
        let m: SparseDistanceMap = vec![(v(9), 3), (v(2), 1), (v(4), 2)].into_iter().collect();
        let order: Vec<_> = m.vertices().collect();
        assert_eq!(order, vec![v(2), v(4), v(9)]);
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn intersection_size_counts_common_vertices() {
        let a: SparseDistanceMap = vec![(v(1), 1), (v(2), 1), (v(3), 2)].into_iter().collect();
        let b: SparseDistanceMap = vec![(v(2), 4), (v(3), 1), (v(7), 1)].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.intersection_size(&SparseDistanceMap::new()), 0);
    }

    #[test]
    fn insert_min_only_lowers_distances() {
        let mut m: SparseDistanceMap = vec![(v(2), 3), (v(5), 1)].into_iter().collect();
        assert!(m.insert_min(v(2), 2), "lowering an entry changes the map");
        assert!(!m.insert_min(v(2), 2), "equal distance is a no-op");
        assert!(!m.insert_min(v(5), 4), "larger distance is a no-op");
        assert!(m.insert_min(v(3), 7), "absent vertex is inserted");
        assert_eq!(m.get(v(2)), Some(2));
        assert_eq!(m.get(v(3)), Some(7));
        assert_eq!(m.get(v(5)), Some(1));
        // The sorted-by-vertex invariant survives the insertion.
        let order: Vec<_> = m.vertices().collect();
        assert_eq!(order, vec![v(2), v(3), v(5)]);
    }

    #[test]
    fn empty_map_behaviour() {
        let m = SparseDistanceMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(v(0)), None);
        assert_eq!(m.heap_bytes(), 0);
    }
}
