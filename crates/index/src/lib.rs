//! # hcsp-index
//!
//! Bounded-distance index for batch HC-s-t path enumeration.
//!
//! PathEnum's pruning rule (Lemma 3.1 of the paper) needs, while extending a partial path
//! ending at `v'`, the values `dist_G(v'', t)` (forward search) and `dist_{G^r}(v'', s)`
//! (backward search) for every candidate neighbour `v''`. For a *batch* of queries, the
//! baseline `BasicEnum` and the contributed `BatchEnum` both build this index once per
//! batch with **multi-source BFS** from the source set `S = ∪ q.s` and the target set
//! `T = ∪ q.t` (Algorithm 1 / Algorithm 4, lines 1–2), following the bit-parallel MS-BFS
//! technique of Then et al. ("The more the merrier", ref. \[36\]).
//!
//! Two representations are provided:
//!
//! * [`msbfs::multi_source_bfs`] — the raw bit-parallel traversal, processing up to 64
//!   roots per machine word.
//! * [`DistanceIndex`] — the per-root sparse distance maps the enumeration algorithms
//!   query (`dist(root, v) ≤ k_max` entries only; everything else is implicitly ∞), plus
//!   the hop-constrained neighbourhoods Γ/Γr reused by query clustering (Def. 4.4:
//!   "we do not need to compute Γ(q) and Γr(q) specialized for query clustering as these
//!   vertices have been explored during the procedure of the index construction").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance_index;
pub mod msbfs;
pub mod sparse_map;

pub use distance_index::{AnchorDistances, BatchIndex, DeleteOutcome, DistanceIndex, IndexStats};
pub use msbfs::{multi_source_bfs, MsBfsResult};
pub use sparse_map::SparseDistanceMap;

/// Distance value meaning "farther than the bound / unreachable" (treated as ∞).
pub const INF: u32 = u32::MAX;
