//! The per-batch distance index used by every enumeration algorithm.
//!
//! For a batch of queries `Q`, let `S = ∪ q.s` and `T = ∪ q.t`. The index stores
//!
//! * `dist_G(s, v)` for every `s ∈ S` and every `v` within the hop bound (a forward
//!   multi-source BFS from `S` on `G`), and
//! * `dist_G(v, t)` for every `t ∈ T` and every `v` within the hop bound (a backward
//!   multi-source BFS from `T`, i.e. a forward BFS on `G^r`).
//!
//! These are exactly the quantities needed by Lemma 3.1's pruning rule, and their support
//! sets are the hop-constrained neighbourhoods Γ(q) / Γr(q) reused for query clustering
//! (Def. 4.4): the index is built once per batch and shared by every downstream stage.

use crate::msbfs::multi_source_bfs;
use crate::sparse_map::SparseDistanceMap;
use crate::INF;
use hcsp_graph::{DiGraph, Direction, VertexId};
use std::time::{Duration, Instant};

/// Distances from one batch of roots, keyed by root vertex.
///
/// The number of distinct roots equals the number of distinct query endpoints (at most a
/// few hundred in the paper's workloads), so a sorted association list with binary-search
/// lookup is both compact and dependency-free.
#[derive(Debug, Clone, Default)]
pub struct DistanceIndex {
    roots: Vec<VertexId>,
    maps: Vec<SparseDistanceMap>,
    bound: u32,
}

impl DistanceIndex {
    /// Builds the index for `roots` by a bounded multi-source BFS in direction `dir`.
    ///
    /// With `dir == Forward` the entry for root `s` maps `v ↦ dist_G(s, v)`;
    /// with `dir == Backward` the entry for root `t` maps `v ↦ dist_G(v, t)`.
    pub fn build(graph: &DiGraph, roots: &[VertexId], dir: Direction, bound: u32) -> (Self, usize) {
        let mut unique: Vec<VertexId> = roots.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let result = multi_source_bfs(graph, &unique, dir, bound);
        let index = DistanceIndex {
            roots: unique,
            maps: result.maps,
            bound,
        };
        (index, result.visited_pairs)
    }

    /// Extends the index with any of `roots` that are not indexed yet, running one more
    /// bounded multi-source BFS *only* for the missing roots (at the existing bound).
    ///
    /// This is the incremental path of the long-lived serving mode: across micro-batches
    /// most query endpoints repeat, so only the genuinely new roots cost BFS work. Returns
    /// `(newly added roots, visited pairs of the incremental BFS)` — both zero when every
    /// root is already covered.
    pub fn extend(
        &mut self,
        graph: &DiGraph,
        roots: &[VertexId],
        dir: Direction,
    ) -> (usize, usize) {
        let mut missing: Vec<VertexId> = roots
            .iter()
            .copied()
            .filter(|r| self.roots.binary_search(r).is_err())
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return (0, 0);
        }
        let result = multi_source_bfs(graph, &missing, dir, self.bound);
        // Re-establish the sorted-roots invariant the binary-search lookups rely on.
        let added = result.roots.len();
        let old_roots = std::mem::take(&mut self.roots);
        let old_maps = std::mem::take(&mut self.maps);
        let mut merged: Vec<(VertexId, SparseDistanceMap)> = old_roots
            .into_iter()
            .zip(old_maps)
            .chain(result.roots.into_iter().zip(result.maps))
            .collect();
        merged.sort_by_key(|&(r, _)| r);
        (self.roots, self.maps) = merged.into_iter().unzip();
        (added, result.visited_pairs)
    }

    /// Whether every root in `roots` is indexed.
    pub fn covers_roots(&self, roots: &[VertexId]) -> bool {
        roots.iter().all(|r| self.roots.binary_search(r).is_ok())
    }

    /// The indexed roots, sorted ascending.
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// The hop bound the index was built with.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Number of roots in the index.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The sparse distance map of `root`, if `root` is indexed.
    pub fn map_of(&self, root: VertexId) -> Option<&SparseDistanceMap> {
        self.roots.binary_search(&root).ok().map(|i| &self.maps[i])
    }

    /// Bounded distance between `root` and `v` (`INF` when out of range or not indexed).
    #[inline]
    pub fn distance(&self, root: VertexId, v: VertexId) -> u32 {
        self.map_of(root).map_or(INF, |m| m.distance_or_inf(v))
    }

    /// The vertices within `k` hops of `root`, i.e. Γ(root, k); empty if not indexed.
    ///
    /// `k` is clamped to the index bound, mirroring the paper's reuse of index entries for
    /// the clustering neighbourhoods.
    pub fn neighborhood(&self, root: VertexId, k: u32) -> Vec<VertexId> {
        match self.map_of(root) {
            None => Vec::new(),
            Some(map) => map
                .iter()
                .filter(|&(_, d)| d <= k)
                .map(|(v, _)| v)
                .collect(),
        }
    }

    /// Total number of `(root, vertex)` entries stored.
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(SparseDistanceMap::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.roots.len() * std::mem::size_of::<VertexId>()
            + self
                .maps
                .iter()
                .map(SparseDistanceMap::heap_bytes)
                .sum::<usize>()
    }
}

/// Timing and size statistics of an index build, feeding the `BuildIndex` bar of the
/// time-decomposition experiment (Fig. 9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Wall-clock time of the two multi-source BFS runs.
    pub build_time: Duration,
    /// Total `(root, vertex)` visitation events during both BFS runs.
    pub visited_pairs: usize,
    /// Number of stored `(root, vertex)` distance entries.
    pub stored_entries: usize,
}

/// The complete two-sided index for a batch: source side (`dist_G(s, ·)`) and target side
/// (`dist_G(·, t)`).
#[derive(Debug, Clone, Default)]
pub struct BatchIndex {
    sources: DistanceIndex,
    targets: DistanceIndex,
    stats: IndexStats,
}

impl BatchIndex {
    /// Builds both index sides with bound `k_max` (the largest hop constraint in the batch).
    pub fn build(graph: &DiGraph, sources: &[VertexId], targets: &[VertexId], k_max: u32) -> Self {
        let start = Instant::now();
        let (source_index, visited_s) =
            DistanceIndex::build(graph, sources, Direction::Forward, k_max);
        let (target_index, visited_t) =
            DistanceIndex::build(graph, targets, Direction::Backward, k_max);
        let stats = IndexStats {
            build_time: start.elapsed(),
            visited_pairs: visited_s + visited_t,
            stored_entries: source_index.total_entries() + target_index.total_entries(),
        };
        BatchIndex {
            sources: source_index,
            targets: target_index,
            stats,
        }
    }

    /// `dist_G(s, v)` (or `INF`), i.e. the hop distance used to prune the *backward* search.
    #[inline]
    pub fn dist_from_source(&self, s: VertexId, v: VertexId) -> u32 {
        self.sources.distance(s, v)
    }

    /// `dist_G(v, t)` (or `INF`), i.e. the hop distance used to prune the *forward* search.
    #[inline]
    pub fn dist_to_target(&self, v: VertexId, t: VertexId) -> u32 {
        self.targets.distance(t, v)
    }

    /// Distance towards the query "anchor" in the given search direction: a forward search
    /// towards target `anchor` uses `dist_G(v, anchor)`, a backward search towards source
    /// `anchor` uses `dist_G(anchor, v)`.
    #[inline]
    pub fn dist_towards(&self, dir: Direction, v: VertexId, anchor: VertexId) -> u32 {
        match dir {
            Direction::Forward => self.dist_to_target(v, anchor),
            Direction::Backward => self.dist_from_source(anchor, v),
        }
    }

    /// Γ(q): vertices reachable from `s` within `k` hops on `G`.
    pub fn gamma_forward(&self, s: VertexId, k: u32) -> Vec<VertexId> {
        self.sources.neighborhood(s, k)
    }

    /// Γr(q): vertices reachable from `t` within `k` hops on `G^r`.
    pub fn gamma_backward(&self, t: VertexId, k: u32) -> Vec<VertexId> {
        self.targets.neighborhood(t, k)
    }

    /// The hop bound both sides were built with.
    pub fn bound(&self) -> u32 {
        self.sources.bound()
    }

    /// Whether the index can serve a batch with the given endpoint sets and largest hop
    /// constraint without any additional BFS work.
    ///
    /// An index covering a *superset* of the batch's roots at a *larger* bound stays
    /// correct: extra roots are never consulted, and pruning only compares distances
    /// against per-query budgets, so additional far entries are filtered downstream.
    pub fn covers(&self, sources: &[VertexId], targets: &[VertexId], k_max: u32) -> bool {
        k_max <= self.bound()
            && self.sources.covers_roots(sources)
            && self.targets.covers_roots(targets)
    }

    /// Incrementally extends both sides with any missing roots at the current bound,
    /// returning the number of newly indexed roots.
    ///
    /// Callers must handle bound growth separately (rebuild): entries of the existing maps
    /// were truncated at the old bound and cannot be deepened in place. The serving-mode
    /// engine does exactly that — extend while `k_max <= bound()`, rebuild otherwise.
    pub fn extend(&mut self, graph: &DiGraph, sources: &[VertexId], targets: &[VertexId]) -> usize {
        let start = Instant::now();
        let (added_s, visited_s) = self.sources.extend(graph, sources, Direction::Forward);
        let (added_t, visited_t) = self.targets.extend(graph, targets, Direction::Backward);
        self.stats.build_time += start.elapsed();
        self.stats.visited_pairs += visited_s + visited_t;
        self.stats.stored_entries = self.sources.total_entries() + self.targets.total_entries();
        added_s + added_t
    }

    /// The source-side distance index.
    pub fn source_index(&self) -> &DistanceIndex {
        &self.sources
    }

    /// The target-side distance index.
    pub fn target_index(&self) -> &DistanceIndex {
        &self.targets
    }

    /// Build statistics (time, traversal work, stored entries).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{grid, layered_dag, path};
    use hcsp_graph::traversal::{bfs_distances, UNREACHED};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn batch_index_matches_reference_bfs() {
        let g = grid(5, 5);
        let sources = vec![v(0), v(6)];
        let targets = vec![v(24), v(12)];
        let index = BatchIndex::build(&g, &sources, &targets, 6);

        for &s in &sources {
            let reference = bfs_distances(&g, s, Direction::Forward);
            for vertex in g.vertices() {
                let expected = if reference[vertex.index()] <= 6 {
                    reference[vertex.index()]
                } else {
                    UNREACHED
                };
                assert_eq!(index.dist_from_source(s, vertex), expected);
            }
        }
        for &t in &targets {
            let reference = bfs_distances(&g, t, Direction::Backward);
            for vertex in g.vertices() {
                let expected = if reference[vertex.index()] <= 6 {
                    reference[vertex.index()]
                } else {
                    UNREACHED
                };
                assert_eq!(index.dist_to_target(vertex, t), expected);
            }
        }
    }

    #[test]
    fn dist_towards_selects_the_right_side() {
        let g = path(5);
        let index = BatchIndex::build(&g, &[v(0)], &[v(4)], 10);
        assert_eq!(index.dist_towards(Direction::Forward, v(1), v(4)), 3);
        assert_eq!(index.dist_towards(Direction::Backward, v(1), v(0)), 1);
    }

    #[test]
    fn unindexed_roots_report_infinity() {
        let g = path(4);
        let index = BatchIndex::build(&g, &[v(0)], &[v(3)], 5);
        assert_eq!(index.dist_from_source(v(2), v(3)), INF);
        assert_eq!(index.dist_to_target(v(0), v(1)), INF);
        assert!(index.source_index().map_of(v(2)).is_none());
    }

    #[test]
    fn bound_truncates_far_vertices() {
        let g = path(10);
        let index = BatchIndex::build(&g, &[v(0)], &[v(9)], 3);
        assert_eq!(index.dist_from_source(v(0), v(3)), 3);
        assert_eq!(index.dist_from_source(v(0), v(4)), INF);
        assert_eq!(index.dist_to_target(v(6), v(9)), 3);
        assert_eq!(index.dist_to_target(v(5), v(9)), INF);
    }

    #[test]
    fn gamma_respects_per_query_k() {
        let g = grid(4, 4);
        let index = BatchIndex::build(&g, &[v(0)], &[v(15)], 6);
        let gamma2 = index.gamma_forward(v(0), 2);
        let gamma6 = index.gamma_forward(v(0), 6);
        assert!(gamma2.len() < gamma6.len());
        assert!(gamma2.contains(&v(0)));
        assert!(gamma2.contains(&v(5)));
        assert!(!gamma2.contains(&v(15)));
        let gamma_back = index.gamma_backward(v(15), 2);
        assert!(gamma_back.contains(&v(10)));
        assert!(!gamma_back.contains(&v(0)));
    }

    #[test]
    fn stats_are_populated() {
        let g = layered_dag(3, 4);
        let index = BatchIndex::build(&g, &[v(0)], &[VertexId::new(g.num_vertices() - 1)], 4);
        assert!(index.stats().stored_entries > 0);
        assert!(index.stats().visited_pairs >= index.stats().stored_entries);
        assert!(index.source_index().heap_bytes() > 0);
        assert_eq!(index.source_index().bound(), 4);
        assert_eq!(index.source_index().num_roots(), 1);
    }

    #[test]
    fn extend_adds_only_missing_roots() {
        let g = grid(5, 5);
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(24)], 6);
        assert!(index.covers(&[v(0)], &[v(24)], 6));
        assert!(!index.covers(&[v(0), v(6)], &[v(24)], 6));
        assert!(!index.covers(&[v(0)], &[v(24)], 7));

        // Extending with an already-covered root is free.
        assert_eq!(index.extend(&g, &[v(0)], &[v(24)]), 0);

        // Extending with new roots matches a from-scratch build exactly.
        let added = index.extend(&g, &[v(0), v(6)], &[v(24), v(12)]);
        assert_eq!(added, 2);
        assert!(index.covers(&[v(0), v(6)], &[v(24), v(12)], 6));
        let fresh = BatchIndex::build(&g, &[v(0), v(6)], &[v(24), v(12)], 6);
        for vertex in g.vertices() {
            for &s in &[v(0), v(6)] {
                assert_eq!(
                    index.dist_from_source(s, vertex),
                    fresh.dist_from_source(s, vertex)
                );
            }
            for &t in &[v(24), v(12)] {
                assert_eq!(
                    index.dist_to_target(vertex, t),
                    fresh.dist_to_target(vertex, t)
                );
            }
        }
        assert_eq!(index.stats().stored_entries, fresh.stats().stored_entries);
        assert_eq!(index.source_index().roots(), &[v(0), v(6)]);
    }

    #[test]
    fn extend_keeps_roots_sorted_for_lookup() {
        let g = path(8);
        let mut index = BatchIndex::build(&g, &[v(5)], &[v(7)], 7);
        index.extend(&g, &[v(1), v(3)], &[v(7)]);
        index.extend(&g, &[v(0)], &[v(6)]);
        assert_eq!(
            index.source_index().roots(),
            &[v(0), v(1), v(3), v(5)],
            "roots must stay sorted across extensions"
        );
        assert_eq!(index.dist_from_source(v(0), v(7)), 7);
        assert_eq!(index.dist_from_source(v(3), v(6)), 3);
        assert_eq!(index.dist_to_target(v(2), v(6)), 4);
    }

    #[test]
    fn duplicate_roots_are_deduplicated() {
        let g = path(5);
        let (index, _) = DistanceIndex::build(&g, &[v(0), v(0), v(1)], Direction::Forward, 4);
        assert_eq!(index.num_roots(), 2);
        assert_eq!(index.distance(v(0), v(4)), 4);
        assert_eq!(index.neighborhood(v(7), 2), Vec::<VertexId>::new());
    }
}
