//! The per-batch distance index used by every enumeration algorithm.
//!
//! For a batch of queries `Q`, let `S = ∪ q.s` and `T = ∪ q.t`. The index stores
//!
//! * `dist_G(s, v)` for every `s ∈ S` and every `v` within the hop bound (a forward
//!   multi-source BFS from `S` on `G`), and
//! * `dist_G(v, t)` for every `t ∈ T` and every `v` within the hop bound (a backward
//!   multi-source BFS from `T`, i.e. a forward BFS on `G^r`).
//!
//! These are exactly the quantities needed by Lemma 3.1's pruning rule, and their support
//! sets are the hop-constrained neighbourhoods Γ(q) / Γr(q) reused for query clustering
//! (Def. 4.4): the index is built once per batch and shared by every downstream stage.

use crate::msbfs::multi_source_bfs;
use crate::sparse_map::SparseDistanceMap;
use crate::INF;
use hcsp_graph::{DiGraph, Direction, VertexId};
use std::time::{Duration, Instant};

/// Outcome of one precise delete pass ([`DistanceIndex::note_deletions`] /
/// [`BatchIndex::note_deletions`]).
///
/// `marked + supported` is what the conservative rule (dirty-mark on every
/// `dist(r, to) == dist(r, from) + 1` hit) would have re-BFSed, so `supported` counts
/// re-BFS work the survivor scan avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// Roots newly marked dirty (an affected vertex lost its last equal-length parent).
    pub marked: usize,
    /// Roots hit by a deleted shortest-path edge but kept exact by a surviving
    /// equal-length alternative — their re-BFS was skipped.
    pub supported: usize,
}

impl DeleteOutcome {
    /// Component-wise sum, for combining the two sides of a [`BatchIndex`].
    fn merge(self, other: DeleteOutcome) -> DeleteOutcome {
        DeleteOutcome {
            marked: self.marked + other.marked,
            supported: self.supported + other.supported,
        }
    }
}

/// Distances from one batch of roots, keyed by root vertex.
///
/// The number of distinct roots equals the number of distinct query endpoints (at most a
/// few hundred in the paper's workloads), so a sorted association list with binary-search
/// lookup is both compact and dependency-free.
#[derive(Debug, Clone, Default)]
pub struct DistanceIndex {
    roots: Vec<VertexId>,
    maps: Vec<SparseDistanceMap>,
    bound: u32,
    /// Roots whose maps may be stale after edge deletions, sorted ascending. Keyed by
    /// vertex id (not position) so the set survives the root reordering of `extend`.
    dirty: Vec<VertexId>,
}

impl DistanceIndex {
    /// Builds the index for `roots` by a bounded multi-source BFS in direction `dir`.
    ///
    /// With `dir == Forward` the entry for root `s` maps `v ↦ dist_G(s, v)`;
    /// with `dir == Backward` the entry for root `t` maps `v ↦ dist_G(v, t)`.
    pub fn build(graph: &DiGraph, roots: &[VertexId], dir: Direction, bound: u32) -> (Self, usize) {
        let mut unique: Vec<VertexId> = roots.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let result = multi_source_bfs(graph, &unique, dir, bound);
        let index = DistanceIndex {
            roots: unique,
            maps: result.maps,
            bound,
            dirty: Vec::new(),
        };
        (index, result.visited_pairs)
    }

    /// Orients an inserted/deleted graph edge `(u, v)` into a traversal edge for this
    /// index's search direction: forward indices walk `u → v`, backward indices (distances
    /// *to* a target, i.e. BFS on `G^r`) walk `v → u`.
    #[inline]
    fn orient(edge: (VertexId, VertexId), dir: Direction) -> (VertexId, VertexId) {
        match dir {
            Direction::Forward => edge,
            Direction::Backward => (edge.1, edge.0),
        }
    }

    /// Incrementally refreshes the index after the directed edges `edges` were *inserted*
    /// into `graph` (which must already contain them). Returns the number of `(root,
    /// vertex)` entries that gained a (shorter) distance.
    ///
    /// Insertions can only shorten bounded distances, so a relaxation pass seeded at the
    /// new edges' heads is exact: for every root `r` with `dist(r, u)` recorded, an
    /// inserted traversal edge `u → v` offers `dist(r, u) + 1` to `v`, and any improvement
    /// propagates outwards by BFS. Roots currently marked dirty (pending deletions) are
    /// skipped — their maps are rebuilt wholesale by [`DistanceIndex::flush_dirty`].
    pub fn apply_insertions(
        &mut self,
        graph: &DiGraph,
        edges: &[(VertexId, VertexId)],
        dir: Direction,
    ) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut improved = 0usize;
        let mut queue: std::collections::VecDeque<(VertexId, u32)> =
            std::collections::VecDeque::new();
        for (i, &root) in self.roots.iter().enumerate() {
            if self.dirty.binary_search(&root).is_ok() {
                continue;
            }
            let map = &mut self.maps[i];
            queue.clear();
            for &edge in edges {
                let (from, to) = Self::orient(edge, dir);
                if let Some(df) = map.get(from) {
                    let cand = df.saturating_add(1);
                    if cand <= self.bound && map.insert_min(to, cand) {
                        improved += 1;
                        queue.push_back((to, cand));
                    }
                }
            }
            while let Some((x, dx)) = queue.pop_front() {
                // Stale queue entries (improved again since enqueued) must not expand.
                if map.get(x) != Some(dx) || dx == self.bound {
                    continue;
                }
                let cand = dx + 1;
                for &w in graph.neighbors(x, dir) {
                    if map.insert_min(w, cand) {
                        improved += 1;
                        queue.push_back((w, cand));
                    }
                }
            }
        }
        improved
    }

    /// Precisely marks roots whose maps are stale after the directed edges `edges` were
    /// *deleted* from `graph` (which must already reflect the deletions).
    ///
    /// A deletion can only invalidate `dist(r, ·)` if some shortest path from `r` used the
    /// deleted edge, which requires `dist(r, to) == dist(r, from) + 1` for the oriented
    /// traversal edge `from → to`. Even then the map often survives: if `to` keeps another
    /// in-parent `u` (in the post-delete graph) with `dist(r, u) == dist(r, to) - 1`, an
    /// equal-length alternative path exists and *every* bounded distance is preserved —
    /// by induction on distance levels, each vertex at level `d` keeps a surviving parent
    /// at level `d - 1`, so no re-BFS is needed. Only when a hit vertex loses its last
    /// equal-length parent is the root marked dirty.
    ///
    /// Marked roots keep stale (under-estimating) entries until
    /// [`DistanceIndex::flush_dirty`] re-BFSes them; callers must flush before relying on
    /// the index for pruning correctness — [`DistanceIndex::map_of`] enforces this with a
    /// debug assertion.
    pub fn note_deletions(
        &mut self,
        graph: &DiGraph,
        edges: &[(VertexId, VertexId)],
        dir: Direction,
    ) -> DeleteOutcome {
        let mut outcome = DeleteOutcome::default();
        if edges.is_empty() {
            return outcome;
        }
        'roots: for (i, &root) in self.roots.iter().enumerate() {
            if self.dirty.binary_search(&root).is_ok() {
                continue;
            }
            let map = &self.maps[i];
            let mut hit = false;
            for &edge in edges {
                let (from, to) = Self::orient(edge, dir);
                let on_shortest = map
                    .get(from)
                    .is_some_and(|df| map.distance_or_inf(to) == df.saturating_add(1));
                if !on_shortest {
                    continue;
                }
                hit = true;
                // Survivor scan: an equal-length parent of `to` left in the post-delete
                // graph proves dist(r, to) — and hence the whole map — is unchanged.
                let dt = map.distance_or_inf(to);
                let survives = graph
                    .neighbors(to, dir.reverse())
                    .iter()
                    .any(|&u| map.get(u) == Some(dt - 1));
                if !survives {
                    let pos = self.dirty.binary_search(&root).unwrap_err();
                    self.dirty.insert(pos, root);
                    outcome.marked += 1;
                    continue 'roots;
                }
            }
            if hit {
                outcome.supported += 1;
            }
        }
        outcome
    }

    /// Re-BFSes every dirty root against the current `graph`, replacing their maps.
    /// Returns `(refreshed roots, visited pairs of the re-BFS)`.
    pub fn flush_dirty(&mut self, graph: &DiGraph, dir: Direction) -> (usize, usize) {
        if self.dirty.is_empty() {
            return (0, 0);
        }
        let dirty = std::mem::take(&mut self.dirty);
        let result = multi_source_bfs(graph, &dirty, dir, self.bound);
        for (root, map) in result.roots.into_iter().zip(result.maps) {
            let i = self
                .roots
                .binary_search(&root)
                .expect("dirty roots are indexed roots");
            self.maps[i] = map;
        }
        (dirty.len(), result.visited_pairs)
    }

    /// Number of roots currently marked dirty (awaiting a lazy re-BFS).
    pub fn num_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// The roots currently marked dirty, sorted ascending.
    pub fn dirty_roots(&self) -> &[VertexId] {
        &self.dirty
    }

    /// Extends the index with any of `roots` that are not indexed yet, running one more
    /// bounded multi-source BFS *only* for the missing roots (at the existing bound).
    ///
    /// This is the incremental path of the long-lived serving mode: across micro-batches
    /// most query endpoints repeat, so only the genuinely new roots cost BFS work. Returns
    /// `(newly added roots, visited pairs of the incremental BFS)` — both zero when every
    /// root is already covered.
    pub fn extend(
        &mut self,
        graph: &DiGraph,
        roots: &[VertexId],
        dir: Direction,
    ) -> (usize, usize) {
        let mut missing: Vec<VertexId> = roots
            .iter()
            .copied()
            .filter(|r| self.roots.binary_search(r).is_err())
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return (0, 0);
        }
        let result = multi_source_bfs(graph, &missing, dir, self.bound);
        // Re-establish the sorted-roots invariant the binary-search lookups rely on.
        let added = result.roots.len();
        let old_roots = std::mem::take(&mut self.roots);
        let old_maps = std::mem::take(&mut self.maps);
        let mut merged: Vec<(VertexId, SparseDistanceMap)> = old_roots
            .into_iter()
            .zip(old_maps)
            .chain(result.roots.into_iter().zip(result.maps))
            .collect();
        merged.sort_by_key(|&(r, _)| r);
        (self.roots, self.maps) = merged.into_iter().unzip();
        (added, result.visited_pairs)
    }

    /// Whether every root in `roots` is indexed.
    pub fn covers_roots(&self, roots: &[VertexId]) -> bool {
        roots.iter().all(|r| self.roots.binary_search(r).is_ok())
    }

    /// The indexed roots, sorted ascending.
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// The hop bound the index was built with.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Number of roots in the index.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The sparse distance map of `root`, if `root` is indexed.
    ///
    /// # Panics (debug builds)
    ///
    /// Panics if `root` is currently marked dirty: between `note_deletions` and
    /// `flush_dirty` the map under-estimates distances, which silently breaks the
    /// Lemma 3.1 pruning bound. Every read path (`distance`, `neighborhood`, and the
    /// engine's O(1) `Exists` probe) funnels through here, so the unsafe window is
    /// enforced rather than merely documented.
    pub fn map_of(&self, root: VertexId) -> Option<&SparseDistanceMap> {
        debug_assert!(
            self.dirty.binary_search(&root).is_err(),
            "DistanceIndex read for root {root} inside the note_deletions -> flush_dirty \
             window: stale distances under-estimate and break Lemma 3.1 pruning"
        );
        self.roots.binary_search(&root).ok().map(|i| &self.maps[i])
    }

    /// Bounded distance between `root` and `v` (`INF` when out of range or not indexed).
    #[inline]
    pub fn distance(&self, root: VertexId, v: VertexId) -> u32 {
        self.map_of(root).map_or(INF, |m| m.distance_or_inf(v))
    }

    /// The vertices within `k` hops of `root`, i.e. Γ(root, k); empty if not indexed.
    ///
    /// `k` is clamped to the index bound, mirroring the paper's reuse of index entries for
    /// the clustering neighbourhoods.
    pub fn neighborhood(&self, root: VertexId, k: u32) -> Vec<VertexId> {
        match self.map_of(root) {
            None => Vec::new(),
            Some(map) => map
                .iter()
                .filter(|&(_, d)| d <= k)
                .map(|(v, _)| v)
                .collect(),
        }
    }

    /// Total number of `(root, vertex)` entries stored.
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(SparseDistanceMap::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.roots.len() * std::mem::size_of::<VertexId>()
            + self
                .maps
                .iter()
                .map(SparseDistanceMap::heap_bytes)
                .sum::<usize>()
    }
}

/// Timing and size statistics of an index build, feeding the `BuildIndex` bar of the
/// time-decomposition experiment (Fig. 9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Wall-clock time of the two multi-source BFS runs.
    pub build_time: Duration,
    /// Total `(root, vertex)` visitation events during both BFS runs.
    pub visited_pairs: usize,
    /// Number of stored `(root, vertex)` distance entries.
    pub stored_entries: usize,
}

/// A distance view pre-resolved to one anchor's sparse map; see
/// [`BatchIndex::anchor_view`].
///
/// `None` means the anchor is not indexed (every distance is `INF`), which happens only
/// for queries whose endpoints were absent from the batch the index was built for.
#[derive(Debug, Clone, Copy)]
pub struct AnchorDistances<'a> {
    map: Option<&'a SparseDistanceMap>,
}

impl AnchorDistances<'_> {
    /// Bounded distance between `v` and the pre-resolved anchor (`INF` when out of range
    /// or the anchor is not indexed). Equals `dist_towards(dir, v, anchor)` for the
    /// `(dir, anchor)` pair the view was created with.
    #[inline]
    pub fn dist(&self, v: VertexId) -> u32 {
        self.map.map_or(INF, |m| m.distance_or_inf(v))
    }
}

/// The complete two-sided index for a batch: source side (`dist_G(s, ·)`) and target side
/// (`dist_G(·, t)`).
#[derive(Debug, Clone, Default)]
pub struct BatchIndex {
    sources: DistanceIndex,
    targets: DistanceIndex,
    stats: IndexStats,
}

impl BatchIndex {
    /// Builds both index sides with bound `k_max` (the largest hop constraint in the batch).
    pub fn build(graph: &DiGraph, sources: &[VertexId], targets: &[VertexId], k_max: u32) -> Self {
        let start = Instant::now();
        let (source_index, visited_s) =
            DistanceIndex::build(graph, sources, Direction::Forward, k_max);
        let (target_index, visited_t) =
            DistanceIndex::build(graph, targets, Direction::Backward, k_max);
        let stats = IndexStats {
            build_time: start.elapsed(),
            visited_pairs: visited_s + visited_t,
            stored_entries: source_index.total_entries() + target_index.total_entries(),
        };
        BatchIndex {
            sources: source_index,
            targets: target_index,
            stats,
        }
    }

    /// `dist_G(s, v)` (or `INF`), i.e. the hop distance used to prune the *backward* search.
    #[inline]
    pub fn dist_from_source(&self, s: VertexId, v: VertexId) -> u32 {
        self.sources.distance(s, v)
    }

    /// `dist_G(v, t)` (or `INF`), i.e. the hop distance used to prune the *forward* search.
    #[inline]
    pub fn dist_to_target(&self, v: VertexId, t: VertexId) -> u32 {
        self.targets.distance(t, v)
    }

    /// Distance towards the query "anchor" in the given search direction: a forward search
    /// towards target `anchor` uses `dist_G(v, anchor)`, a backward search towards source
    /// `anchor` uses `dist_G(anchor, v)`.
    #[inline]
    pub fn dist_towards(&self, dir: Direction, v: VertexId, anchor: VertexId) -> u32 {
        match dir {
            Direction::Forward => self.dist_to_target(v, anchor),
            Direction::Backward => self.dist_from_source(anchor, v),
        }
    }

    /// Pre-resolves the distance map consulted by [`BatchIndex::dist_towards`] for one
    /// `(direction, anchor)` pair.
    ///
    /// A half search queries the *same* anchor for every scanned edge; resolving the
    /// anchor's sparse map once per traversal replaces the per-edge root binary search
    /// with a direct map probe. The view borrows the index, so it naturally cannot
    /// outlive an index mutation.
    #[inline]
    pub fn anchor_view(&self, dir: Direction, anchor: VertexId) -> AnchorDistances<'_> {
        let map = match dir {
            Direction::Forward => self.targets.map_of(anchor),
            Direction::Backward => self.sources.map_of(anchor),
        };
        AnchorDistances { map }
    }

    /// Γ(q): vertices reachable from `s` within `k` hops on `G`.
    pub fn gamma_forward(&self, s: VertexId, k: u32) -> Vec<VertexId> {
        self.sources.neighborhood(s, k)
    }

    /// Γr(q): vertices reachable from `t` within `k` hops on `G^r`.
    pub fn gamma_backward(&self, t: VertexId, k: u32) -> Vec<VertexId> {
        self.targets.neighborhood(t, k)
    }

    /// The hop bound both sides were built with.
    pub fn bound(&self) -> u32 {
        self.sources.bound()
    }

    /// Whether the index can serve a batch with the given endpoint sets and largest hop
    /// constraint without any additional BFS work.
    ///
    /// An index covering a *superset* of the batch's roots at a *larger* bound stays
    /// correct: extra roots are never consulted, and pruning only compares distances
    /// against per-query budgets, so additional far entries are filtered downstream.
    pub fn covers(&self, sources: &[VertexId], targets: &[VertexId], k_max: u32) -> bool {
        k_max <= self.bound()
            && self.sources.covers_roots(sources)
            && self.targets.covers_roots(targets)
    }

    /// Incrementally extends both sides with any missing roots at the current bound,
    /// returning the number of newly indexed roots.
    ///
    /// Callers must handle bound growth separately (rebuild): entries of the existing maps
    /// were truncated at the old bound and cannot be deepened in place. The serving-mode
    /// engine does exactly that — extend while `k_max <= bound()`, rebuild otherwise.
    pub fn extend(&mut self, graph: &DiGraph, sources: &[VertexId], targets: &[VertexId]) -> usize {
        let start = Instant::now();
        let (added_s, visited_s) = self.sources.extend(graph, sources, Direction::Forward);
        let (added_t, visited_t) = self.targets.extend(graph, targets, Direction::Backward);
        self.stats.build_time += start.elapsed();
        self.stats.visited_pairs += visited_s + visited_t;
        self.stats.stored_entries = self.sources.total_entries() + self.targets.total_entries();
        added_s + added_t
    }

    /// Incrementally refreshes both sides after `edges` were inserted into `graph` (which
    /// must already contain them). Returns the number of improved/added distance entries.
    ///
    /// Exact on its own: insertions only shorten distances, and the relaxation pass
    /// computes the new fixpoint (see [`DistanceIndex::apply_insertions`]).
    pub fn apply_insertions(&mut self, graph: &DiGraph, edges: &[(VertexId, VertexId)]) -> usize {
        let start = Instant::now();
        let improved = self
            .sources
            .apply_insertions(graph, edges, Direction::Forward)
            + self
                .targets
                .apply_insertions(graph, edges, Direction::Backward);
        self.stats.build_time += start.elapsed();
        self.stats.stored_entries = self.sources.total_entries() + self.targets.total_entries();
        improved
    }

    /// Precisely marks roots invalidated by the deletion of `edges` from `graph` (which
    /// must already reflect the deletions), deferring the re-BFS to
    /// [`BatchIndex::flush_dirty`]. Roots whose affected vertices keep an equal-length
    /// alternative parent are proven exact and skipped (see
    /// [`DistanceIndex::note_deletions`]).
    ///
    /// The index is **not safe to query** between `note_deletions` and `flush_dirty`:
    /// stale entries under-estimate distances, which breaks the Lemma 3.1 pruning bound.
    /// The serving engine flushes lazily — right before the next batch runs — and
    /// [`DistanceIndex::map_of`] debug-asserts the window is respected.
    pub fn note_deletions(
        &mut self,
        graph: &DiGraph,
        edges: &[(VertexId, VertexId)],
    ) -> DeleteOutcome {
        self.sources
            .note_deletions(graph, edges, Direction::Forward)
            .merge(
                self.targets
                    .note_deletions(graph, edges, Direction::Backward),
            )
    }

    /// Re-BFSes every dirty root of both sides against the current `graph`. Returns the
    /// number of roots refreshed.
    pub fn flush_dirty(&mut self, graph: &DiGraph) -> usize {
        if self.num_dirty() == 0 {
            return 0;
        }
        let start = Instant::now();
        let (roots_s, visited_s) = self.sources.flush_dirty(graph, Direction::Forward);
        let (roots_t, visited_t) = self.targets.flush_dirty(graph, Direction::Backward);
        self.stats.build_time += start.elapsed();
        self.stats.visited_pairs += visited_s + visited_t;
        self.stats.stored_entries = self.sources.total_entries() + self.targets.total_entries();
        roots_s + roots_t
    }

    /// Number of roots (both sides) awaiting a lazy re-BFS.
    pub fn num_dirty(&self) -> usize {
        self.sources.num_dirty() + self.targets.num_dirty()
    }

    /// The source-side distance index.
    pub fn source_index(&self) -> &DistanceIndex {
        &self.sources
    }

    /// The target-side distance index.
    pub fn target_index(&self) -> &DistanceIndex {
        &self.targets
    }

    /// Build statistics (time, traversal work, stored entries).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{grid, layered_dag, path};
    use hcsp_graph::traversal::{bfs_distances, UNREACHED};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn batch_index_matches_reference_bfs() {
        let g = grid(5, 5);
        let sources = vec![v(0), v(6)];
        let targets = vec![v(24), v(12)];
        let index = BatchIndex::build(&g, &sources, &targets, 6);

        for &s in &sources {
            let reference = bfs_distances(&g, s, Direction::Forward);
            for vertex in g.vertices() {
                let expected = if reference[vertex.index()] <= 6 {
                    reference[vertex.index()]
                } else {
                    UNREACHED
                };
                assert_eq!(index.dist_from_source(s, vertex), expected);
            }
        }
        for &t in &targets {
            let reference = bfs_distances(&g, t, Direction::Backward);
            for vertex in g.vertices() {
                let expected = if reference[vertex.index()] <= 6 {
                    reference[vertex.index()]
                } else {
                    UNREACHED
                };
                assert_eq!(index.dist_to_target(vertex, t), expected);
            }
        }
    }

    #[test]
    fn dist_towards_selects_the_right_side() {
        let g = path(5);
        let index = BatchIndex::build(&g, &[v(0)], &[v(4)], 10);
        assert_eq!(index.dist_towards(Direction::Forward, v(1), v(4)), 3);
        assert_eq!(index.dist_towards(Direction::Backward, v(1), v(0)), 1);
    }

    #[test]
    fn anchor_view_matches_dist_towards() {
        let g = grid(4, 4);
        let index = BatchIndex::build(&g, &[v(0)], &[v(15)], 6);
        for (dir, anchor) in [(Direction::Forward, v(15)), (Direction::Backward, v(0))] {
            let view = index.anchor_view(dir, anchor);
            for vertex in g.vertices() {
                assert_eq!(view.dist(vertex), index.dist_towards(dir, vertex, anchor));
            }
        }
        // An unindexed anchor resolves to the always-INF view.
        let empty = index.anchor_view(Direction::Forward, v(3));
        assert_eq!(empty.dist(v(0)), INF);
    }

    #[test]
    fn unindexed_roots_report_infinity() {
        let g = path(4);
        let index = BatchIndex::build(&g, &[v(0)], &[v(3)], 5);
        assert_eq!(index.dist_from_source(v(2), v(3)), INF);
        assert_eq!(index.dist_to_target(v(0), v(1)), INF);
        assert!(index.source_index().map_of(v(2)).is_none());
    }

    #[test]
    fn bound_truncates_far_vertices() {
        let g = path(10);
        let index = BatchIndex::build(&g, &[v(0)], &[v(9)], 3);
        assert_eq!(index.dist_from_source(v(0), v(3)), 3);
        assert_eq!(index.dist_from_source(v(0), v(4)), INF);
        assert_eq!(index.dist_to_target(v(6), v(9)), 3);
        assert_eq!(index.dist_to_target(v(5), v(9)), INF);
    }

    #[test]
    fn gamma_respects_per_query_k() {
        let g = grid(4, 4);
        let index = BatchIndex::build(&g, &[v(0)], &[v(15)], 6);
        let gamma2 = index.gamma_forward(v(0), 2);
        let gamma6 = index.gamma_forward(v(0), 6);
        assert!(gamma2.len() < gamma6.len());
        assert!(gamma2.contains(&v(0)));
        assert!(gamma2.contains(&v(5)));
        assert!(!gamma2.contains(&v(15)));
        let gamma_back = index.gamma_backward(v(15), 2);
        assert!(gamma_back.contains(&v(10)));
        assert!(!gamma_back.contains(&v(0)));
    }

    #[test]
    fn stats_are_populated() {
        let g = layered_dag(3, 4);
        let index = BatchIndex::build(&g, &[v(0)], &[VertexId::new(g.num_vertices() - 1)], 4);
        assert!(index.stats().stored_entries > 0);
        assert!(index.stats().visited_pairs >= index.stats().stored_entries);
        assert!(index.source_index().heap_bytes() > 0);
        assert_eq!(index.source_index().bound(), 4);
        assert_eq!(index.source_index().num_roots(), 1);
    }

    #[test]
    fn extend_adds_only_missing_roots() {
        let g = grid(5, 5);
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(24)], 6);
        assert!(index.covers(&[v(0)], &[v(24)], 6));
        assert!(!index.covers(&[v(0), v(6)], &[v(24)], 6));
        assert!(!index.covers(&[v(0)], &[v(24)], 7));

        // Extending with an already-covered root is free.
        assert_eq!(index.extend(&g, &[v(0)], &[v(24)]), 0);

        // Extending with new roots matches a from-scratch build exactly.
        let added = index.extend(&g, &[v(0), v(6)], &[v(24), v(12)]);
        assert_eq!(added, 2);
        assert!(index.covers(&[v(0), v(6)], &[v(24), v(12)], 6));
        let fresh = BatchIndex::build(&g, &[v(0), v(6)], &[v(24), v(12)], 6);
        for vertex in g.vertices() {
            for &s in &[v(0), v(6)] {
                assert_eq!(
                    index.dist_from_source(s, vertex),
                    fresh.dist_from_source(s, vertex)
                );
            }
            for &t in &[v(24), v(12)] {
                assert_eq!(
                    index.dist_to_target(vertex, t),
                    fresh.dist_to_target(vertex, t)
                );
            }
        }
        assert_eq!(index.stats().stored_entries, fresh.stats().stored_entries);
        assert_eq!(index.source_index().roots(), &[v(0), v(6)]);
    }

    #[test]
    fn extend_keeps_roots_sorted_for_lookup() {
        let g = path(8);
        let mut index = BatchIndex::build(&g, &[v(5)], &[v(7)], 7);
        index.extend(&g, &[v(1), v(3)], &[v(7)]);
        index.extend(&g, &[v(0)], &[v(6)]);
        assert_eq!(
            index.source_index().roots(),
            &[v(0), v(1), v(3), v(5)],
            "roots must stay sorted across extensions"
        );
        assert_eq!(index.dist_from_source(v(0), v(7)), 7);
        assert_eq!(index.dist_from_source(v(3), v(6)), 3);
        assert_eq!(index.dist_to_target(v(2), v(6)), 4);
    }

    /// Asserts both sides of `index` agree with a fresh build over the same roots/bound.
    fn assert_matches_fresh(graph: &hcsp_graph::DiGraph, index: &BatchIndex) {
        let fresh = BatchIndex::build(
            graph,
            index.source_index().roots(),
            index.target_index().roots(),
            index.bound(),
        );
        for vertex in graph.vertices() {
            for &s in index.source_index().roots() {
                assert_eq!(
                    index.dist_from_source(s, vertex),
                    fresh.dist_from_source(s, vertex),
                    "source {s} vertex {vertex}"
                );
            }
            for &t in index.target_index().roots() {
                assert_eq!(
                    index.dist_to_target(vertex, t),
                    fresh.dist_to_target(vertex, t),
                    "target {t} vertex {vertex}"
                );
            }
        }
        assert_eq!(index.stats().stored_entries, fresh.stats().stored_entries);
    }

    #[test]
    fn insertions_refresh_incrementally_to_the_fresh_fixpoint() {
        use hcsp_graph::DeltaGraph;
        // A long path: inserting shortcuts shortens many distances at once.
        let g0 = path(12);
        let mut index = BatchIndex::build(&g0, &[v(0), v(2)], &[v(11)], 9);

        let inserted = vec![(v(0), v(5)), (v(5), v(11)), (v(3), v(9))];
        let mut delta = DeltaGraph::new(g0);
        for &(u, w) in &inserted {
            assert!(delta.insert_edge(u, w));
        }
        let g1 = delta.compact();

        let improved = index.apply_insertions(&g1, &inserted);
        assert!(improved > 0, "shortcuts must improve some entries");
        assert_eq!(index.num_dirty(), 0, "insertions never mark roots dirty");
        assert_eq!(index.dist_from_source(v(0), v(11)), 2);
        assert_matches_fresh(&g1, &index);

        // Re-applying the same insertions is a fixpoint: nothing improves further.
        assert_eq!(index.apply_insertions(&g1, &inserted), 0);
    }

    #[test]
    fn insertions_reach_vertices_beyond_the_old_graph() {
        use hcsp_graph::DeltaGraph;
        let g0 = path(4);
        let mut index = BatchIndex::build(&g0, &[v(0)], &[v(3)], 6);
        // Grow the graph: 3 -> 4 -> 5 plus a back edge 5 -> 0.
        let inserted = vec![(v(3), v(4)), (v(4), v(5)), (v(5), v(0))];
        let mut delta = DeltaGraph::new(g0);
        for &(u, w) in &inserted {
            assert!(delta.insert_edge(u, w));
        }
        let g1 = delta.compact();
        assert_eq!(g1.num_vertices(), 6);
        index.apply_insertions(&g1, &inserted);
        assert_eq!(index.dist_from_source(v(0), v(5)), 5);
        // The back edge now gives every vertex a route *to* the old target side too.
        assert_matches_fresh(&g1, &index);
    }

    #[test]
    fn deletions_mark_dirty_lazily_and_flush_rebuilds() {
        use hcsp_graph::DeltaGraph;
        let g1 = grid(5, 5);
        let mut index = BatchIndex::build(&g1, &[v(0), v(6)], &[v(24)], 8);

        // Delete two edges on shortest routes from the indexed roots.
        let deleted = vec![(v(0), v(1)), (v(11), v(12))];
        let mut delta = DeltaGraph::new(g1);
        for &(u, w) in &deleted {
            assert!(delta.delete_edge(u, w));
        }
        let g2 = delta.compact();

        let outcome = index.note_deletions(&g2, &deleted);
        assert!(
            outcome.marked > 0,
            "losing the last equal-length parent must mark roots"
        );
        assert!(
            outcome.supported > 0,
            "roots with a surviving equal-length alternative skip the re-BFS"
        );
        assert_eq!(index.num_dirty(), outcome.marked, "flush is deferred");

        let refreshed = index.flush_dirty(&g2);
        assert_eq!(refreshed, outcome.marked);
        assert_eq!(index.num_dirty(), 0);
        assert_matches_fresh(&g2, &index);

        // A second flush is free.
        assert_eq!(index.flush_dirty(&g2), 0);
    }

    #[test]
    fn unrelated_deletions_do_not_mark_roots() {
        let g = grid(4, 4);
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(15)], 3);
        // Edge (14, 15) sits outside the bounded neighbourhood of source 0 at bound 3,
        // and 14 -> 15 is a last hop whose reverse orientation (15 -> 14) is exactly one
        // hop from target 15 — so only the target side can be affected; edge (1, 0) has
        // dist(0, 1) = 1 but dist(0, 0) = 0 != 2, so the source side is unaffected.
        assert_eq!(
            index.note_deletions(&g, &[(v(1), v(0))]),
            DeleteOutcome::default()
        );
        assert_eq!(index.num_dirty(), 0);
    }

    #[test]
    fn mixed_update_sequence_converges_to_fresh_build() {
        use hcsp_graph::{DeltaGraph, GraphUpdate};
        let g0 = grid(4, 4);
        let mut delta = DeltaGraph::new(g0.clone());
        let mut index = BatchIndex::build(&g0, &[v(0), v(5)], &[v(15), v(10)], 7);

        let steps: Vec<Vec<GraphUpdate>> = vec![
            vec![GraphUpdate::insert(0u32, 15u32)],
            vec![
                GraphUpdate::delete(0u32, 1u32),
                GraphUpdate::insert(3u32, 0u32),
            ],
            vec![
                GraphUpdate::delete(0u32, 15u32),
                GraphUpdate::insert(12u32, 3u32),
                GraphUpdate::delete(5u32, 6u32),
            ],
        ];
        for step in &steps {
            let inserted: Vec<_> = step
                .iter()
                .filter(|u| u.is_insert())
                .map(|u| u.edge())
                .collect();
            let deleted: Vec<_> = step
                .iter()
                .filter(|u| !u.is_insert())
                .map(|u| u.edge())
                .collect();
            for update in step {
                assert!(delta.apply(update));
            }
            let graph = delta.compact();
            index.note_deletions(&graph, &deleted);
            index.apply_insertions(&graph, &inserted);
            index.flush_dirty(&graph);
            assert_matches_fresh(&graph, &index);
        }
    }

    #[test]
    fn extend_preserves_dirty_marks_across_root_merges() {
        let g = path(8);
        let mut index = BatchIndex::build(&g, &[v(4)], &[v(7)], 7);
        let g2 = hcsp_graph::DiGraph::from_edge_list(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7)],
        )
        .unwrap();
        // Deleting 4 -> 5 severs the path with no alternative: both sides go dirty.
        assert_eq!(index.note_deletions(&g2, &[(v(4), v(5))]).marked, 2);
        assert!(index.source_index().num_dirty() > 0);
        // Extending with new roots re-sorts the root/map arrays; the dirty set must
        // follow the root *ids*, not their positions.
        index.extend(&g2, &[v(0), v(2)], &[v(7)]);
        let refreshed = index.flush_dirty(&g2);
        assert_eq!(refreshed, 2);
        assert_matches_fresh(&g2, &index);
    }

    /// A diamond with a tail: `0 -> {1, 2} -> 3 -> 4`. Vertex 3 has two equal-length
    /// parents from source 0, so deleting one of `(1, 3)` / `(2, 3)` leaves the source
    /// side exact while the target side (which loses its only route through the deleted
    /// edge's tail) goes dirty.
    fn diamond() -> hcsp_graph::DiGraph {
        hcsp_graph::DiGraph::from_edge_list(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn surviving_equal_length_parent_skips_the_rebfs() {
        use hcsp_graph::DeltaGraph;
        let g = diamond();
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(4)], 4);
        let mut delta = DeltaGraph::new(g);
        assert!(delta.delete_edge(v(1), v(3)));
        let g2 = delta.compact();

        let outcome = index.note_deletions(&g2, &[(v(1), v(3))]);
        // Source root 0: dist(0, 3) = 2 is hit, but parent 2 survives at distance 1.
        // Target root 4: dist(1, 4) = 2 is hit and vertex 1 loses its only out-edge.
        assert_eq!(
            outcome,
            DeleteOutcome {
                marked: 1,
                supported: 1
            }
        );
        assert_eq!(index.source_index().num_dirty(), 0);
        assert_eq!(index.target_index().dirty_roots(), &[v(4)]);

        // The clean side stays readable inside the window; flushing restores the rest.
        assert_eq!(index.dist_from_source(v(0), v(3)), 2);
        assert_eq!(index.flush_dirty(&g2), 1);
        assert_matches_fresh(&g2, &index);
    }

    #[test]
    fn losing_the_last_equal_length_parent_marks_both_sides() {
        use hcsp_graph::DeltaGraph;
        let g = diamond();
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(4)], 4);
        let mut delta = DeltaGraph::new(g);
        assert!(delta.delete_edge(v(3), v(4)));
        let g2 = delta.compact();

        // Edge (3, 4) is the only route onto 4 in either direction: no survivors.
        let outcome = index.note_deletions(&g2, &[(v(3), v(4))]);
        assert_eq!(
            outcome,
            DeleteOutcome {
                marked: 2,
                supported: 0
            }
        );
        assert_eq!(index.flush_dirty(&g2), 2);
        assert_matches_fresh(&g2, &index);
    }

    /// Cross-validation against scratch BFS: for *every* single-edge deletion in a grid,
    /// a root is marked dirty **iff** its map actually changed — the survivor scan skips
    /// the re-BFS exactly when an equal-length alternative keeps every distance intact.
    #[test]
    fn delete_precision_is_exact_against_scratch_bfs() {
        use hcsp_graph::DeltaGraph;
        let g = grid(4, 4);
        let sources = vec![v(0), v(5)];
        let targets = vec![v(15), v(10)];
        let bound = 6;
        let clean = BatchIndex::build(&g, &sources, &targets, bound);

        for edge in g.edges() {
            let mut index = clean.clone();
            let mut delta = DeltaGraph::new(g.clone());
            assert!(delta.delete_edge(edge.0, edge.1));
            let g2 = delta.compact();
            index.note_deletions(&g2, &[edge]);

            let sides = [
                (index.source_index(), &sources, Direction::Forward),
                (index.target_index(), &targets, Direction::Backward),
            ];
            for (side, roots, dir) in sides {
                for &root in roots.iter() {
                    let reference = bfs_distances(&g2, root, dir);
                    let changed = g2.vertices().any(|vertex| {
                        let expected = if reference[vertex.index()] <= bound {
                            reference[vertex.index()]
                        } else {
                            UNREACHED
                        };
                        let old = match dir {
                            Direction::Forward => clean.dist_from_source(root, vertex),
                            Direction::Backward => clean.dist_to_target(vertex, root),
                        };
                        old != expected
                    });
                    assert_eq!(
                        side.dirty_roots().contains(&root),
                        changed,
                        "deleting {edge:?}: root {root} ({dir:?}) marked iff its map changed"
                    );
                }
            }
        }
    }

    #[test]
    fn reading_a_dirty_root_is_a_debug_panic() {
        use hcsp_graph::DeltaGraph;
        let g = path(4);
        let mut index = BatchIndex::build(&g, &[v(0)], &[v(3)], 5);
        let mut delta = DeltaGraph::new(g);
        assert!(delta.delete_edge(v(1), v(2)));
        let g2 = delta.compact();
        assert!(index.note_deletions(&g2, &[(v(1), v(2))]).marked > 0);

        if cfg!(debug_assertions) {
            let probe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                index.dist_from_source(v(0), v(3))
            }));
            assert!(
                probe.is_err(),
                "reading inside the note_deletions -> flush_dirty window must panic"
            );
        }
        index.flush_dirty(&g2);
        assert_eq!(index.dist_from_source(v(0), v(3)), INF);
    }

    #[test]
    fn duplicate_roots_are_deduplicated() {
        let g = path(5);
        let (index, _) = DistanceIndex::build(&g, &[v(0), v(0), v(1)], Direction::Forward, 4);
        assert_eq!(index.num_roots(), 2);
        assert_eq!(index.distance(v(0), v(4)), 4);
        assert_eq!(index.neighborhood(v(7), 2), Vec::<VertexId>::new());
    }
}
