//! The long-lived serving layer: accept typed query requests one at a time, execute them
//! in shared micro-batches.
//!
//! ```text
//!  submit_spec() ─► admission queue ─► batcher thread ─► micro-batch queue ─► worker pool
//!     │             (mpsc channel)     closes windows      (mpsc channel)    one reusable
//!     │                                by size/deadline                      Engine each
//!     ▼                                                                           │
//!  SpecHandle ◄──────────────────── per-query result slots ◄──────────── Engine::run_specs
//! ```
//!
//! Every worker owns a reusable [`Engine`], so the batch index survives across
//! micro-batches: repeated endpoints cost no BFS work, new endpoints extend the index
//! incrementally, and only a growing hop bound forces a rebuild. Each submission is a
//! typed [`QuerySpec`] — result mode plus optional path budget — executed through
//! [`Engine::run_specs`], so an `Exists` probe or a `FirstK` request stops paying
//! enumeration cost the moment it is satisfied even when it shares a micro-batch with
//! full-enumeration queries. The classic [`PathService::submit`] surface remains as a
//! `Collect`-mode wrapper.
//!
//! Graph updates ([`PathService::update`]) travel through the *same* admission queue as
//! queries: an update closes the open admission window and is applied to every worker
//! engine behind a rendezvous barrier before any later micro-batch starts, so each query
//! executes against exactly the snapshot defined by its admission order. Consecutive
//! updates sitting in the queue **coalesce into a single update batch** — one window
//! close and one rendezvous however many updates arrived back to back — which keeps
//! micro-batches large under update-heavy traffic.

use crate::policy::BatchPolicy;
use hcsp_core::{
    BatchEngine, Engine, MicroBatchStats, Parallelism, PathQuery, PathSet, QueryResponse,
    QuerySpec, ServiceStats, UpdateSummary,
};
use hcsp_graph::{DiGraph, GraphUpdate};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The typed answer to one served query spec.
#[derive(Debug)]
pub struct SpecResult {
    /// The mode-shaped response (existence bit, count, or paths).
    pub response: QueryResponse,
    /// Time the query spent in the admission queue before its micro-batch started.
    pub queue_wait: Duration,
    /// Size of the micro-batch the query was executed in.
    pub batch_size: usize,
}

/// The answer to one served `Collect`-mode query (the classic [`PathService::submit`]
/// surface).
#[derive(Debug)]
pub struct QueryResult {
    /// Every HC-s-t path of the query.
    pub paths: PathSet,
    /// Time the query spent in the admission queue before its micro-batch started.
    pub queue_wait: Duration,
    /// Size of the micro-batch the query was executed in.
    pub batch_size: usize,
}

/// Lifecycle of a result slot.
#[derive(Debug, Default)]
enum SlotState {
    /// The query is queued or executing.
    #[default]
    Pending,
    /// The result is available.
    Ready(SpecResult),
    /// The query will never be answered (its worker panicked mid-batch).
    Abandoned,
}

/// One-shot result slot shared between a worker and a [`SpecHandle`].
#[derive(Debug, Default)]
struct ResultSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResultSlot {
    fn fulfill(&self, result: SpecResult) {
        let mut state = self.state.lock().unwrap();
        *state = SlotState::Ready(result);
        self.ready.notify_all();
    }

    /// Marks a still-pending slot as never-to-be-answered, waking any waiter.
    fn abandon(&self) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// A claim on the typed result of one submitted [`QuerySpec`].
#[derive(Debug)]
pub struct SpecHandle {
    slot: Arc<ResultSlot>,
}

impl SpecHandle {
    /// Blocks until the spec's micro-batch has executed and returns the typed result.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the spec's micro-batch panicked (the query can
    /// never be answered; panicking here surfaces the failure instead of hanging forever).
    pub fn wait(self) -> SpecResult {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Ready(result) => return result,
                SlotState::Abandoned => {
                    panic!("query abandoned: the service worker executing it panicked")
                }
                SlotState::Pending => state = self.slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }
}

/// A claim on the result of one submitted `Collect`-mode query (wraps a [`SpecHandle`]).
#[derive(Debug)]
pub struct QueryHandle {
    inner: SpecHandle,
}

impl QueryHandle {
    /// Blocks until the query's micro-batch has executed and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the query's micro-batch panicked (the query can
    /// never be answered; panicking here surfaces the failure instead of hanging forever).
    pub fn wait(self) -> QueryResult {
        let result = self.inner.wait();
        QueryResult {
            paths: result
                .response
                .into_paths()
                .expect("submit() always runs in Collect mode"),
            queue_wait: result.queue_wait,
            batch_size: result.batch_size,
        }
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

/// One queued query spec together with its arrival time and result slot.
struct Submission {
    spec: QuerySpec,
    submitted_at: Instant,
    slot: Arc<ResultSlot>,
}

impl Drop for Submission {
    /// A submission dropped without [`ResultSlot::fulfill`] (worker panic unwinding the
    /// batch, or an internal channel failure) must not leave its handle blocked forever.
    fn drop(&mut self) {
        self.slot.abandon();
    }
}

/// Lifecycle of an update slot (mirrors [`SlotState`] for graph updates).
#[derive(Debug, Default)]
enum UpdateState {
    /// The update is queued or being applied.
    #[default]
    Pending,
    /// Every worker engine has applied the update.
    Ready(UpdateSummary),
    /// The update will never complete (internal failure during dispatch).
    Abandoned,
}

/// One-shot completion slot shared between the worker pool and an [`UpdateHandle`].
#[derive(Debug, Default)]
struct UpdateSlot {
    state: Mutex<UpdateState>,
    ready: Condvar,
}

impl UpdateSlot {
    fn fulfill(&self, summary: UpdateSummary) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, UpdateState::Pending) {
            *state = UpdateState::Ready(summary);
            self.ready.notify_all();
        }
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, UpdateState::Pending) {
            *state = UpdateState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// A claim on the completion of one [`PathService::update`] call.
#[derive(Debug)]
pub struct UpdateHandle {
    slot: Arc<UpdateSlot>,
}

impl UpdateHandle {
    /// Blocks until every worker engine has applied the update batch and returns what
    /// the **dispatched batch** did (from the first worker to apply it; all workers hold
    /// identical graph replicas, so the summaries agree).
    ///
    /// Consecutive [`PathService::update`] calls sitting in the admission queue coalesce
    /// into one dispatched batch, and every coalesced handle resolves with that batch's
    /// *combined* summary — `applied`/`net_*` may therefore cover more mutations than
    /// this handle's own call submitted. Per-call attribution needs a `wait()` between
    /// the calls (which serialises them into separate batches).
    ///
    /// Once `wait` returns, every query submitted *after* the corresponding
    /// [`PathService::update`] call executes against the updated graph — queries
    /// submitted before it saw the old snapshot regardless.
    ///
    /// # Panics
    ///
    /// Panics if the service failed internally while dispatching the update (the update
    /// can never complete; panicking surfaces that instead of hanging forever).
    pub fn wait(self) -> UpdateSummary {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::take(&mut *state) {
                UpdateState::Ready(summary) => return summary,
                UpdateState::Abandoned => {
                    panic!("update abandoned: the service failed while dispatching it")
                }
                UpdateState::Pending => state = self.slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Whether the update has completed (non-blocking).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), UpdateState::Pending)
    }
}

/// An update batch travelling through the admission queue.
struct UpdateRequest {
    updates: Vec<GraphUpdate>,
    slot: Arc<UpdateSlot>,
}

/// One or more [`UpdateRequest`]s merged into a single dispatchable batch: consecutive
/// updates sitting in the admission queue coalesce here, so the worker pool pays one
/// window close and one rendezvous for the whole run of updates. Every original
/// submission keeps its own completion slot; all of them resolve with the combined
/// batch's summary.
struct CoalescedUpdate {
    updates: Arc<Vec<GraphUpdate>>,
    slots: Vec<Arc<UpdateSlot>>,
}

/// Everything that can enter the admission queue, in one serialised order: the position
/// of an update among the queries defines which snapshot each query sees.
enum Admission {
    Query(Submission),
    Update(UpdateRequest),
}

/// Rendezvous point all workers must reach before any post-update batch runs.
///
/// The batcher enqueues one [`WorkItem::Update`] ticket per worker. A worker that takes a
/// ticket applies the updates to *its* engine and then blocks here until the remaining
/// workers have done the same — because each waiting worker holds exactly one ticket and
/// the queue is FIFO, no worker can reach a batch enqueued after the update while any
/// pre-update batch is still executing, and no worker can take two tickets of the same
/// update. That barrier is what makes an update a consistent snapshot boundary across a
/// pool of replicated engines.
struct UpdateRendezvous {
    state: Mutex<RendezvousState>,
    done: Condvar,
    /// Completion slots of every coalesced update submission the batch absorbed.
    slots: Vec<Arc<UpdateSlot>>,
}

/// Arrival bookkeeping of one update's rendezvous.
struct RendezvousState {
    remaining: usize,
    /// First summary from a worker whose `apply_updates` succeeded directly.
    trusted: Option<UpdateSummary>,
    /// First summary from a worker that went through panic recovery — its re-apply ran
    /// over a possibly already-swapped graph, so its `applied`/`ignored` split is not
    /// representative. Only reported if *every* worker had to recover.
    fallback: Option<UpdateSummary>,
}

impl UpdateRendezvous {
    fn new(workers: usize, slots: Vec<Arc<UpdateSlot>>) -> Self {
        UpdateRendezvous {
            state: Mutex::new(RendezvousState {
                remaining: workers,
                trusted: None,
                fallback: None,
            }),
            done: Condvar::new(),
            slots,
        }
    }

    /// Reports this worker's application of the update and blocks until all have. The
    /// last arrival records the agreed summary into `stats` and *then* fulfills every
    /// coalesced handle — a caller returning from [`UpdateHandle::wait`] may immediately
    /// snapshot [`PathService::stats`] and must see the update counted.
    fn arrive(&self, summary: UpdateSummary, trusted: bool, stats: &Mutex<ServiceStats>) {
        let mut state = self.state.lock().unwrap();
        if trusted {
            if state.trusted.is_none() {
                state.trusted = Some(summary);
            }
        } else if state.fallback.is_none() {
            state.fallback = Some(summary);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            let agreed = state
                .trusted
                .or(state.fallback)
                .expect("at least one arrival recorded a summary");
            stats
                .lock()
                .unwrap()
                .record_update(&agreed, self.slots.len());
            for slot in &self.slots {
                slot.fulfill(agreed);
            }
            self.done.notify_all();
        } else {
            while state.remaining > 0 {
                state = self.done.wait(state).unwrap();
            }
        }
    }
}

impl Drop for UpdateRendezvous {
    /// Tickets dropped undelivered (service shutting down mid-dispatch) must not leave
    /// any coalesced update handle blocked forever.
    fn drop(&mut self) {
        for slot in &self.slots {
            slot.abandon();
        }
    }
}

/// One ticket of an update's rendezvous (the batcher enqueues one per worker).
struct UpdateTicket {
    updates: Arc<Vec<GraphUpdate>>,
    rendezvous: Arc<UpdateRendezvous>,
}

/// What the worker pool consumes: micro-batches of queries, or update tickets.
enum WorkItem {
    Batch(Vec<Submission>),
    Update(UpdateTicket),
}

/// Configures and starts a [`PathService`].
#[derive(Debug, Clone, Copy)]
pub struct PathServiceBuilder {
    config: BatchEngine,
    policy: BatchPolicy,
    workers: usize,
    index_root_cap: Option<usize>,
    parallel_cluster_cap: Option<usize>,
}

impl Default for PathServiceBuilder {
    fn default() -> Self {
        PathServiceBuilder {
            config: BatchEngine::default(),
            policy: BatchPolicy::default(),
            workers: 1,
            index_root_cap: None,
            parallel_cluster_cap: None,
        }
    }
}

/// Default similarity-cluster cap applied when micro-batches execute in parallel
/// (`exec_threads > 1`) and no explicit cap was configured. Micro-batching exists to form
/// *cohesive* batches, which routinely collapse into a single similarity cluster — one
/// cluster is one parallel unit, so without a cap the extra threads would idle. Eight
/// queries per sub-cluster keeps strong intra-cluster sharing while giving a typical
/// micro-batch several parallel units.
const DEFAULT_PARALLEL_CLUSTER_CAP: usize = 8;

impl PathServiceBuilder {
    /// The per-batch engine configuration (algorithm + γ); default `BatchEnum+`.
    pub fn engine(mut self, config: BatchEngine) -> Self {
        self.config = config;
        self
    }

    /// The micro-batch admission policy.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of worker threads executing micro-batches (each owns a reusable [`Engine`];
    /// values of 0 are treated as 1). One worker guarantees micro-batches execute in
    /// admission order.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Caps each worker's cached index at roughly `cap` roots (see
    /// [`Engine::set_index_root_cap`]): once exceeded, the cache is dropped and rebuilt
    /// from the next micro-batch alone. The default (`None`) keeps every endpoint ever
    /// served indexed — fastest for a stable working set, unbounded memory for a stream
    /// of one-off endpoints.
    pub fn index_root_cap(mut self, cap: usize) -> Self {
        self.index_root_cap = Some(cap);
        self
    }

    /// Caps the similarity-cluster size of *parallel* micro-batch execution (see
    /// [`Engine::set_parallel_cluster_cap`]). Only consulted when the policy's
    /// `exec_threads > 1`; defaults to a small cap in that case so that a cohesive
    /// micro-batch (often one big similarity cluster) still yields parallel units.
    pub fn parallel_cluster_cap(mut self, cap: usize) -> Self {
        self.parallel_cluster_cap = Some(cap);
        self
    }

    /// Starts the service over `graph`: spawns the batcher and the worker pool.
    pub fn start(self, graph: impl Into<Arc<DiGraph>>) -> PathService {
        let graph = graph.into();
        let workers = self.workers.max(1);
        let (submit_tx, submit_rx) = mpsc::channel::<Admission>();
        let (batch_tx, batch_rx) = mpsc::channel::<WorkItem>();
        let policy = self.policy;
        let batcher =
            std::thread::spawn(move || batcher_loop(submit_rx, batch_tx, policy, workers));

        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let workers = (0..workers)
            .map(|_| {
                let graph = Arc::clone(&graph);
                let batch_rx = Arc::clone(&batch_rx);
                let stats = Arc::clone(&stats);
                let config = self.config;
                let root_cap = self.index_root_cap;
                let exec_threads = self.policy.exec_threads.max(1);
                let cluster_cap = if exec_threads > 1 {
                    Some(
                        self.parallel_cluster_cap
                            .unwrap_or(DEFAULT_PARALLEL_CLUSTER_CAP),
                    )
                } else {
                    None
                };
                std::thread::spawn(move || {
                    worker_loop(
                        graph,
                        config,
                        root_cap,
                        exec_threads,
                        cluster_cap,
                        batch_rx,
                        stats,
                    )
                })
            })
            .collect();

        PathService {
            num_vertices: Mutex::new(graph.num_vertices()),
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            stats,
            started_at: Instant::now(),
        }
    }
}

/// Collects submissions into micro-batches according to the policy: a window opens when
/// its first query arrives and closes at the size cap, the deadline, **or the arrival of
/// a graph update**, whichever first.
///
/// Updates are serialised against micro-batches by their admission order: an update
/// closes the open window immediately (queries admitted before it execute against the
/// old snapshot) and is dispatched as one rendezvous ticket per worker *before* any later
/// window, so queries admitted after it can only execute once every worker engine has
/// switched to the new snapshot. Before dispatching, every update already sitting in the
/// admission queue *directly behind* the first one is drained into the same batch
/// (update-aware admission): a burst of `n` back-to-back updates costs one window close
/// and one worker rendezvous instead of `n`, so update-heavy traffic no longer shreds
/// micro-batches. A query encountered while draining ends the run (admission order is
/// preserved) and seeds the next window.
fn batcher_loop(
    rx: Receiver<Admission>,
    batch_tx: Sender<WorkItem>,
    policy: BatchPolicy,
    workers: usize,
) {
    // A query popped while draining coalesced updates; it must open the next window.
    let mut carry: Option<Submission> = None;
    loop {
        let first = match carry.take() {
            Some(submission) => Admission::Query(submission),
            None => match rx.recv() {
                Ok(admission) => admission,
                Err(_) => return,
            },
        };
        let first = match first {
            Admission::Update(request) => {
                let (combined, next_query) = coalesce_updates(request, &rx);
                carry = next_query;
                if !dispatch_update(&batch_tx, combined, workers) {
                    return;
                }
                continue;
            }
            Admission::Query(submission) => submission,
        };
        let mut batch = vec![first];
        let mut window_closer: Option<UpdateRequest> = None;
        if !policy.is_per_query() {
            let deadline = Instant::now() + policy.max_delay;
            while batch.len() < policy.max_batch_size {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match rx.recv_timeout(remaining) {
                    Ok(Admission::Query(submission)) => batch.push(submission),
                    Ok(Admission::Update(request)) => {
                        // The update is a snapshot boundary: the window closes here so
                        // everything already admitted runs against the old graph.
                        window_closer = Some(request);
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        if batch_tx.send(WorkItem::Batch(batch)).is_err() {
            return;
        }
        if let Some(request) = window_closer {
            let (combined, next_query) = coalesce_updates(request, &rx);
            carry = next_query;
            if !dispatch_update(&batch_tx, combined, workers) {
                return;
            }
        }
    }
    // Submission side disconnected: dropping `batch_tx` lets the workers drain and exit.
}

/// Drains every update immediately queued behind `first` into one combined batch
/// (mutations concatenated in admission order, one completion slot per original
/// submission). Draining stops at the first query — returned as the seed of the next
/// admission window — or when the queue runs dry.
fn coalesce_updates(
    first: UpdateRequest,
    rx: &Receiver<Admission>,
) -> (CoalescedUpdate, Option<Submission>) {
    let mut updates = first.updates;
    let mut slots = vec![first.slot];
    let mut carry = None;
    loop {
        match rx.try_recv() {
            Ok(Admission::Update(request)) => {
                updates.extend(request.updates);
                slots.push(request.slot);
            }
            Ok(Admission::Query(submission)) => {
                carry = Some(submission);
                break;
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
        }
    }
    (
        CoalescedUpdate {
            updates: Arc::new(updates),
            slots,
        },
        carry,
    )
}

/// Enqueues one rendezvous ticket per worker for a (coalesced) update batch. Returns
/// `false` when the worker pool is gone (the rendezvous' drop abandons every handle).
fn dispatch_update(batch_tx: &Sender<WorkItem>, combined: CoalescedUpdate, workers: usize) -> bool {
    let rendezvous = Arc::new(UpdateRendezvous::new(workers, combined.slots));
    for _ in 0..workers {
        let ticket = UpdateTicket {
            updates: Arc::clone(&combined.updates),
            rendezvous: Arc::clone(&rendezvous),
        };
        if batch_tx.send(WorkItem::Update(ticket)).is_err() {
            return false;
        }
    }
    true
}

/// Executes micro-batches on one reusable engine, routing results back per query.
/// `exec_threads > 1` runs each micro-batch on the cluster-sharded parallel executor,
/// with `cluster_cap` bounding the similarity clusters so cohesive batches still split
/// into parallel units.
fn worker_loop(
    graph: Arc<DiGraph>,
    config: BatchEngine,
    root_cap: Option<usize>,
    exec_threads: usize,
    cluster_cap: Option<usize>,
    batch_rx: Arc<Mutex<Receiver<WorkItem>>>,
    stats: Arc<Mutex<ServiceStats>>,
) {
    let mut engine = Engine::new(graph, config);
    engine.set_index_root_cap(root_cap);
    engine.set_parallel_cluster_cap(cluster_cap);
    loop {
        // Hold the lock only while waiting for one item; the next worker queues on the
        // mutex, so batches spread across the pool without a work-stealing scheduler.
        // The guard must be released *before* the item is processed — an update ticket
        // blocks at a rendezvous that the sibling workers can only reach through this
        // same mutex (a `match recv()` scrutinee would keep the guard alive across the
        // arms and deadlock the pool).
        let item = { batch_rx.lock().unwrap().recv() };
        let batch = match item {
            Ok(WorkItem::Batch(batch)) => batch,
            Ok(WorkItem::Update(ticket)) => {
                // Apply the update to this worker's engine replica, then wait at the
                // rendezvous until every sibling has done the same (see
                // `UpdateRendezvous`). A panicking apply must still arrive — a missing
                // arrival would deadlock the whole pool — so the recovery path rebuilds
                // a fresh engine (no cached index, nothing left to maintain) and
                // re-applies: updates are idempotent, so re-applying over a graph the
                // first attempt already swapped yields the same snapshot.
                let (summary, trusted) =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.apply_updates(&ticket.updates)
                    })) {
                        Ok(summary) => (summary, true),
                        Err(_) => {
                            let mut fresh = Engine::new(engine.graph_arc(), engine.config());
                            fresh.set_index_root_cap(engine.index_root_cap());
                            fresh.set_parallel_cluster_cap(engine.parallel_cluster_cap());
                            // The re-apply runs over a graph the first attempt may
                            // already have swapped, so this summary's applied/ignored
                            // split is untrustworthy — flag it as a fallback.
                            let summary = fresh.apply_updates(&ticket.updates);
                            engine = fresh;
                            (summary, false)
                        }
                    };
                ticket.rendezvous.arrive(summary, trusted, &stats);
                continue;
            }
            Err(_) => return,
        };

        let exec_start = Instant::now();
        let specs: Vec<QuerySpec> = batch.iter().map(|s| s.spec).collect();
        // A panicking batch (e.g. a query panicking deep in the enumeration) must not
        // kill the worker: the batch's submissions are dropped by the unwind, which
        // abandons their slots (waking the waiters), and the worker serves on with a
        // fresh engine — the cached index may be mid-mutation.
        let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if exec_threads > 1 {
                engine.run_specs_parallel(&specs, Parallelism::Fixed(exec_threads))
            } else {
                engine.run_specs(&specs)
            }
        })) {
            Ok(outcome) => outcome,
            Err(_) => {
                drop(batch);
                let mut fresh = Engine::new(engine.graph_arc(), engine.config());
                fresh.set_index_root_cap(engine.index_root_cap());
                fresh.set_parallel_cluster_cap(engine.parallel_cluster_cap());
                engine = fresh;
                continue;
            }
        };
        let exec_time = exec_start.elapsed();

        let batch_size = batch.len();
        let mut total_queue_wait = Duration::ZERO;
        let mut max_queue_wait = Duration::ZERO;
        for submission in &batch {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            total_queue_wait += queue_wait;
            max_queue_wait = max_queue_wait.max(queue_wait);
        }

        // Record before delivering: a caller returning from `wait()` may immediately
        // snapshot `PathService::stats()` and must see this batch counted.
        stats.lock().unwrap().record(&MicroBatchStats {
            batch_size,
            max_queue_wait,
            total_queue_wait,
            exec_time,
            run: outcome.stats,
        });

        for (submission, response) in batch.into_iter().zip(outcome.responses) {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            submission.slot.fulfill(SpecResult {
                response,
                queue_wait,
                batch_size,
            });
        }
    }
}

/// A long-lived path-query service: queries stream in one at a time, accumulate under a
/// [`BatchPolicy`], and execute as shared micro-batches on a pool of reusable engines.
///
/// # Example
///
/// ```
/// use hcsp_core::PathQuery;
/// use hcsp_graph::DiGraph;
/// use hcsp_service::{BatchPolicy, PathService};
/// use std::time::Duration;
///
/// // A diamond with two parallel 2-hop routes.
/// let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let service = PathService::builder()
///     .policy(BatchPolicy::by_size(8, Duration::from_millis(2)))
///     .start(graph);
///
/// // Queries are submitted one at a time; each handle waits for its own result.
/// let handle = service.submit(PathQuery::new(0u32, 3u32, 3));
/// let result = handle.wait();
/// assert_eq!(result.paths.len(), 2);
/// assert_eq!(result.paths.get(0)[0], hcsp_graph::VertexId(0));
///
/// let stats = service.shutdown();
/// assert_eq!(stats.num_queries, 1);
/// assert_eq!(stats.produced_paths, 2);
/// ```
#[derive(Debug)]
pub struct PathService {
    /// Current vertex-space size used for endpoint validation. Grows when updates insert
    /// edges touching new vertex ids; the mutex is held across admission sends so the
    /// count a `submit` validated against is consistent with the admission order.
    num_vertices: Mutex<usize>,
    submit_tx: Option<Sender<Admission>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServiceStats>>,
    started_at: Instant,
}

impl PathService {
    /// Starts configuring a service.
    pub fn builder() -> PathServiceBuilder {
        PathServiceBuilder::default()
    }

    /// Starts a service over `graph` with default engine, policy and a single worker.
    pub fn start(graph: impl Into<Arc<DiGraph>>) -> Self {
        PathService::builder().start(graph)
    }

    /// Submits one typed query request; returns a handle to wait on its typed result.
    ///
    /// The spec's [`hcsp_core::ResultMode`] decides both the response shape and how much
    /// work the query costs: an `Exists` probe or a `FirstK` request stops the moment it
    /// is satisfied, even mid-micro-batch next to full-enumeration queries.
    ///
    /// Note on `FirstK` determinism: the returned paths are the first `k` in the
    /// engine's enumeration order *for the executed micro-batch* — a deterministic
    /// function of the batch (and always a subset of the full result set), but batching
    /// itself depends on arrival timing.
    ///
    /// # Panics
    ///
    /// Panics if the query's endpoints are out of range for the served graph — in the
    /// caller's thread, exactly like the offline `BatchEngine` would, rather than
    /// poisoning a worker that is executing other users' queries.
    pub fn submit_spec(&self, spec: QuerySpec) -> SpecHandle {
        // The vertex-count lock is held across the send: a query validated against the
        // grown count is guaranteed to be admitted *after* the update that grew it.
        let n = self.num_vertices.lock().unwrap();
        let query = spec.query;
        assert!(
            query.source.index() < *n && query.target.index() < *n,
            "{query} endpoints out of range for a graph of {} vertices",
            *n
        );
        let slot = Arc::new(ResultSlot::default());
        let submission = Submission {
            spec,
            submitted_at: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.submit_tx
            .as_ref()
            .expect("service is running")
            .send(Admission::Query(submission))
            .expect("service threads are alive");
        SpecHandle { slot }
    }

    /// Submits one query in `Collect` mode (the classic surface); returns a handle to
    /// wait on its full result set. Equivalent to
    /// `submit_spec(QuerySpec::collect(query))` with a [`QueryResult`]-shaped answer.
    ///
    /// # Panics
    ///
    /// Panics if the query's endpoints are out of range for the served graph.
    pub fn submit(&self, query: PathQuery) -> QueryHandle {
        QueryHandle {
            inner: self.submit_spec(QuerySpec::collect(query)),
        }
    }

    /// Submits a batch of graph updates (edge insertions/deletions); returns a handle
    /// that completes once **every** worker engine has applied them.
    ///
    /// Updates are serialised against in-flight micro-batches by admission order: the
    /// open admission window closes when the update arrives, queries submitted before
    /// this call execute against the pre-update snapshot, and queries submitted after it
    /// execute against the post-update snapshot — on every worker, because the update is
    /// a rendezvous barrier across the pool. Updates submitted back to back (no query in
    /// between) coalesce into one dispatched batch; every coalesced handle then reports
    /// the *combined* batch's summary (see [`UpdateHandle::wait`]). Insertions may grow
    /// the vertex space; queries naming the new vertices validate from the moment this
    /// call returns.
    ///
    /// Results are exactly those of an offline engine over the corresponding snapshot:
    /// the update path changes *when* queries run, never *what* they return.
    pub fn update(&self, updates: impl Into<Vec<GraphUpdate>>) -> UpdateHandle {
        let updates: Vec<GraphUpdate> = updates.into();
        let slot = Arc::new(UpdateSlot::default());
        let request = UpdateRequest {
            updates,
            slot: Arc::clone(&slot),
        };
        // Grow the validation vertex count under the same lock that orders admission
        // (see `submit`): inserts touching new ids make those ids addressable for every
        // submit that observes the new count.
        let mut n = self.num_vertices.lock().unwrap();
        for update in request.updates.iter() {
            if let GraphUpdate::Insert(u, v) = *update {
                *n = (*n).max(u.index() + 1).max(v.index() + 1);
            }
        }
        self.submit_tx
            .as_ref()
            .expect("service is running")
            .send(Admission::Update(request))
            .expect("service threads are alive");
        drop(n);
        UpdateHandle { slot }
    }

    /// Submits a sequence of queries back to back, returning one handle per query.
    pub fn submit_all(&self, queries: impl IntoIterator<Item = PathQuery>) -> Vec<QueryHandle> {
        queries.into_iter().map(|q| self.submit(q)).collect()
    }

    /// Submits a sequence of typed specs back to back, returning one handle per spec.
    pub fn submit_specs(&self, specs: impl IntoIterator<Item = QuerySpec>) -> Vec<SpecHandle> {
        specs.into_iter().map(|s| self.submit_spec(s)).collect()
    }

    /// Replays an open-loop arrival schedule: sleeps until each event's offset from now,
    /// then submits its query. Returns the handles in schedule order.
    ///
    /// Offsets are relative to the call, so a schedule generated by the workload crate's
    /// arrival process replays with its intended inter-arrival gaps.
    pub fn replay(
        &self,
        schedule: impl IntoIterator<Item = (Duration, PathQuery)>,
    ) -> Vec<QueryHandle> {
        let start = Instant::now();
        schedule
            .into_iter()
            .map(|(offset, query)| {
                let wait = offset.saturating_sub(start.elapsed());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                self.submit(query)
            })
            .collect()
    }

    /// A snapshot of the aggregate service statistics so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().unwrap().clone()
    }

    /// Wall-clock time since the service started (the denominator for
    /// [`ServiceStats::throughput_qps`]).
    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops accepting queries, drains everything already submitted, joins all threads and
    /// returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.finish();
        self.stats.lock().unwrap().clone()
    }

    fn finish(&mut self) {
        // Dropping the submission sender unblocks the batcher, which flushes its final
        // window and drops the batch sender, which drains the workers.
        self.submit_tx.take();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::BatchEngine;
    use hcsp_graph::generators::regular::{complete, grid};
    use hcsp_graph::VertexId;

    fn grid_queries() -> Vec<PathQuery> {
        vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(4u32, 15u32, 5),
            PathQuery::new(0u32, 15u32, 4),
        ]
    }

    fn offline_counts(graph: &DiGraph, queries: &[PathQuery]) -> Vec<u64> {
        let (counts, _) = BatchEngine::default().run_counting(graph, queries);
        counts
    }

    #[test]
    fn served_results_match_offline_batch_run() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::by_size(
                queries.len(),
                Duration::from_millis(200),
            ))
            .start(graph);
        let handles = service.submit_all(queries.clone());
        for (handle, (query, expected)) in handles.into_iter().zip(queries.iter().zip(&expected)) {
            let result = handle.wait();
            assert_eq!(result.paths.len() as u64, *expected, "{query}");
            for p in result.paths.iter() {
                assert_eq!(p[0], query.source);
                assert_eq!(*p.last().unwrap(), query.target);
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, queries.len());
        assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
    }

    #[test]
    fn zero_deadline_serves_every_query_alone() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph);
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);

        let stats = service.shutdown();
        assert_eq!(stats.num_batches, stats.num_queries, "one batch per query");
        assert_eq!(stats.max_batch_size, 1);
        assert_eq!(stats.sharing_ratio(), 0.0);
    }

    #[test]
    fn size_cap_closes_the_window_early() {
        let graph = grid(4, 4);
        // A generous deadline: dispatch must be triggered by the size cap, not time.
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_secs(30)))
            .start(graph);
        let handles = service.submit_all(grid_queries().into_iter().take(4));
        for handle in handles {
            let result = handle.wait();
            assert!(result.batch_size <= 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 4);
        assert!(stats.num_batches >= 2);
        assert!(stats.max_batch_size <= 2);
    }

    #[test]
    fn multiple_workers_preserve_per_query_results() {
        let graph = complete(6);
        let queries: Vec<PathQuery> = (0..12).map(|i| PathQuery::new(i % 5, 5u32, 3)).collect();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .workers(3)
            .policy(BatchPolicy::by_size(3, Duration::from_millis(50)))
            .start(graph);
        let handles = service.submit_all(queries);
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 12);
    }

    #[test]
    fn parallel_exec_threads_serve_identical_results() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        for (exec_threads, explicit_cap) in [(2, None), (4, None), (2, Some(1))] {
            let mut builder = PathService::builder().policy(
                BatchPolicy::by_size(queries.len(), Duration::from_millis(200))
                    .with_exec_threads(exec_threads),
            );
            if let Some(cap) = explicit_cap {
                builder = builder.parallel_cluster_cap(cap);
            }
            let service = builder.start(graph.clone());
            let handles = service.submit_all(queries.clone());
            let counts: Vec<u64> = handles
                .into_iter()
                .map(|h| h.wait().paths.len() as u64)
                .collect();
            assert_eq!(
                counts, expected,
                "exec_threads = {exec_threads}, cap = {explicit_cap:?}"
            );
            let stats = service.shutdown();
            assert_eq!(stats.num_queries, queries.len());
            assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
        }
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let graph = complete(5);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_millis(500)))
            .start(graph);
        let handles = service.submit_all((0..8).map(|i| PathQuery::new(i % 4, 4u32, 3)));
        // Shut down immediately: every already-submitted query must still be answered.
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 8);
        for handle in handles {
            assert!(handle.is_ready());
            assert!(!handle.wait().paths.is_empty());
        }
    }

    #[test]
    fn replay_submits_in_schedule_order() {
        let graph = complete(5);
        let service = PathService::start(graph);
        let schedule = vec![
            (Duration::ZERO, PathQuery::new(0u32, 4u32, 2)),
            (Duration::from_millis(1), PathQuery::new(1u32, 4u32, 2)),
            (Duration::from_millis(2), PathQuery::new(2u32, 4u32, 3)),
        ];
        let handles = service.replay(schedule);
        assert_eq!(handles.len(), 3);
        for handle in handles {
            let result = handle.wait();
            assert!(result
                .paths
                .iter()
                .all(|p| *p.last().unwrap() == VertexId(4)));
        }
        assert!(service.uptime() > Duration::ZERO);
        assert_eq!(service.stats().num_queries, 3);
        drop(service);
    }

    #[test]
    fn updates_are_snapshot_boundaries_in_admission_order() {
        // A diamond whose second route appears only after the update.
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        // A generous window: the pre-update query would otherwise wait out the deadline;
        // the update must close the window instead.
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_secs(30)))
            .start(graph);
        let before = service.submit(q);
        let update = service.update(vec![
            GraphUpdate::insert(0u32, 2u32),
            GraphUpdate::insert(2u32, 3u32),
        ]);
        let after = service.submit(q);
        // Shutdown flushes the (30 s) window holding `after`; the window holding
        // `before` must already have been closed by the update itself.
        let stats = service.shutdown();

        let before = before.wait();
        assert_eq!(before.paths.len(), 1, "pre-update snapshot");
        assert_eq!(
            before.batch_size, 1,
            "the update must have closed the first window before `after` arrived"
        );
        assert_eq!(after.wait().paths.len(), 2, "post-update snapshot");
        assert_eq!(update.wait().applied, 2);
        assert_eq!(stats.update_batches, 1);
        assert_eq!(stats.updates_applied, 2);
    }

    #[test]
    fn updates_reach_every_worker_engine() {
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        let service = PathService::builder()
            .workers(4)
            .policy(BatchPolicy::immediate())
            .start(graph);
        // Warm all workers on the old graph, then update, then hammer again: whichever
        // worker picks a post-update query must see the new snapshot.
        for handle in service.submit_all(std::iter::repeat_n(q, 8)) {
            assert_eq!(handle.wait().paths.len(), 1);
        }
        service
            .update(vec![
                GraphUpdate::insert(0u32, 2u32),
                GraphUpdate::insert(2u32, 3u32),
            ])
            .wait();
        for handle in service.submit_all(std::iter::repeat_n(q, 8)) {
            assert_eq!(handle.wait().paths.len(), 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.update_batches, 1, "one update however many workers");
    }

    #[test]
    fn update_deletions_remove_paths() {
        let graph = grid(4, 4);
        let q = PathQuery::new(0u32, 15u32, 6);
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph.clone());
        let expected_before = offline_counts(&graph, &[q])[0];
        assert_eq!(service.submit(q).wait().paths.len() as u64, expected_before);

        let mut delta = hcsp_graph::DeltaGraph::new(graph);
        assert!(delta.delete_edge(VertexId(0), VertexId(1)));
        let summary = service.update(vec![GraphUpdate::delete(0u32, 1u32)]).wait();
        assert_eq!(summary.applied, 1);
        let expected_after = offline_counts(&delta.compact(), &[q])[0];
        assert!(expected_after < expected_before);
        assert_eq!(service.submit(q).wait().paths.len() as u64, expected_after);
        service.shutdown();
    }

    #[test]
    fn updates_grow_the_vertex_space_for_validation() {
        let graph = DiGraph::from_edge_list(2, &[(0, 1)]).unwrap();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph);
        service.update(vec![GraphUpdate::insert(1u32, 2u32)]).wait();
        // Vertex 2 did not exist at start; after the update it is addressable.
        let result = service.submit(PathQuery::new(0u32, 2u32, 2)).wait();
        assert_eq!(result.paths.len(), 1);
        service.shutdown();
    }

    #[test]
    fn noop_update_completes_with_zero_applied() {
        let service = PathService::start(complete(3));
        let handle = service.update(Vec::new());
        let summary = handle.wait();
        assert_eq!(summary, UpdateSummary::default());
        let handle = service.update(vec![GraphUpdate::insert(0u32, 1u32)]);
        assert_eq!(handle.wait().ignored, 1);
        assert_eq!(service.stats().update_batches, 2);
        service.shutdown();
    }

    #[test]
    fn pending_updates_complete_at_shutdown() {
        let graph = complete(4);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_millis(500)))
            .start(graph);
        let query = service.submit(PathQuery::new(0u32, 3u32, 2));
        let update = service.update(vec![GraphUpdate::delete(0u32, 3u32)]);
        let stats = service.shutdown();
        assert_eq!(stats.update_batches, 1);
        assert!(update.is_ready());
        assert_eq!(update.wait().applied, 1);
        // The query was admitted before the update: old snapshot (direct edge intact).
        assert!(
            query.wait().paths.iter().any(|p| p.len() == 2),
            "direct 0 -> 3 path must exist pre-update"
        );
    }

    #[test]
    fn spec_submissions_serve_typed_responses() {
        use hcsp_core::ResultMode;
        let graph = grid(4, 4);
        let queries = grid_queries();
        let specs = vec![
            QuerySpec::exists(queries[0]),
            QuerySpec::count(queries[1]),
            QuerySpec::first_k(queries[2], 2),
            QuerySpec::collect(queries[3]),
            QuerySpec::count(queries[4]).with_path_budget(3),
        ];
        // One admission window for the whole set and one worker: the micro-batch is
        // exactly `specs`, so the typed responses must equal the offline spec run.
        let mut offline = Engine::new(graph.clone(), BatchEngine::default());
        let expected = offline.run_specs(&specs);

        let service = PathService::builder()
            .policy(BatchPolicy::by_size(
                specs.len(),
                Duration::from_millis(500),
            ))
            .start(graph);
        let handles = service.submit_specs(specs.clone());
        for ((handle, spec), expected) in handles.into_iter().zip(&specs).zip(&expected.responses) {
            let result = handle.wait();
            assert_eq!(&result.response, expected, "{spec}");
            match spec.mode {
                ResultMode::Exists => assert!(matches!(
                    result.response,
                    hcsp_core::QueryResponse::Exists(_)
                )),
                ResultMode::Count => {
                    assert!(matches!(
                        result.response,
                        hcsp_core::QueryResponse::Count(_)
                    ))
                }
                _ => assert!(result.response.paths().is_some()),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, specs.len());
    }

    #[test]
    fn queued_updates_coalesce_into_one_dispatch() {
        // Drive the batcher loop directly with a preloaded admission queue, so the
        // coalescing path is deterministic (no racing against live threads).
        let (tx, rx) = mpsc::channel::<Admission>();
        let (batch_tx, batch_rx) = mpsc::channel::<WorkItem>();
        let query = |s: u32| Submission {
            spec: QuerySpec::collect(PathQuery::new(s, 3u32, 2)),
            submitted_at: Instant::now(),
            slot: Arc::new(ResultSlot::default()),
        };
        let update_slots: Vec<Arc<UpdateSlot>> =
            (0..3).map(|_| Arc::new(UpdateSlot::default())).collect();
        tx.send(Admission::Query(query(0))).unwrap();
        for (i, slot) in update_slots.iter().enumerate() {
            tx.send(Admission::Update(UpdateRequest {
                updates: vec![GraphUpdate::insert(i as u32, 3u32)],
                slot: Arc::clone(slot),
            }))
            .unwrap();
        }
        tx.send(Admission::Query(query(1))).unwrap();
        drop(tx);
        let workers = 2;
        batcher_loop(rx, batch_tx, BatchPolicy::immediate(), workers);

        // Expected stream: the first query's window, ONE coalesced update (as one ticket
        // per worker, all sharing the 3 merged mutations), then the carried query.
        let items: Vec<WorkItem> = batch_rx.try_iter().collect();
        assert_eq!(items.len(), 4, "batch + 2 tickets + batch");
        assert!(matches!(&items[0], WorkItem::Batch(b) if b.len() == 1));
        assert!(matches!(&items[3], WorkItem::Batch(b) if b.len() == 1));
        let stats = Mutex::new(ServiceStats::default());
        // `arrive` is a barrier across the pool: simulate the two workers concurrently.
        std::thread::scope(|scope| {
            for item in &items[1..3] {
                let WorkItem::Update(ticket) = item else {
                    panic!("expected an update ticket");
                };
                assert_eq!(ticket.updates.len(), 3, "all three updates in one batch");
                let stats = &stats;
                scope.spawn(move || {
                    ticket
                        .rendezvous
                        .arrive(UpdateSummary::default(), true, stats)
                });
            }
        });
        // One dispatched batch absorbed three update() calls; every handle resolved.
        let stats = stats.into_inner().unwrap();
        assert_eq!(stats.update_batches, 1);
        assert_eq!(stats.update_calls, 3);
        for slot in update_slots {
            let handle = UpdateHandle { slot };
            assert!(handle.is_ready());
            handle.wait();
        }
    }

    #[test]
    fn update_bursts_stay_correct_end_to_end() {
        // A diamond built up by a burst of updates submitted without intermediate waits:
        // whatever coalescing happens, admission order semantics must hold.
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_secs(30)))
            .start(graph);
        let before = service.submit(q);
        let u1 = service.update(vec![GraphUpdate::insert(0u32, 2u32)]);
        let u2 = service.update(vec![GraphUpdate::insert(2u32, 3u32)]);
        let u3 = service.update(vec![GraphUpdate::delete(0u32, 1u32)]);
        let after = service.submit(q);
        let stats = service.shutdown();

        assert_eq!(before.wait().paths.len(), 1, "pre-update snapshot");
        assert_eq!(
            after.wait().paths.len(),
            1,
            "post-update snapshot: 0->2->3 only"
        );
        u1.wait();
        u2.wait();
        u3.wait();
        assert_eq!(stats.update_calls, 3);
        assert!(
            (1..=3).contains(&stats.update_batches),
            "3 calls dispatch as 1..=3 batches, got {}",
            stats.update_batches
        );
        assert_eq!(stats.updates_applied, 3);
    }

    #[test]
    fn abandoned_update_slot_panics_instead_of_hanging() {
        let slot = Arc::new(UpdateSlot::default());
        let handle = UpdateHandle {
            slot: Arc::clone(&slot),
        };
        assert!(!handle.is_ready());
        let rendezvous = UpdateRendezvous::new(2, vec![slot]);
        drop(rendezvous);
        assert!(handle.is_ready());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(outcome.is_err(), "wait() must surface the abandonment");
    }

    #[test]
    #[should_panic(expected = "endpoints out of range")]
    fn out_of_range_query_panics_at_submit() {
        let service = PathService::start(complete(4));
        let _ = service.submit(PathQuery::new(99u32, 1u32, 3));
    }

    #[test]
    fn dropped_submission_abandons_its_handle_instead_of_hanging() {
        let slot = Arc::new(ResultSlot::default());
        let handle = QueryHandle {
            inner: SpecHandle {
                slot: Arc::clone(&slot),
            },
        };
        let submission = Submission {
            spec: QuerySpec::collect(PathQuery::new(0u32, 1u32, 2)),
            submitted_at: Instant::now(),
            slot,
        };
        assert!(!handle.is_ready());
        // A worker panic unwinds the batch, dropping its submissions unfulfilled.
        drop(submission);
        assert!(handle.is_ready());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(outcome.is_err(), "wait() must surface the abandonment");
    }

    #[test]
    fn index_root_cap_is_passed_through_and_stays_correct() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);
        let service = PathService::builder()
            .index_root_cap(2)
            .policy(BatchPolicy::immediate())
            .start(graph);
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        service.shutdown();
    }

    #[test]
    fn queue_wait_is_reported() {
        let graph = complete(4);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_millis(40)))
            .start(graph);
        let a = service.submit(PathQuery::new(0u32, 3u32, 2));
        let ra = a.wait();
        // The lone query waited out (most of) the 40 ms window.
        assert!(ra.queue_wait >= Duration::from_millis(20));
        let stats = service.shutdown();
        assert!(stats.max_queue_wait >= Duration::from_millis(20));
        assert!(stats.total_exec_time > Duration::ZERO);
    }
}
