//! The long-lived serving layer: accept queries one at a time, execute them in shared
//! micro-batches.
//!
//! ```text
//!  submit() ──► admission queue ──► batcher thread ──► micro-batch queue ──► worker pool
//!     │         (mpsc channel)      closes windows       (mpsc channel)     one reusable
//!     │                             by size/deadline                        Engine each
//!     ▼                                                                          │
//!  QueryHandle ◄────────────────── per-query result slots ◄────────────────── CollectSink
//! ```
//!
//! Every worker owns a reusable [`Engine`], so the batch index survives across
//! micro-batches: repeated endpoints cost no BFS work, new endpoints extend the index
//! incrementally, and only a growing hop bound forces a rebuild. Results are routed back
//! per query through the core [`PathSink`](hcsp_core::PathSink) abstraction
//! ([`CollectSink`] inside the worker) and handed to the caller via [`QueryHandle`]s.

use crate::policy::BatchPolicy;
use hcsp_core::{
    BatchEngine, CollectSink, Engine, MicroBatchStats, Parallelism, PathQuery, PathSet,
    ServiceStats,
};
use hcsp_graph::DiGraph;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The answer to one served query.
#[derive(Debug)]
pub struct QueryResult {
    /// Every HC-s-t path of the query.
    pub paths: PathSet,
    /// Time the query spent in the admission queue before its micro-batch started.
    pub queue_wait: Duration,
    /// Size of the micro-batch the query was executed in.
    pub batch_size: usize,
}

/// Lifecycle of a result slot.
#[derive(Debug, Default)]
enum SlotState {
    /// The query is queued or executing.
    #[default]
    Pending,
    /// The result is available.
    Ready(QueryResult),
    /// The query will never be answered (its worker panicked mid-batch).
    Abandoned,
}

/// One-shot result slot shared between a worker and a [`QueryHandle`].
#[derive(Debug, Default)]
struct ResultSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResultSlot {
    fn fulfill(&self, result: QueryResult) {
        let mut state = self.state.lock().unwrap();
        *state = SlotState::Ready(result);
        self.ready.notify_all();
    }

    /// Marks a still-pending slot as never-to-be-answered, waking any waiter.
    fn abandon(&self) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// A claim on the result of one submitted query.
#[derive(Debug)]
pub struct QueryHandle {
    slot: Arc<ResultSlot>,
}

impl QueryHandle {
    /// Blocks until the query's micro-batch has executed and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the query's micro-batch panicked (the query can
    /// never be answered; panicking here surfaces the failure instead of hanging forever).
    pub fn wait(self) -> QueryResult {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Ready(result) => return result,
                SlotState::Abandoned => {
                    panic!("query abandoned: the service worker executing it panicked")
                }
                SlotState::Pending => state = self.slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }
}

/// One queued query together with its arrival time and result slot.
struct Submission {
    query: PathQuery,
    submitted_at: Instant,
    slot: Arc<ResultSlot>,
}

impl Drop for Submission {
    /// A submission dropped without [`ResultSlot::fulfill`] (worker panic unwinding the
    /// batch, or an internal channel failure) must not leave its handle blocked forever.
    fn drop(&mut self) {
        self.slot.abandon();
    }
}

/// Configures and starts a [`PathService`].
#[derive(Debug, Clone, Copy)]
pub struct PathServiceBuilder {
    config: BatchEngine,
    policy: BatchPolicy,
    workers: usize,
    index_root_cap: Option<usize>,
    parallel_cluster_cap: Option<usize>,
}

impl Default for PathServiceBuilder {
    fn default() -> Self {
        PathServiceBuilder {
            config: BatchEngine::default(),
            policy: BatchPolicy::default(),
            workers: 1,
            index_root_cap: None,
            parallel_cluster_cap: None,
        }
    }
}

/// Default similarity-cluster cap applied when micro-batches execute in parallel
/// (`exec_threads > 1`) and no explicit cap was configured. Micro-batching exists to form
/// *cohesive* batches, which routinely collapse into a single similarity cluster — one
/// cluster is one parallel unit, so without a cap the extra threads would idle. Eight
/// queries per sub-cluster keeps strong intra-cluster sharing while giving a typical
/// micro-batch several parallel units.
const DEFAULT_PARALLEL_CLUSTER_CAP: usize = 8;

impl PathServiceBuilder {
    /// The per-batch engine configuration (algorithm + γ); default `BatchEnum+`.
    pub fn engine(mut self, config: BatchEngine) -> Self {
        self.config = config;
        self
    }

    /// The micro-batch admission policy.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of worker threads executing micro-batches (each owns a reusable [`Engine`];
    /// values of 0 are treated as 1). One worker guarantees micro-batches execute in
    /// admission order.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Caps each worker's cached index at roughly `cap` roots (see
    /// [`Engine::set_index_root_cap`]): once exceeded, the cache is dropped and rebuilt
    /// from the next micro-batch alone. The default (`None`) keeps every endpoint ever
    /// served indexed — fastest for a stable working set, unbounded memory for a stream
    /// of one-off endpoints.
    pub fn index_root_cap(mut self, cap: usize) -> Self {
        self.index_root_cap = Some(cap);
        self
    }

    /// Caps the similarity-cluster size of *parallel* micro-batch execution (see
    /// [`Engine::set_parallel_cluster_cap`]). Only consulted when the policy's
    /// `exec_threads > 1`; defaults to a small cap in that case so that a cohesive
    /// micro-batch (often one big similarity cluster) still yields parallel units.
    pub fn parallel_cluster_cap(mut self, cap: usize) -> Self {
        self.parallel_cluster_cap = Some(cap);
        self
    }

    /// Starts the service over `graph`: spawns the batcher and the worker pool.
    pub fn start(self, graph: impl Into<Arc<DiGraph>>) -> PathService {
        let graph = graph.into();
        let (submit_tx, submit_rx) = mpsc::channel::<Submission>();
        let (batch_tx, batch_rx) = mpsc::channel::<Vec<Submission>>();
        let policy = self.policy;
        let batcher = std::thread::spawn(move || batcher_loop(submit_rx, batch_tx, policy));

        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let workers = (0..self.workers.max(1))
            .map(|_| {
                let graph = Arc::clone(&graph);
                let batch_rx = Arc::clone(&batch_rx);
                let stats = Arc::clone(&stats);
                let config = self.config;
                let root_cap = self.index_root_cap;
                let exec_threads = self.policy.exec_threads.max(1);
                let cluster_cap = if exec_threads > 1 {
                    Some(
                        self.parallel_cluster_cap
                            .unwrap_or(DEFAULT_PARALLEL_CLUSTER_CAP),
                    )
                } else {
                    None
                };
                std::thread::spawn(move || {
                    worker_loop(
                        graph,
                        config,
                        root_cap,
                        exec_threads,
                        cluster_cap,
                        batch_rx,
                        stats,
                    )
                })
            })
            .collect();

        PathService {
            graph,
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            stats,
            started_at: Instant::now(),
        }
    }
}

/// Collects submissions into micro-batches according to the policy: a window opens when
/// its first query arrives and closes at the size cap or the deadline, whichever first.
fn batcher_loop(rx: Receiver<Submission>, batch_tx: Sender<Vec<Submission>>, policy: BatchPolicy) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        if !policy.is_per_query() {
            let deadline = Instant::now() + policy.max_delay;
            while batch.len() < policy.max_batch_size {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match rx.recv_timeout(remaining) {
                    Ok(submission) => batch.push(submission),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        if batch_tx.send(batch).is_err() {
            return;
        }
    }
    // Submission side disconnected: dropping `batch_tx` lets the workers drain and exit.
}

/// Executes micro-batches on one reusable engine, routing results back per query.
/// `exec_threads > 1` runs each micro-batch on the cluster-sharded parallel executor,
/// with `cluster_cap` bounding the similarity clusters so cohesive batches still split
/// into parallel units.
fn worker_loop(
    graph: Arc<DiGraph>,
    config: BatchEngine,
    root_cap: Option<usize>,
    exec_threads: usize,
    cluster_cap: Option<usize>,
    batch_rx: Arc<Mutex<Receiver<Vec<Submission>>>>,
    stats: Arc<Mutex<ServiceStats>>,
) {
    let mut engine = Engine::new(graph, config);
    engine.set_index_root_cap(root_cap);
    engine.set_parallel_cluster_cap(cluster_cap);
    loop {
        // Hold the lock only while waiting for one batch; the next worker queues on the
        // mutex, so batches spread across the pool without a work-stealing scheduler.
        let batch = match batch_rx.lock().unwrap().recv() {
            Ok(batch) => batch,
            Err(_) => return,
        };

        let exec_start = Instant::now();
        let queries: Vec<PathQuery> = batch.iter().map(|s| s.query).collect();
        let mut sink = CollectSink::new(queries.len());
        // A panicking batch (e.g. a query panicking deep in the enumeration) must not
        // kill the worker: the batch's submissions are dropped by the unwind, which
        // abandons their slots (waking the waiters), and the worker serves on with a
        // fresh engine — the cached index may be mid-mutation.
        let run = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if exec_threads > 1 {
                engine.run_parallel_with_sink(&queries, Parallelism::Fixed(exec_threads), &mut sink)
            } else {
                engine.run_with_sink(&queries, &mut sink)
            }
        })) {
            Ok(run) => run,
            Err(_) => {
                drop(batch);
                let mut fresh = Engine::new(engine.graph_arc(), engine.config());
                fresh.set_index_root_cap(engine.index_root_cap());
                fresh.set_parallel_cluster_cap(engine.parallel_cluster_cap());
                engine = fresh;
                continue;
            }
        };
        let exec_time = exec_start.elapsed();

        let batch_size = batch.len();
        let mut total_queue_wait = Duration::ZERO;
        let mut max_queue_wait = Duration::ZERO;
        for submission in &batch {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            total_queue_wait += queue_wait;
            max_queue_wait = max_queue_wait.max(queue_wait);
        }

        // Record before delivering: a caller returning from `wait()` may immediately
        // snapshot `PathService::stats()` and must see this batch counted.
        stats.lock().unwrap().record(&MicroBatchStats {
            batch_size,
            max_queue_wait,
            total_queue_wait,
            exec_time,
            run,
        });

        for (submission, paths) in batch.into_iter().zip(sink.into_inner()) {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            submission.slot.fulfill(QueryResult {
                paths,
                queue_wait,
                batch_size,
            });
        }
    }
}

/// A long-lived path-query service: queries stream in one at a time, accumulate under a
/// [`BatchPolicy`], and execute as shared micro-batches on a pool of reusable engines.
///
/// # Example
///
/// ```
/// use hcsp_core::PathQuery;
/// use hcsp_graph::DiGraph;
/// use hcsp_service::{BatchPolicy, PathService};
/// use std::time::Duration;
///
/// // A diamond with two parallel 2-hop routes.
/// let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let service = PathService::builder()
///     .policy(BatchPolicy::by_size(8, Duration::from_millis(2)))
///     .start(graph);
///
/// // Queries are submitted one at a time; each handle waits for its own result.
/// let handle = service.submit(PathQuery::new(0u32, 3u32, 3));
/// let result = handle.wait();
/// assert_eq!(result.paths.len(), 2);
/// assert_eq!(result.paths.get(0)[0], hcsp_graph::VertexId(0));
///
/// let stats = service.shutdown();
/// assert_eq!(stats.num_queries, 1);
/// assert_eq!(stats.produced_paths, 2);
/// ```
#[derive(Debug)]
pub struct PathService {
    graph: Arc<DiGraph>,
    submit_tx: Option<Sender<Submission>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServiceStats>>,
    started_at: Instant,
}

impl PathService {
    /// Starts configuring a service.
    pub fn builder() -> PathServiceBuilder {
        PathServiceBuilder::default()
    }

    /// Starts a service over `graph` with default engine, policy and a single worker.
    pub fn start(graph: impl Into<Arc<DiGraph>>) -> Self {
        PathService::builder().start(graph)
    }

    /// Submits one query; returns a handle to wait on its result.
    ///
    /// # Panics
    ///
    /// Panics if the query's endpoints are out of range for the served graph — in the
    /// caller's thread, exactly like the offline `BatchEngine` would, rather than poisoning
    /// a worker that is executing other users' queries.
    pub fn submit(&self, query: PathQuery) -> QueryHandle {
        let n = self.graph.num_vertices();
        assert!(
            query.source.index() < n && query.target.index() < n,
            "{query} endpoints out of range for a graph of {n} vertices"
        );
        let slot = Arc::new(ResultSlot::default());
        let submission = Submission {
            query,
            submitted_at: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.submit_tx
            .as_ref()
            .expect("service is running")
            .send(submission)
            .expect("service threads are alive");
        QueryHandle { slot }
    }

    /// Submits a sequence of queries back to back, returning one handle per query.
    pub fn submit_all(&self, queries: impl IntoIterator<Item = PathQuery>) -> Vec<QueryHandle> {
        queries.into_iter().map(|q| self.submit(q)).collect()
    }

    /// Replays an open-loop arrival schedule: sleeps until each event's offset from now,
    /// then submits its query. Returns the handles in schedule order.
    ///
    /// Offsets are relative to the call, so a schedule generated by the workload crate's
    /// arrival process replays with its intended inter-arrival gaps.
    pub fn replay(
        &self,
        schedule: impl IntoIterator<Item = (Duration, PathQuery)>,
    ) -> Vec<QueryHandle> {
        let start = Instant::now();
        schedule
            .into_iter()
            .map(|(offset, query)| {
                let wait = offset.saturating_sub(start.elapsed());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                self.submit(query)
            })
            .collect()
    }

    /// A snapshot of the aggregate service statistics so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().unwrap().clone()
    }

    /// Wall-clock time since the service started (the denominator for
    /// [`ServiceStats::throughput_qps`]).
    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops accepting queries, drains everything already submitted, joins all threads and
    /// returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.finish();
        self.stats.lock().unwrap().clone()
    }

    fn finish(&mut self) {
        // Dropping the submission sender unblocks the batcher, which flushes its final
        // window and drops the batch sender, which drains the workers.
        self.submit_tx.take();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::BatchEngine;
    use hcsp_graph::generators::regular::{complete, grid};
    use hcsp_graph::VertexId;

    fn grid_queries() -> Vec<PathQuery> {
        vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(4u32, 15u32, 5),
            PathQuery::new(0u32, 15u32, 4),
        ]
    }

    fn offline_counts(graph: &DiGraph, queries: &[PathQuery]) -> Vec<u64> {
        let (counts, _) = BatchEngine::default().run_counting(graph, queries);
        counts
    }

    #[test]
    fn served_results_match_offline_batch_run() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::by_size(
                queries.len(),
                Duration::from_millis(200),
            ))
            .start(graph);
        let handles = service.submit_all(queries.clone());
        for (handle, (query, expected)) in handles.into_iter().zip(queries.iter().zip(&expected)) {
            let result = handle.wait();
            assert_eq!(result.paths.len() as u64, *expected, "{query}");
            for p in result.paths.iter() {
                assert_eq!(p[0], query.source);
                assert_eq!(*p.last().unwrap(), query.target);
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, queries.len());
        assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
    }

    #[test]
    fn zero_deadline_serves_every_query_alone() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph);
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);

        let stats = service.shutdown();
        assert_eq!(stats.num_batches, stats.num_queries, "one batch per query");
        assert_eq!(stats.max_batch_size, 1);
        assert_eq!(stats.sharing_ratio(), 0.0);
    }

    #[test]
    fn size_cap_closes_the_window_early() {
        let graph = grid(4, 4);
        // A generous deadline: dispatch must be triggered by the size cap, not time.
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_secs(30)))
            .start(graph);
        let handles = service.submit_all(grid_queries().into_iter().take(4));
        for handle in handles {
            let result = handle.wait();
            assert!(result.batch_size <= 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 4);
        assert!(stats.num_batches >= 2);
        assert!(stats.max_batch_size <= 2);
    }

    #[test]
    fn multiple_workers_preserve_per_query_results() {
        let graph = complete(6);
        let queries: Vec<PathQuery> = (0..12).map(|i| PathQuery::new(i % 5, 5u32, 3)).collect();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .workers(3)
            .policy(BatchPolicy::by_size(3, Duration::from_millis(50)))
            .start(graph);
        let handles = service.submit_all(queries);
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 12);
    }

    #[test]
    fn parallel_exec_threads_serve_identical_results() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        for (exec_threads, explicit_cap) in [(2, None), (4, None), (2, Some(1))] {
            let mut builder = PathService::builder().policy(
                BatchPolicy::by_size(queries.len(), Duration::from_millis(200))
                    .with_exec_threads(exec_threads),
            );
            if let Some(cap) = explicit_cap {
                builder = builder.parallel_cluster_cap(cap);
            }
            let service = builder.start(graph.clone());
            let handles = service.submit_all(queries.clone());
            let counts: Vec<u64> = handles
                .into_iter()
                .map(|h| h.wait().paths.len() as u64)
                .collect();
            assert_eq!(
                counts, expected,
                "exec_threads = {exec_threads}, cap = {explicit_cap:?}"
            );
            let stats = service.shutdown();
            assert_eq!(stats.num_queries, queries.len());
            assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
        }
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let graph = complete(5);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_millis(500)))
            .start(graph);
        let handles = service.submit_all((0..8).map(|i| PathQuery::new(i % 4, 4u32, 3)));
        // Shut down immediately: every already-submitted query must still be answered.
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 8);
        for handle in handles {
            assert!(handle.is_ready());
            assert!(!handle.wait().paths.is_empty());
        }
    }

    #[test]
    fn replay_submits_in_schedule_order() {
        let graph = complete(5);
        let service = PathService::start(graph);
        let schedule = vec![
            (Duration::ZERO, PathQuery::new(0u32, 4u32, 2)),
            (Duration::from_millis(1), PathQuery::new(1u32, 4u32, 2)),
            (Duration::from_millis(2), PathQuery::new(2u32, 4u32, 3)),
        ];
        let handles = service.replay(schedule);
        assert_eq!(handles.len(), 3);
        for handle in handles {
            let result = handle.wait();
            assert!(result
                .paths
                .iter()
                .all(|p| *p.last().unwrap() == VertexId(4)));
        }
        assert!(service.uptime() > Duration::ZERO);
        assert_eq!(service.stats().num_queries, 3);
        drop(service);
    }

    #[test]
    #[should_panic(expected = "endpoints out of range")]
    fn out_of_range_query_panics_at_submit() {
        let service = PathService::start(complete(4));
        let _ = service.submit(PathQuery::new(99u32, 1u32, 3));
    }

    #[test]
    fn dropped_submission_abandons_its_handle_instead_of_hanging() {
        let slot = Arc::new(ResultSlot::default());
        let handle = QueryHandle {
            slot: Arc::clone(&slot),
        };
        let submission = Submission {
            query: PathQuery::new(0u32, 1u32, 2),
            submitted_at: Instant::now(),
            slot,
        };
        assert!(!handle.is_ready());
        // A worker panic unwinds the batch, dropping its submissions unfulfilled.
        drop(submission);
        assert!(handle.is_ready());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(outcome.is_err(), "wait() must surface the abandonment");
    }

    #[test]
    fn index_root_cap_is_passed_through_and_stays_correct() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);
        let service = PathService::builder()
            .index_root_cap(2)
            .policy(BatchPolicy::immediate())
            .start(graph);
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        service.shutdown();
    }

    #[test]
    fn queue_wait_is_reported() {
        let graph = complete(4);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_millis(40)))
            .start(graph);
        let a = service.submit(PathQuery::new(0u32, 3u32, 2));
        let ra = a.wait();
        // The lone query waited out (most of) the 40 ms window.
        assert!(ra.queue_wait >= Duration::from_millis(20));
        let stats = service.shutdown();
        assert!(stats.max_queue_wait >= Duration::from_millis(20));
        assert!(stats.total_exec_time > Duration::ZERO);
    }
}
