//! The long-lived serving layer: accept typed query requests one at a time, execute them
//! in shared micro-batches against epoch-pinned graph snapshots.
//!
//! ```text
//!  submit_spec() ─► pin tip Epoch ─► admission queue ─► batcher thread ─► worker pool
//!     │             (EpochPublisher   (mpsc channel)    closes windows    one reusable
//!     │              behind a mutex)                    by size/deadline/ Engine each,
//!     │                                                 epoch change      advanced to the
//!     ▼                                                                   batch's epoch
//!  SpecHandle ◄──────────────── per-query result slots ◄─────────── Engine::run_specs
//! ```
//!
//! Every worker owns a reusable [`Engine`], so the batch index survives across
//! micro-batches: repeated endpoints cost no BFS work, new endpoints extend the index
//! incrementally, and only a growing hop bound forces a rebuild. Each submission is a
//! typed [`QuerySpec`] — result mode plus optional path budget — executed through
//! [`Engine::run_specs`], so an `Exists` probe or a `FirstK` request stops paying
//! enumeration cost the moment it is satisfied even when it shares a micro-batch with
//! full-enumeration queries. The classic [`PathService::submit`] surface remains as a
//! `Collect`-mode wrapper.
//!
//! Graph updates ([`PathService::update`]) never block readers. An update publishes a new
//! [`Epoch`] — an immutable snapshot with a version id — synchronously under the same
//! admission lock queries pin the tip through, so the epoch each query sees is exactly
//! the one defined by its admission order. Micro-batches already pinned to an older epoch
//! keep executing against their snapshot, barrier-free, while the new epoch is served to
//! later submissions; the batcher splits an admission window only when the *pinned epoch*
//! of an arriving query differs from the window's (a no-op update republishes the same
//! tip and splits nothing). Workers catch up lazily via [`Engine::advance_to_epoch`],
//! which merges the epochs' retained edge deltas into one incremental index-maintenance
//! step instead of rebuilding.

use crate::policy::BatchPolicy;
use hcsp_core::{
    BatchEngine, DurabilitySink, Engine, Epoch, EpochPublisher, MicroBatchStats, Parallelism,
    PathQuery, PathSet, QueryResponse, QuerySpec, ServiceStats, UpdateSummary,
};
use hcsp_graph::{DiGraph, GraphUpdate};
use hcsp_storage::snapshot::write_snapshot;
use hcsp_storage::{
    fold_batches, FsyncPolicy, RecoveryReport, StdFs, StorageError, StoreOptions, UpdateStore, Vfs,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The request will never be answered: the worker executing it panicked (queries) or the
/// service failed internally (updates). Returned by the non-panicking `wait_result` /
/// `try_wait` accessors; the plain `wait` surfaces it as a panic instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abandoned;

/// Why a request was refused *at admission* — before it ever reached the queue.
///
/// Returned by the fallible submission surface ([`PathService::try_submit`],
/// [`PathService::try_submit_spec`], [`PathService::try_update`]). The panicking
/// wrappers ([`PathService::submit`] and friends) turn these into panics; a network
/// front-end maps them to protocol error frames instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The query names a vertex outside the served graph's vertex space.
    InvalidEndpoint {
        /// The offending query.
        query: PathQuery,
        /// The vertex-space size of the tip snapshot the query was validated against.
        num_vertices: usize,
    },
    /// The service is shutting down: the admission queue no longer accepts requests.
    ShuttingDown,
    /// The service can no longer admit this kind of request consistently: the admission
    /// lock is poisoned, or (for updates on a durable service) the update store latched
    /// itself after a write failure and refuses to acknowledge further batches until the
    /// service is reopened. Queries may keep serving the last consistent state.
    Poisoned,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::InvalidEndpoint {
                query,
                num_vertices,
            } => write!(
                f,
                "{query} endpoints out of range for a graph of {num_vertices} vertices"
            ),
            AdmissionError::ShuttingDown => {
                f.write_str("service is shutting down: request refused at admission")
            }
            AdmissionError::Poisoned => f.write_str(
                "service admission is poisoned: the request cannot be accepted consistently",
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl std::fmt::Display for Abandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("request abandoned: the service worker handling it panicked")
    }
}

impl std::error::Error for Abandoned {}

/// The typed answer to one served query spec.
#[derive(Debug)]
pub struct SpecResult {
    /// The mode-shaped response (existence bit, count, or paths).
    pub response: QueryResponse,
    /// Time the query spent in the admission queue before its micro-batch started.
    pub queue_wait: Duration,
    /// Size of the micro-batch the query was executed in.
    pub batch_size: usize,
}

/// The answer to one served `Collect`-mode query (the classic [`PathService::submit`]
/// surface).
#[derive(Debug)]
pub struct QueryResult {
    /// Every HC-s-t path of the query.
    pub paths: PathSet,
    /// Time the query spent in the admission queue before its micro-batch started.
    pub queue_wait: Duration,
    /// Size of the micro-batch the query was executed in.
    pub batch_size: usize,
}

/// Lifecycle of a result slot.
#[derive(Debug, Default)]
enum SlotState {
    /// The query is queued or executing.
    #[default]
    Pending,
    /// The result is available.
    Ready(SpecResult),
    /// The query will never be answered (its worker panicked mid-batch).
    Abandoned,
}

/// One-shot result slot shared between a worker and a [`SpecHandle`].
#[derive(Debug, Default)]
struct ResultSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResultSlot {
    /// Delivers the result. A slot is one-shot: fulfilling it twice (or after an
    /// abandonment) is an invariant violation — the duplicate would silently overwrite
    /// an answer a waiter may already have consumed — so it debug-panics and is logged
    /// (and dropped) in release builds.
    fn fulfill(&self, result: SpecResult) {
        let mut state = self.state.lock().unwrap();
        if !matches!(*state, SlotState::Pending) {
            drop(state);
            debug_assert!(
                false,
                "ResultSlot fulfilled twice: one-shot slots take exactly one result"
            );
            eprintln!("hcsp-service: ResultSlot fulfilled twice; dropping the duplicate result");
            return;
        }
        *state = SlotState::Ready(result);
        self.ready.notify_all();
    }

    /// Marks a still-pending slot as never-to-be-answered, waking any waiter.
    fn abandon(&self) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// A claim on the typed result of one submitted [`QuerySpec`].
#[derive(Debug)]
#[must_use = "dropping one silently abandons the result; call wait() or try_wait()"]
pub struct SpecHandle {
    slot: Arc<ResultSlot>,
}

impl SpecHandle {
    /// Blocks until the spec's micro-batch has executed and returns the typed result.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the spec's micro-batch panicked (the query can
    /// never be answered; panicking here surfaces the failure instead of hanging
    /// forever). Use [`SpecHandle::wait_result`] to handle that case as an error.
    pub fn wait(self) -> SpecResult {
        self.wait_result()
            .expect("query abandoned: the service worker executing it panicked")
    }

    /// Blocks until the spec's micro-batch has executed; returns [`Abandoned`] instead
    /// of panicking when the worker executing it died.
    pub fn wait_result(self) -> Result<SpecResult, Abandoned> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Ready(result) => return Ok(result),
                SlotState::Abandoned => return Err(Abandoned),
                SlotState::Pending => state = self.slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Non-blocking claim: the result (or the abandonment) if it is already decided,
    /// otherwise the handle itself back, still waitable.
    #[allow(clippy::result_large_err)] // Err is the handle handed back, not an error.
    pub fn try_wait(self) -> Result<Result<SpecResult, Abandoned>, SpecHandle> {
        {
            let mut state = self.slot.state.lock().unwrap();
            match std::mem::take(&mut *state) {
                SlotState::Ready(result) => return Ok(Ok(result)),
                SlotState::Abandoned => return Ok(Err(Abandoned)),
                SlotState::Pending => {}
            }
        }
        Err(self)
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }
}

/// A claim on the result of one submitted `Collect`-mode query (wraps a [`SpecHandle`]).
#[derive(Debug)]
#[must_use = "dropping one silently abandons the result; call wait() or try_wait()"]
pub struct QueryHandle {
    inner: SpecHandle,
}

impl QueryHandle {
    /// Blocks until the query's micro-batch has executed and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the query's micro-batch panicked (the query can
    /// never be answered; panicking here surfaces the failure instead of hanging
    /// forever). Use [`QueryHandle::wait_result`] to handle that case as an error.
    pub fn wait(self) -> QueryResult {
        self.wait_result()
            .expect("query abandoned: the service worker executing it panicked")
    }

    /// Blocks until the query's micro-batch has executed; returns [`Abandoned`] instead
    /// of panicking when the worker executing it died.
    pub fn wait_result(self) -> Result<QueryResult, Abandoned> {
        self.inner.wait_result().map(QueryResult::from_spec)
    }

    /// Non-blocking claim: the result (or the abandonment) if it is already decided,
    /// otherwise the handle itself back, still waitable.
    #[allow(clippy::result_large_err)] // Err is the handle handed back, not an error.
    pub fn try_wait(self) -> Result<Result<QueryResult, Abandoned>, QueryHandle> {
        match self.inner.try_wait() {
            Ok(decided) => Ok(decided.map(QueryResult::from_spec)),
            Err(inner) => Err(QueryHandle { inner }),
        }
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }
}

impl QueryResult {
    fn from_spec(result: SpecResult) -> QueryResult {
        QueryResult {
            paths: result
                .response
                .into_paths()
                .expect("submit() always runs in Collect mode"),
            queue_wait: result.queue_wait,
            batch_size: result.batch_size,
        }
    }
}

/// One queued query spec together with its arrival time, pinned epoch and result slot.
struct Submission {
    spec: QuerySpec,
    submitted_at: Instant,
    /// The tip epoch at admission time: the snapshot this query executes against.
    epoch: Arc<Epoch>,
    slot: Arc<ResultSlot>,
}

impl Drop for Submission {
    /// A submission dropped without [`ResultSlot::fulfill`] (worker panic unwinding the
    /// batch, or an internal channel failure) must not leave its handle blocked forever.
    fn drop(&mut self) {
        self.slot.abandon();
    }
}

/// One admission window's worth of submissions, all pinned to the same epoch.
struct MicroBatch {
    submissions: Vec<Submission>,
    epoch: Arc<Epoch>,
}

/// Lifecycle of an update slot (mirrors [`SlotState`] for graph updates).
#[derive(Debug, Default)]
enum UpdateState {
    /// The update is being published.
    #[default]
    Pending,
    /// The update's epoch is published.
    Ready(UpdateSummary),
    /// The update will never complete (internal failure while publishing).
    Abandoned,
}

/// One-shot completion slot shared between the publish path and an [`UpdateHandle`].
#[derive(Debug, Default)]
struct UpdateSlot {
    state: Mutex<UpdateState>,
    ready: Condvar,
}

impl UpdateSlot {
    /// Delivers the summary. A slot is one-shot: a second fulfill (or one after an
    /// abandonment) is an invariant violation — historically it was silently swallowed,
    /// hiding double-dispatch bugs — so it debug-panics and is logged (and dropped) in
    /// release builds.
    fn fulfill(&self, summary: UpdateSummary) {
        let mut state = self.state.lock().unwrap();
        if !matches!(*state, UpdateState::Pending) {
            drop(state);
            debug_assert!(
                false,
                "UpdateSlot fulfilled twice: one-shot slots take exactly one summary"
            );
            eprintln!("hcsp-service: UpdateSlot fulfilled twice; dropping the duplicate summary");
            return;
        }
        *state = UpdateState::Ready(summary);
        self.ready.notify_all();
    }

    fn abandon(&self) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, UpdateState::Pending) {
            *state = UpdateState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// A claim on the completion of one [`PathService::update`] call.
#[derive(Debug)]
#[must_use = "dropping one loses the durability acknowledgement; call wait() or try_wait()"]
pub struct UpdateHandle {
    slot: Arc<UpdateSlot>,
}

impl UpdateHandle {
    /// Blocks until the update's epoch is published and returns what the batch did.
    ///
    /// Publication is synchronous with [`PathService::update`] — the handle is ready by
    /// the time that call returns — so `wait` never blocks behind query execution: the
    /// epoch protocol applies updates to worker engines lazily, per pinned micro-batch,
    /// not behind a pool-wide barrier. Once `wait` returns (equivalently, once the
    /// `update` call itself returned), every query submitted afterwards executes against
    /// the updated snapshot; queries submitted before it keep their pinned pre-update
    /// snapshot regardless of execution timing.
    ///
    /// # Panics
    ///
    /// Panics if the service failed internally while publishing the update. Use
    /// [`UpdateHandle::wait_result`] to handle that case as an error.
    pub fn wait(self) -> UpdateSummary {
        self.wait_result()
            .expect("update abandoned: the service failed while publishing it")
    }

    /// Blocks until the update's epoch is published; returns [`Abandoned`] instead of
    /// panicking when the service failed internally.
    pub fn wait_result(self) -> Result<UpdateSummary, Abandoned> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::take(&mut *state) {
                UpdateState::Ready(summary) => return Ok(summary),
                UpdateState::Abandoned => return Err(Abandoned),
                UpdateState::Pending => state = self.slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Non-blocking claim: the summary (or the abandonment) if it is already decided,
    /// otherwise the handle itself back, still waitable.
    #[allow(clippy::result_large_err)] // Err is the handle handed back, not an error.
    pub fn try_wait(self) -> Result<Result<UpdateSummary, Abandoned>, UpdateHandle> {
        {
            let mut state = self.slot.state.lock().unwrap();
            match std::mem::take(&mut *state) {
                UpdateState::Ready(summary) => return Ok(Ok(summary)),
                UpdateState::Abandoned => return Ok(Err(Abandoned)),
                UpdateState::Pending => {}
            }
        }
        Err(self)
    }

    /// Whether the update has completed (non-blocking).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), UpdateState::Pending)
    }
}

/// The service's shared epoch state: the single-writer publisher behind the admission
/// lock, plus a lock-free mirror of the tip id so workers can cheaply detect whether a
/// batch they just finished was pinned behind the tip.
struct EpochCell {
    /// Serialises publishes against tip pins: `submit_spec` reads the tip and enqueues
    /// under this lock, `update` publishes under it, so epoch order *is* admission order.
    publisher: Mutex<EpochPublisher>,
    /// The tip epoch's id, mirrored on every publish (`Release`; readers `Acquire`).
    tip_id: AtomicU64,
}

impl EpochCell {
    fn new(graph: Arc<DiGraph>) -> Self {
        let publisher = EpochPublisher::new(graph);
        let tip_id = AtomicU64::new(publisher.tip().id());
        EpochCell {
            publisher: Mutex::new(publisher),
            tip_id,
        }
    }

    fn tip(&self) -> Arc<Epoch> {
        self.publisher.lock().unwrap().tip()
    }

    fn tip_id(&self) -> u64 {
        self.tip_id.load(Ordering::Acquire)
    }
}

/// Where a durable service keeps its update log and snapshots.
///
/// The backend is part of [`DurabilityOptions`], so one builder entry point —
/// [`PathServiceBuilder::start`] — covers the whole spectrum from purely in-memory
/// serving to a crash-test filesystem.
#[derive(Clone, Default)]
pub enum DurabilityBackend {
    /// No durability: state lives only in memory (the default).
    #[default]
    Ephemeral,
    /// A fresh [`UpdateStore`] in this directory; the started graph becomes snapshot 0.
    /// Starting fails with [`StorageError::AlreadyExists`] if the directory already
    /// holds a store (open it with [`PathServiceBuilder::open`] instead).
    Directory(std::path::PathBuf),
    /// A fresh [`UpdateStore`] over an explicit [`Vfs`] (the crash tests pass a
    /// `FailpointFs`; production code wants [`DurabilityBackend::Directory`]).
    Vfs(Arc<dyn Vfs>),
}

impl std::fmt::Debug for DurabilityBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityBackend::Ephemeral => f.write_str("Ephemeral"),
            DurabilityBackend::Directory(dir) => f.debug_tuple("Directory").field(dir).finish(),
            DurabilityBackend::Vfs(_) => f.write_str("Vfs(..)"),
        }
    }
}

/// Durability configuration for [`PathServiceBuilder::start`] and
/// [`PathServiceBuilder::open`]: where the store lives ([`DurabilityBackend`]), when it
/// fsyncs, and when the background compactor checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Where the update log and snapshots live (default: no durability at all).
    pub backend: DurabilityBackend,
    /// When acknowledged update batches are fsynced (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// The background compactor checkpoints (snapshot + log truncation) once the WAL
    /// tail exceeds this many bytes. `u64::MAX` disables background compaction;
    /// explicit [`PathService::checkpoint`] calls still work.
    pub compact_tail_bytes: u64,
    /// How often the background compactor re-examines the tail size (it is also woken
    /// eagerly by every update).
    pub compact_check_interval: Duration,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            backend: DurabilityBackend::Ephemeral,
            fsync: FsyncPolicy::Always,
            compact_tail_bytes: 4 << 20,
            compact_check_interval: Duration::from_millis(25),
        }
    }
}

impl DurabilityOptions {
    /// Options for a store rooted in `dir` (see [`DurabilityBackend::Directory`]).
    pub fn directory(dir: impl Into<std::path::PathBuf>) -> Self {
        DurabilityOptions {
            backend: DurabilityBackend::Directory(dir.into()),
            ..DurabilityOptions::default()
        }
    }

    /// Options for a store over an explicit [`Vfs`] (see [`DurabilityBackend::Vfs`]).
    pub fn vfs(vfs: Arc<dyn Vfs>) -> Self {
        DurabilityOptions {
            backend: DurabilityBackend::Vfs(vfs),
            ..DurabilityOptions::default()
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the background-compaction threshold (`u64::MAX` disables it).
    pub fn compact_tail_bytes(mut self, bytes: u64) -> Self {
        self.compact_tail_bytes = bytes;
        self
    }

    /// Sets how often the background compactor re-examines the WAL tail.
    pub fn compact_check_interval(mut self, interval: Duration) -> Self {
        self.compact_check_interval = interval;
        self
    }
}

/// Shared state of the group-commit protocol (only instantiated for durable services
/// with [`FsyncPolicy::Always`]).
///
/// Under plain `Always`, every update batch pays its own fsync *inside* the admission
/// lock — co-arriving updates serialise behind each other's sync. Group commit moves the
/// fsync out of the lock: the sink appends the frame unsynced (recording the batch
/// sequence as `appended`), and each updater then asks the committer to make the log
/// durable *through its own sequence*. The first such caller becomes the syncer for
/// everything appended so far; callers whose sequence is already covered by a completed
/// (or in-flight) sync just wait — one fsync acknowledges the whole co-arriving window.
#[derive(Debug, Default)]
struct GroupCommitter {
    state: Mutex<GroupState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Highest batch sequence appended (exclusive: `next_batch_seq` after the append).
    appended: u64,
    /// Highest batch sequence made durable (exclusive).
    synced: u64,
    /// The sequence bound (exclusive) an in-flight fsync will cover, if one is running.
    syncing: Option<u64>,
    /// A sync failed: the store is poisoned, nothing past `synced` will ever be durable.
    failed: bool,
    /// Completed group fsyncs (mirrored into [`ServiceStats::group_commit_batches`]).
    fsyncs: u64,
}

impl GroupCommitter {
    /// Records that the frame for batch `seq` reached the (unsynced) log.
    fn note_appended(&self, seq: u64) {
        let mut state = self.state.lock().unwrap();
        state.appended = state.appended.max(seq + 1);
    }

    /// Blocks until every batch below `target` (exclusive) is durable, performing the
    /// fsync if no in-flight sync already covers it. Returns whether this caller's
    /// window is durable, and the number of group fsyncs this call completed (0 when it
    /// rode on someone else's).
    fn sync_through(&self, target: u64, store: &Mutex<UpdateStore>) -> (bool, u64) {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.synced >= target {
                return (true, 0);
            }
            if state.failed {
                return (false, 0);
            }
            match state.syncing {
                // An in-flight sync covers us: wait for it to land.
                Some(bound) if bound >= target => {
                    state = self.done.wait(state).unwrap();
                }
                // No sync in flight (or one that started before our append): become the
                // syncer for everything appended so far.
                _ if state.syncing.is_none() => {
                    let goal = state.appended;
                    state.syncing = Some(goal);
                    drop(state);
                    let outcome = match store.lock() {
                        Ok(mut store) => store.sync().map_err(|_| ()),
                        Err(_) => Err(()),
                    };
                    state = self.state.lock().unwrap();
                    state.syncing = None;
                    match outcome {
                        Ok(()) => {
                            state.synced = state.synced.max(goal);
                            state.fsyncs += 1;
                            self.done.notify_all();
                            if state.synced >= target {
                                return (true, 1);
                            }
                        }
                        Err(()) => {
                            state.failed = true;
                            self.done.notify_all();
                            return (false, 0);
                        }
                    }
                }
                // A sync that won't cover us is in flight: wait for the slot.
                _ => {
                    state = self.done.wait(state).unwrap();
                }
            }
        }
    }
}

/// The [`DurabilitySink`] adapter: appends published batches to the [`UpdateStore`].
///
/// Called from inside [`EpochPublisher::try_publish`] while the admission lock is held,
/// so the lock order is always publisher → store — the same order the checkpoint path
/// uses, which is what makes the two paths deadlock-free. With a [`GroupCommitter`]
/// attached (durable + [`FsyncPolicy::Always`]) the append is *unsynced*: the fsync
/// happens outside the admission lock, shared across co-arriving updates.
struct WalSink {
    store: Arc<Mutex<UpdateStore>>,
    group: Option<Arc<GroupCommitter>>,
}

/// Flattens a [`StorageError`] into the `io::Error` the [`DurabilitySink`] contract
/// carries (unwrapping a plain Io error, stringifying the structured ones).
fn storage_to_io(e: StorageError) -> std::io::Error {
    match e {
        StorageError::Io(e) => e,
        other => std::io::Error::other(other.to_string()),
    }
}

impl DurabilitySink for WalSink {
    fn append(&mut self, updates: &[GraphUpdate]) -> std::io::Result<()> {
        let mut store = self
            .store
            .lock()
            .map_err(|_| std::io::Error::other("update store poisoned"))?;
        match &self.group {
            Some(group) => {
                let seq = store.append_unsynced(updates).map_err(storage_to_io)?;
                group.note_appended(seq);
                Ok(())
            }
            None => store.append(updates).map(|_| ()).map_err(storage_to_io),
        }
    }
}

/// The durable half of a [`PathService`]: the store, the background compactor, and what
/// recovery found at open time.
#[derive(Debug)]
struct Durability {
    store: Arc<Mutex<UpdateStore>>,
    recovery: Option<RecoveryReport>,
    checkpoints: Arc<AtomicU64>,
    /// The group-commit protocol state; `Some` iff the fsync policy is `Always`.
    group: Option<Arc<GroupCommitter>>,
    /// Stop flag + wakeup for the compactor (updates notify it after growing the tail).
    signal: Arc<(Mutex<bool>, Condvar)>,
    compactor: Option<JoinHandle<()>>,
}

/// One checkpoint pass, usable from both the background compactor and
/// [`PathService::checkpoint`]. Takes the admission lock, then the store lock — the
/// same order as the update path — to atomically rotate the WAL and capture the tip
/// graph the rotation point corresponds to; the snapshot itself is written with both
/// locks released, so queries and updates flow concurrently with the expensive part.
/// Returns whether a checkpoint was actually installed.
fn run_checkpoint(cell: &EpochCell, store: &Mutex<UpdateStore>) -> Result<bool, StorageError> {
    let (ticket, graph, vfs) = {
        let Ok(publisher) = cell.publisher.lock() else {
            // A poisoned admission lock means the epoch sequence is broken; there is no
            // consistent tip to snapshot. Recovery from the existing log stays correct.
            return Ok(false);
        };
        let mut store = store
            .lock()
            .map_err(|_| StorageError::Io(std::io::Error::other("update store poisoned")))?;
        let ticket = store.begin_checkpoint()?;
        // Under both locks the tip graph is exactly the state after every batch before
        // the rotation point: the pair (ticket, graph) is consistent by construction.
        (ticket, publisher.tip().graph_arc(), store.vfs())
    };
    match ticket {
        None => Ok(false),
        Some(ticket) => {
            write_snapshot(vfs.as_ref(), ticket.seq, &graph)?;
            store
                .lock()
                .map_err(|_| StorageError::Io(std::io::Error::other("update store poisoned")))?
                .commit_checkpoint(ticket)?;
            Ok(true)
        }
    }
}

/// The background compaction job: wake on the interval (or an update's nudge), check the
/// WAL tail against the threshold, checkpoint when it is exceeded. A storage error stops
/// the job — the service keeps serving and appending, only automatic compaction ends
/// (recovery replays a longer tail).
fn compactor_loop(
    cell: Arc<EpochCell>,
    store: Arc<Mutex<UpdateStore>>,
    signal: Arc<(Mutex<bool>, Condvar)>,
    threshold: u64,
    interval: Duration,
    checkpoints: Arc<AtomicU64>,
) {
    let (stop, wake) = &*signal;
    let mut stopped = stop.lock().unwrap();
    loop {
        if *stopped {
            return;
        }
        stopped = wake.wait_timeout(stopped, interval).unwrap().0;
        if *stopped {
            return;
        }
        let tail = match store.lock() {
            Ok(store) => store.tail_bytes(),
            Err(_) => return,
        };
        if tail < threshold {
            continue;
        }
        drop(stopped);
        match run_checkpoint(&cell, &store) {
            Ok(true) => {
                checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(e) => {
                eprintln!("hcsp-service: background checkpoint failed, compaction stops: {e}");
                return;
            }
        }
        stopped = stop.lock().unwrap();
    }
}

/// Configures and starts a [`PathService`].
#[derive(Debug, Clone)]
pub struct PathServiceBuilder {
    config: BatchEngine,
    policy: BatchPolicy,
    workers: usize,
    index_root_cap: Option<usize>,
    parallel_cluster_cap: Option<usize>,
    durability: DurabilityOptions,
}

impl Default for PathServiceBuilder {
    fn default() -> Self {
        PathServiceBuilder {
            config: BatchEngine::default(),
            policy: BatchPolicy::default(),
            workers: 1,
            index_root_cap: None,
            parallel_cluster_cap: None,
            durability: DurabilityOptions::default(),
        }
    }
}

/// Default similarity-cluster cap applied when micro-batches execute in parallel
/// (`exec_threads > 1`) and no explicit cap was configured. Micro-batching exists to form
/// *cohesive* batches, which routinely collapse into a single similarity cluster — one
/// cluster is one parallel unit, so without a cap the extra threads would idle. Eight
/// queries per sub-cluster keeps strong intra-cluster sharing while giving a typical
/// micro-batch several parallel units.
const DEFAULT_PARALLEL_CLUSTER_CAP: usize = 8;

impl PathServiceBuilder {
    /// The per-batch engine configuration (algorithm + γ); default `BatchEnum+`.
    pub fn engine(mut self, config: BatchEngine) -> Self {
        self.config = config;
        self
    }

    /// The micro-batch admission policy.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of worker threads executing micro-batches (each owns a reusable [`Engine`];
    /// values of 0 are treated as 1). One worker guarantees micro-batches execute in
    /// admission order.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Caps each worker's cached index at roughly `cap` roots (see
    /// [`Engine::set_index_root_cap`]): once exceeded, the cache is dropped and rebuilt
    /// from the next micro-batch alone. The default (`None`) keeps every endpoint ever
    /// served indexed — fastest for a stable working set, unbounded memory for a stream
    /// of one-off endpoints.
    pub fn index_root_cap(mut self, cap: usize) -> Self {
        self.index_root_cap = Some(cap);
        self
    }

    /// Caps the similarity-cluster size of *parallel* micro-batch execution (see
    /// [`Engine::set_parallel_cluster_cap`]). Only consulted when the policy's
    /// `exec_threads > 1`; defaults to a small cap in that case so that a cohesive
    /// micro-batch (often one big similarity cluster) still yields parallel units.
    pub fn parallel_cluster_cap(mut self, cap: usize) -> Self {
        self.parallel_cluster_cap = Some(cap);
        self
    }

    /// The durability configuration applied by [`PathServiceBuilder::start`] and
    /// [`PathServiceBuilder::open`]: backend (ephemeral / directory / explicit [`Vfs`]),
    /// fsync policy, compaction thresholds. The default is fully ephemeral.
    pub fn durability(mut self, options: DurabilityOptions) -> Self {
        self.durability = options;
        self
    }

    /// Starts the service over `graph`, durable or not according to the configured
    /// [`DurabilityOptions::backend`].
    ///
    /// With the default [`DurabilityBackend::Ephemeral`] this cannot fail (state lives
    /// only in memory). With a directory or [`Vfs`] backend a fresh [`UpdateStore`] is
    /// initialised there: `graph` becomes snapshot 0 and every acknowledged update batch
    /// is written ahead to the store's log, so [`PathServiceBuilder::open`] on the same
    /// backend recovers the exact acknowledged state after any crash. Fails with
    /// [`StorageError::AlreadyExists`] if the backend already holds a store (open it
    /// instead).
    pub fn start(self, graph: impl Into<Arc<DiGraph>>) -> Result<PathService, StorageError> {
        let graph = graph.into();
        match self.durability.backend.clone() {
            DurabilityBackend::Ephemeral => Ok(self.launch(graph, None)),
            DurabilityBackend::Directory(dir) => {
                let vfs: Arc<dyn Vfs> = Arc::new(StdFs::new(dir)?);
                self.start_on_vfs(graph, vfs)
            }
            DurabilityBackend::Vfs(vfs) => self.start_on_vfs(graph, vfs),
        }
    }

    /// The durable arm of [`PathServiceBuilder::start`]: create a fresh store on `vfs`.
    fn start_on_vfs(
        self,
        graph: Arc<DiGraph>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<PathService, StorageError> {
        let store = UpdateStore::create(
            vfs,
            StoreOptions {
                fsync: self.durability.fsync,
            },
            &graph,
        )?;
        Ok(self.launch(graph, Some((store, None))))
    }

    /// Starts a *durable* service over `graph`, initialising a new store in `dir`.
    #[deprecated(
        since = "0.1.0",
        note = "configure `durability(DurabilityOptions::directory(dir))` and call `start`"
    )]
    pub fn start_durable(
        mut self,
        graph: impl Into<Arc<DiGraph>>,
        dir: impl AsRef<Path>,
    ) -> Result<PathService, StorageError> {
        self.durability.backend = DurabilityBackend::Directory(dir.as_ref().to_path_buf());
        self.start(graph)
    }

    /// Starts a *durable* service over `graph` on an explicit [`Vfs`].
    #[deprecated(
        since = "0.1.0",
        note = "configure `durability(DurabilityOptions::vfs(vfs))` and call `start`"
    )]
    pub fn start_durable_vfs(
        mut self,
        graph: impl Into<Arc<DiGraph>>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<PathService, StorageError> {
        self.durability.backend = DurabilityBackend::Vfs(vfs);
        self.start(graph)
    }

    /// Opens a durable service from an existing store directory, recovering the last
    /// acknowledged state: the newest committed snapshot is loaded and the log tail is
    /// replayed over it. What recovery found is reported by
    /// [`PathService::recovery`].
    pub fn open(self, dir: impl AsRef<Path>) -> Result<PathService, StorageError> {
        let vfs: Arc<dyn Vfs> = Arc::new(StdFs::new(dir)?);
        self.open_vfs(vfs)
    }

    /// [`PathServiceBuilder::open`] over an explicit [`Vfs`].
    pub fn open_vfs(self, vfs: Arc<dyn Vfs>) -> Result<PathService, StorageError> {
        let recovered = UpdateStore::open(
            vfs,
            StoreOptions {
                fsync: self.durability.fsync,
            },
        )?;
        let graph = Arc::new(fold_batches(recovered.base, &recovered.batches));
        Ok(self.launch(graph, Some((recovered.store, Some(recovered.report)))))
    }

    /// Spawns the batcher, worker pool, and (for durable services) the WAL sink and
    /// background compactor.
    fn launch(
        self,
        graph: Arc<DiGraph>,
        durable: Option<(UpdateStore, Option<RecoveryReport>)>,
    ) -> PathService {
        let workers = self.workers.max(1);
        let epoch = Arc::new(EpochCell::new(graph));

        let durability = durable.map(|(store, recovery)| {
            let store = Arc::new(Mutex::new(store));
            // Under `Always`, co-arriving updates share one WAL fsync (group commit);
            // the sink then appends unsynced and each updater syncs through its own
            // sequence outside the admission lock.
            let group = matches!(self.durability.fsync, FsyncPolicy::Always)
                .then(|| Arc::new(GroupCommitter::default()));
            // Every subsequent publish appends to the WAL *before* the epoch swap.
            epoch.publisher.lock().unwrap().set_sink(Box::new(WalSink {
                store: Arc::clone(&store),
                group: group.clone(),
            }));
            let signal = Arc::new((Mutex::new(false), Condvar::new()));
            let checkpoints = Arc::new(AtomicU64::new(0));
            let compactor = (self.durability.compact_tail_bytes != u64::MAX).then(|| {
                let cell = Arc::clone(&epoch);
                let store = Arc::clone(&store);
                let signal = Arc::clone(&signal);
                let checkpoints = Arc::clone(&checkpoints);
                let threshold = self.durability.compact_tail_bytes;
                let interval = self.durability.compact_check_interval;
                std::thread::spawn(move || {
                    compactor_loop(cell, store, signal, threshold, interval, checkpoints)
                })
            });
            Durability {
                store,
                recovery,
                checkpoints,
                group,
                signal,
                compactor,
            }
        });
        let (submit_tx, submit_rx) = mpsc::channel::<Submission>();
        let (batch_tx, batch_rx) = mpsc::channel::<MicroBatch>();
        let policy = self.policy;
        let batcher = std::thread::spawn(move || batcher_loop(submit_rx, batch_tx, policy));

        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let workers = (0..workers)
            .map(|_| {
                let epoch = Arc::clone(&epoch);
                let batch_rx = Arc::clone(&batch_rx);
                let stats = Arc::clone(&stats);
                let config = self.config;
                let root_cap = self.index_root_cap;
                let exec_threads = self.policy.exec_threads.max(1);
                let cluster_cap = if exec_threads > 1 {
                    Some(
                        self.parallel_cluster_cap
                            .unwrap_or(DEFAULT_PARALLEL_CLUSTER_CAP),
                    )
                } else {
                    None
                };
                std::thread::spawn(move || {
                    worker_loop(
                        epoch,
                        config,
                        root_cap,
                        exec_threads,
                        cluster_cap,
                        batch_rx,
                        stats,
                    )
                })
            })
            .collect();

        PathService {
            epoch,
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            stats,
            started_at: Instant::now(),
            durability,
        }
    }
}

/// Collects submissions into micro-batches according to the policy: a window opens when
/// its first query arrives and closes at the size cap, the deadline, **or an epoch
/// change**, whichever first.
///
/// Every submission carries the epoch pinned at its admission; a window holds
/// submissions of exactly one epoch. When an arriving submission pins a *different*
/// epoch than the window's, the window closes (its queries execute against their pinned
/// snapshot, undisturbed) and the newcomer seeds the next window. The batcher never sees
/// updates at all — publication happens synchronously inside [`PathService::update`] —
/// so a no-op update, which republishes the same tip, splits nothing.
fn batcher_loop(rx: Receiver<Submission>, batch_tx: Sender<MicroBatch>, policy: BatchPolicy) {
    // A submission that pinned a newer epoch than the open window; it closed that window
    // and must open the next one.
    let mut carry: Option<Submission> = None;
    loop {
        let first = match carry.take() {
            Some(submission) => submission,
            None => match rx.recv() {
                Ok(submission) => submission,
                Err(_) => return,
            },
        };
        let epoch = Arc::clone(&first.epoch);
        let mut submissions = vec![first];
        if !policy.is_per_query() {
            let deadline = Instant::now() + policy.max_delay;
            while submissions.len() < policy.max_batch_size {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match rx.recv_timeout(remaining) {
                    Ok(submission) => {
                        if submission.epoch.id() != epoch.id() {
                            // Epoch boundary: this window's queries keep their pinned
                            // snapshot; the newcomer seeds the next window.
                            carry = Some(submission);
                            break;
                        }
                        submissions.push(submission);
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        if batch_tx.send(MicroBatch { submissions, epoch }).is_err() {
            return;
        }
    }
    // Submission side disconnected: dropping `batch_tx` lets the workers drain and exit.
}

/// Executes micro-batches on one reusable engine, routing results back per query.
///
/// Before running a batch, the engine advances to the batch's pinned epoch
/// ([`Engine::advance_to_epoch`]): a no-op when already there, an incremental index
/// maintenance step when the epochs' retained deltas cover the gap, an index
/// invalidation otherwise — never a barrier against other workers. `exec_threads > 1`
/// runs each micro-batch on the cluster-sharded parallel executor, with `cluster_cap`
/// bounding the similarity clusters so cohesive batches still split into parallel units.
fn worker_loop(
    epoch_cell: Arc<EpochCell>,
    config: BatchEngine,
    root_cap: Option<usize>,
    exec_threads: usize,
    cluster_cap: Option<usize>,
    batch_rx: Arc<Mutex<Receiver<MicroBatch>>>,
    stats: Arc<Mutex<ServiceStats>>,
) {
    let mut engine = Engine::at_epoch(&epoch_cell.tip(), config);
    engine.set_index_root_cap(root_cap);
    engine.set_parallel_cluster_cap(cluster_cap);
    loop {
        // Hold the lock only while waiting for one item; the next worker queues on the
        // mutex, so batches spread across the pool without a work-stealing scheduler.
        let item = { batch_rx.lock().unwrap().recv() };
        let batch = match item {
            Ok(batch) => batch,
            Err(_) => return,
        };

        let exec_start = Instant::now();
        let specs: Vec<QuerySpec> = batch.submissions.iter().map(|s| s.spec).collect();
        // A panicking batch (e.g. a query panicking deep in the enumeration) must not
        // kill the worker: the batch's submissions are dropped by the unwind, which
        // abandons their slots (waking the waiters), and the worker serves on with a
        // fresh engine at the batch's epoch — the cached index may be mid-mutation.
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let advance = engine.advance_to_epoch(&batch.epoch);
            let outcome = if exec_threads > 1 {
                engine.run_specs_parallel(&specs, Parallelism::Fixed(exec_threads))
            } else {
                engine.run_specs(&specs)
            };
            (advance, outcome)
        }));
        let (advance, outcome) = match executed {
            Ok(pair) => pair,
            Err(_) => {
                let epoch = Arc::clone(&batch.epoch);
                drop(batch);
                let mut fresh = Engine::at_epoch(&epoch, config);
                fresh.set_index_root_cap(root_cap);
                fresh.set_parallel_cluster_cap(cluster_cap);
                engine = fresh;
                continue;
            }
        };
        let exec_time = exec_start.elapsed();

        let batch_size = batch.submissions.len();
        let mut total_queue_wait = Duration::ZERO;
        let mut max_queue_wait = Duration::ZERO;
        for submission in &batch.submissions {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            total_queue_wait += queue_wait;
            max_queue_wait = max_queue_wait.max(queue_wait);
        }

        // Record before delivering: a caller returning from `wait()` may immediately
        // snapshot `PathService::stats()` and must see this batch counted.
        {
            let mut stats = stats.lock().unwrap();
            stats.record(&MicroBatchStats {
                batch_size,
                max_queue_wait,
                total_queue_wait,
                exec_time,
                run: outcome.stats,
            });
            if batch.epoch.id() < epoch_cell.tip_id() {
                // This batch ran to completion against a superseded snapshot — the
                // barrier-free read the epoch protocol exists for.
                stats.batches_pinned_behind += 1;
            }
            stats.rebfs_avoided += advance.supported_deletes;
        }

        for (submission, response) in batch.submissions.into_iter().zip(outcome.responses) {
            let queue_wait = exec_start.saturating_duration_since(submission.submitted_at);
            submission.slot.fulfill(SpecResult {
                response,
                queue_wait,
                batch_size,
            });
        }
    }
}

/// A long-lived path-query service: queries stream in one at a time, accumulate under a
/// [`BatchPolicy`], and execute as shared micro-batches on a pool of reusable engines.
///
/// # Example
///
/// ```
/// use hcsp_core::PathQuery;
/// use hcsp_graph::DiGraph;
/// use hcsp_service::{BatchPolicy, PathService};
/// use std::time::Duration;
///
/// // A diamond with two parallel 2-hop routes.
/// let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let service = PathService::builder()
///     .policy(BatchPolicy::by_size(8, Duration::from_millis(2)))
///     .start(graph)
///     .unwrap();
///
/// // Queries are submitted one at a time; each handle waits for its own result.
/// let handle = service.submit(PathQuery::new(0u32, 3u32, 3));
/// let result = handle.wait();
/// assert_eq!(result.paths.len(), 2);
/// assert_eq!(result.paths.get(0)[0], hcsp_graph::VertexId(0));
///
/// let stats = service.shutdown();
/// assert_eq!(stats.num_queries, 1);
/// assert_eq!(stats.produced_paths, 2);
/// ```
#[derive(Debug)]
pub struct PathService {
    /// The epoch protocol state shared with the worker pool. Also the admission lock:
    /// pinning a tip for a query and publishing a new tip for an update serialise here.
    epoch: Arc<EpochCell>,
    submit_tx: Option<Sender<Submission>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServiceStats>>,
    started_at: Instant,
    /// The WAL + snapshot store and its background compactor; `None` for in-memory
    /// services.
    durability: Option<Durability>,
}

impl std::fmt::Debug for EpochCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("tip_id", &self.tip_id())
            .finish_non_exhaustive()
    }
}

impl PathService {
    /// Starts configuring a service.
    pub fn builder() -> PathServiceBuilder {
        PathServiceBuilder::default()
    }

    /// Starts a service over `graph` with default engine, policy and a single worker.
    pub fn start(graph: impl Into<Arc<DiGraph>>) -> Self {
        PathService::builder()
            .start(graph)
            .expect("an ephemeral service start cannot fail")
    }

    /// Opens a durable service from an existing store directory with default
    /// configuration, recovering the last acknowledged state (snapshot + log-tail
    /// replay). See [`PathServiceBuilder::open`] for the configurable variant and
    /// [`PathService::recovery`] for what recovery found.
    pub fn open(dir: impl AsRef<Path>) -> Result<PathService, StorageError> {
        PathService::builder().open(dir)
    }

    /// Submits one typed query request; returns a handle to wait on its typed result.
    ///
    /// The spec's [`hcsp_core::ResultMode`] decides both the response shape and how much
    /// work the query costs: an `Exists` probe or a `FirstK` request stops the moment it
    /// is satisfied, even mid-micro-batch next to full-enumeration queries.
    ///
    /// The query executes against the tip [`Epoch`] pinned here, at admission: updates
    /// published later never change what it returns, and it never waits for them.
    ///
    /// Note on `FirstK` determinism: the returned paths are the first `k` in the
    /// engine's enumeration order *for the executed micro-batch* — a deterministic
    /// function of the batch (and always a subset of the full result set), but batching
    /// itself depends on arrival timing.
    ///
    /// # Panics
    ///
    /// Panics if admission refuses the spec — out-of-range endpoints (in the caller's
    /// thread, exactly like the offline `BatchEngine` would, rather than poisoning a
    /// worker that is executing other users' queries), a shutting-down service, or a
    /// poisoned admission lock. Use [`PathService::try_submit_spec`] to handle those
    /// cases as errors; a thin `expect`-style wrapper is all this method is.
    pub fn submit_spec(&self, spec: QuerySpec) -> SpecHandle {
        match self.try_submit_spec(spec) {
            Ok(handle) => handle,
            Err(refusal) => panic!("{refusal}"),
        }
    }

    /// Fallible twin of [`PathService::submit_spec`]: refuses the spec with an
    /// [`AdmissionError`] instead of panicking.
    ///
    /// This is the surface a network front-end uses — an invalid query from one client
    /// must become an error *response*, never a panic inside the serving process.
    pub fn try_submit_spec(&self, spec: QuerySpec) -> Result<SpecHandle, AdmissionError> {
        // The admission lock is held across the send: the pinned tip cannot be
        // superseded between validation and admission, so a query validated against a
        // grown vertex space is guaranteed to be admitted after the update that grew it.
        let Ok(publisher) = self.epoch.publisher.lock() else {
            return Err(AdmissionError::Poisoned);
        };
        let tip = publisher.tip();
        let num_vertices = tip.graph().num_vertices();
        let query = spec.query;
        if query.source.index() >= num_vertices || query.target.index() >= num_vertices {
            return Err(AdmissionError::InvalidEndpoint {
                query,
                num_vertices,
            });
        }
        let slot = Arc::new(ResultSlot::default());
        let submission = Submission {
            spec,
            submitted_at: Instant::now(),
            epoch: tip,
            slot: Arc::clone(&slot),
        };
        let Some(tx) = self.submit_tx.as_ref() else {
            return Err(AdmissionError::ShuttingDown);
        };
        if tx.send(submission).is_err() {
            // The batcher is gone; the returned submission's Drop abandoned the slot.
            return Err(AdmissionError::ShuttingDown);
        }
        drop(publisher);
        Ok(SpecHandle { slot })
    }

    /// Submits one query in `Collect` mode (the classic surface); returns a handle to
    /// wait on its full result set. Equivalent to
    /// `submit_spec(QuerySpec::collect(query))` with a [`QueryResult`]-shaped answer.
    ///
    /// # Panics
    ///
    /// Panics if admission refuses the query (see [`PathService::submit_spec`]); use
    /// [`PathService::try_submit`] to handle refusal as an error.
    pub fn submit(&self, query: PathQuery) -> QueryHandle {
        QueryHandle {
            inner: self.submit_spec(QuerySpec::collect(query)),
        }
    }

    /// Fallible twin of [`PathService::submit`]: refuses the query with an
    /// [`AdmissionError`] instead of panicking.
    pub fn try_submit(&self, query: PathQuery) -> Result<QueryHandle, AdmissionError> {
        self.try_submit_spec(QuerySpec::collect(query))
            .map(|inner| QueryHandle { inner })
    }

    /// Applies a batch of graph updates (edge insertions/deletions) by publishing a new
    /// [`Epoch`]; returns a handle that is already complete when this call returns.
    ///
    /// Publication is synchronous and barrier-free: the new tip is built and swapped in
    /// under the admission lock, so queries submitted before this call keep their pinned
    /// pre-update snapshot (and keep executing, even if their micro-batch is still
    /// waiting or running when the epoch lands) while queries submitted after it pin the
    /// post-update snapshot. No worker stops; worker engines advance to the new epoch
    /// lazily, when they next pick up a batch pinned to it. Insertions may grow the
    /// vertex space; queries naming the new vertices validate from the moment this call
    /// returns.
    ///
    /// Results are exactly those of an offline engine over the corresponding snapshot:
    /// the update path changes *which snapshot* a query sees (by admission order), never
    /// *what* a given snapshot returns.
    ///
    /// A poisoned admission lock or a durability failure means the batch was *not*
    /// acknowledged: the returned handle is *abandoned* — [`UpdateHandle::wait_result`]
    /// reports [`Abandoned`] — instead of propagating a panic into this caller. Use
    /// [`PathService::try_update`] to observe the refusal as an [`AdmissionError`].
    pub fn update(&self, updates: impl Into<Vec<GraphUpdate>>) -> UpdateHandle {
        match self.try_update(updates) {
            Ok(handle) => handle,
            Err(_) => {
                let slot = Arc::new(UpdateSlot::default());
                slot.abandon();
                UpdateHandle { slot }
            }
        }
    }

    /// Fallible twin of [`PathService::update`]: refuses the batch with an
    /// [`AdmissionError`] when it cannot be acknowledged.
    ///
    /// [`AdmissionError::Poisoned`] covers both a poisoned admission lock and a durable
    /// store that failed a write or fsync: in either case nothing past the last
    /// acknowledged batch will ever be durable, so no later update may be acknowledged
    /// until the service is reopened. (The failed batch's log write may still have
    /// partially landed: recovery treats such an un-acked batch appearing after a
    /// restart as applied, which the at-least-once contract of durable updates allows.)
    /// Queries keep serving the last acknowledged state throughout.
    ///
    /// On a durable service with [`FsyncPolicy::Always`], co-arriving updates share one
    /// WAL fsync (*group commit*): the frame is appended under the admission lock, the
    /// fsync happens outside it, batched across every update appended in the window.
    /// The new epoch becomes visible to queries when this call publishes it; the call
    /// returns — acknowledging durability — only after the covering fsync lands.
    pub fn try_update(
        &self,
        updates: impl Into<Vec<GraphUpdate>>,
    ) -> Result<UpdateHandle, AdmissionError> {
        let updates: Vec<GraphUpdate> = updates.into();
        let (summary, published, group_target) = {
            let Ok(mut publisher) = self.epoch.publisher.lock() else {
                return Err(AdmissionError::Poisoned);
            };
            let before = publisher.tip().id();
            // On a durable service the publish appends to the WAL first; a sink failure
            // means the batch was *not* acknowledged — the tip is untouched.
            let (tip, summary) = match publisher.try_publish(&updates) {
                Ok(pair) => pair,
                Err(_) => return Err(AdmissionError::Poisoned),
            };
            let published = tip.id() != before;
            self.epoch.tip_id.store(tip.id(), Ordering::Release);
            // Group-commit window bound: everything appended up to now (including this
            // batch) is what our covering fsync must reach. Read under the admission
            // lock so the bound is exact. Empty batches never touch the sink.
            let group_target = match (&self.durability, updates.is_empty()) {
                (Some(durability), false) => durability
                    .group
                    .as_ref()
                    .map(|group| (Arc::clone(group), group.state.lock().unwrap().appended)),
                _ => None,
            };
            (summary, published, group_target)
        };
        // Nudge the compactor: the tail just grew.
        if let Some(durability) = &self.durability {
            durability.signal.1.notify_all();
        }
        // The fsync happens here, *outside* the admission lock: co-arriving updates
        // append under the lock and share whichever single fsync covers them all.
        let mut group_fsyncs = 0;
        if let Some((group, target)) = group_target {
            let store = &self
                .durability
                .as_ref()
                .expect("group commit implies a durable service")
                .store;
            let (durable, fsyncs) = group.sync_through(target, store);
            group_fsyncs = fsyncs;
            if !durable {
                return Err(AdmissionError::Poisoned);
            }
        }
        // Record before fulfilling: a caller returning from `wait()` may immediately
        // snapshot `PathService::stats()` and must see this update counted.
        let slot = Arc::new(UpdateSlot::default());
        {
            let mut stats = self.stats.lock().unwrap();
            stats.record_update(&summary, 1);
            stats.group_commit_batches += group_fsyncs;
            if published {
                stats.epochs_published += 1;
            }
        }
        slot.fulfill(summary);
        Ok(UpdateHandle { slot })
    }

    /// Submits a sequence of queries back to back, returning one handle per query.
    pub fn submit_all(&self, queries: impl IntoIterator<Item = PathQuery>) -> Vec<QueryHandle> {
        queries.into_iter().map(|q| self.submit(q)).collect()
    }

    /// Submits a sequence of typed specs back to back, returning one handle per spec.
    pub fn submit_specs(&self, specs: impl IntoIterator<Item = QuerySpec>) -> Vec<SpecHandle> {
        specs.into_iter().map(|s| self.submit_spec(s)).collect()
    }

    /// Replays an open-loop arrival schedule: sleeps until each event's offset from now,
    /// then submits its query. Returns the handles in schedule order.
    ///
    /// Offsets are relative to the call, so a schedule generated by the workload crate's
    /// arrival process replays with its intended inter-arrival gaps.
    pub fn replay(
        &self,
        schedule: impl IntoIterator<Item = (Duration, PathQuery)>,
    ) -> Vec<QueryHandle> {
        let start = Instant::now();
        schedule
            .into_iter()
            .map(|(offset, query)| {
                let wait = offset.saturating_sub(start.elapsed());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                self.submit(query)
            })
            .collect()
    }

    /// A snapshot of the aggregate service statistics so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().unwrap().clone()
    }

    /// The current tip epoch's version id (0 until the first effective update).
    pub fn epoch_id(&self) -> u64 {
        self.epoch.tip_id()
    }

    /// Whether the service writes acknowledged updates to a durable store.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// What recovery found when this service was opened from an existing store
    /// directory. `None` for in-memory services and for freshly created stores.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.durability.as_ref()?.recovery.as_ref()
    }

    /// Checkpoints completed so far (explicit calls plus the background compactor's).
    pub fn checkpoints(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.checkpoints.load(Ordering::Relaxed))
    }

    /// Forces a checkpoint *now*: snapshot the current state, truncate the log tail.
    /// Returns whether one was installed (`false` when nothing has changed since the
    /// last checkpoint, or on an in-memory service). Queries and updates keep flowing
    /// while the snapshot is written; only the WAL rotation itself holds the admission
    /// lock.
    pub fn checkpoint(&self) -> Result<bool, StorageError> {
        let Some(durability) = &self.durability else {
            return Ok(false);
        };
        let installed = run_checkpoint(&self.epoch, &durability.store)?;
        if installed {
            durability.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        Ok(installed)
    }

    /// Wall-clock time since the service started (the denominator for
    /// [`ServiceStats::throughput_qps`]).
    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops accepting queries, drains everything already submitted, joins all threads and
    /// returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.finish();
        self.stats.lock().unwrap().clone()
    }

    fn finish(&mut self) {
        // Stop the compactor first so no checkpoint races the shutdown.
        if let Some(durability) = &mut self.durability {
            if let Ok(mut stopped) = durability.signal.0.lock() {
                *stopped = true;
            }
            durability.signal.1.notify_all();
            if let Some(compactor) = durability.compactor.take() {
                let _ = compactor.join();
            }
        }
        // Dropping the submission sender unblocks the batcher, which flushes its final
        // window and drops the batch sender, which drains the workers.
        self.submit_tx.take();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A clean shutdown leaves the whole log on stable storage whatever the policy.
        if let Some(durability) = &self.durability {
            if let Ok(mut store) = durability.store.lock() {
                let _ = store.sync();
            }
        }
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_core::BatchEngine;
    use hcsp_graph::generators::regular::{complete, grid};
    use hcsp_graph::VertexId;

    fn grid_queries() -> Vec<PathQuery> {
        vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(4u32, 15u32, 5),
            PathQuery::new(0u32, 15u32, 4),
        ]
    }

    fn offline_counts(graph: &DiGraph, queries: &[PathQuery]) -> Vec<u64> {
        let (counts, _) = BatchEngine::default().run_counting(graph, queries);
        counts
    }

    #[test]
    fn served_results_match_offline_batch_run() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::by_size(
                queries.len(),
                Duration::from_millis(200),
            ))
            .start(graph)
            .unwrap();
        let handles = service.submit_all(queries.clone());
        for (handle, (query, expected)) in handles.into_iter().zip(queries.iter().zip(&expected)) {
            let result = handle.wait();
            assert_eq!(result.paths.len() as u64, *expected, "{query}");
            for p in result.paths.iter() {
                assert_eq!(p[0], query.source);
                assert_eq!(*p.last().unwrap(), query.target);
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, queries.len());
        assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
    }

    #[test]
    fn zero_deadline_serves_every_query_alone() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph)
            .unwrap();
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);

        let stats = service.shutdown();
        assert_eq!(stats.num_batches, stats.num_queries, "one batch per query");
        assert_eq!(stats.max_batch_size, 1);
        assert_eq!(stats.sharing_ratio(), 0.0);
    }

    #[test]
    fn size_cap_closes_the_window_early() {
        let graph = grid(4, 4);
        // A generous deadline: dispatch must be triggered by the size cap, not time.
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_secs(30)))
            .start(graph)
            .unwrap();
        let handles = service.submit_all(grid_queries().into_iter().take(4));
        for handle in handles {
            let result = handle.wait();
            assert!(result.batch_size <= 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 4);
        assert!(stats.num_batches >= 2);
        assert!(stats.max_batch_size <= 2);
    }

    #[test]
    fn multiple_workers_preserve_per_query_results() {
        let graph = complete(6);
        let queries: Vec<PathQuery> = (0..12).map(|i| PathQuery::new(i % 5, 5u32, 3)).collect();
        let expected = offline_counts(&graph, &queries);

        let service = PathService::builder()
            .workers(3)
            .policy(BatchPolicy::by_size(3, Duration::from_millis(50)))
            .start(graph)
            .unwrap();
        let handles = service.submit_all(queries);
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 12);
    }

    #[test]
    fn parallel_exec_threads_serve_identical_results() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);

        for (exec_threads, explicit_cap) in [(2, None), (4, None), (2, Some(1))] {
            let mut builder = PathService::builder().policy(
                BatchPolicy::by_size(queries.len(), Duration::from_millis(200))
                    .with_exec_threads(exec_threads),
            );
            if let Some(cap) = explicit_cap {
                builder = builder.parallel_cluster_cap(cap);
            }
            let service = builder.start(graph.clone()).unwrap();
            let handles = service.submit_all(queries.clone());
            let counts: Vec<u64> = handles
                .into_iter()
                .map(|h| h.wait().paths.len() as u64)
                .collect();
            assert_eq!(
                counts, expected,
                "exec_threads = {exec_threads}, cap = {explicit_cap:?}"
            );
            let stats = service.shutdown();
            assert_eq!(stats.num_queries, queries.len());
            assert_eq!(stats.produced_paths, expected.iter().sum::<u64>());
        }
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let graph = complete(5);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_millis(500)))
            .start(graph)
            .unwrap();
        let handles = service.submit_all((0..8).map(|i| PathQuery::new(i % 4, 4u32, 3)));
        // Shut down immediately: every already-submitted query must still be answered.
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, 8);
        for handle in handles {
            assert!(handle.is_ready());
            assert!(!handle.wait().paths.is_empty());
        }
    }

    #[test]
    fn replay_submits_in_schedule_order() {
        let graph = complete(5);
        let service = PathService::start(graph);
        let schedule = vec![
            (Duration::ZERO, PathQuery::new(0u32, 4u32, 2)),
            (Duration::from_millis(1), PathQuery::new(1u32, 4u32, 2)),
            (Duration::from_millis(2), PathQuery::new(2u32, 4u32, 3)),
        ];
        let handles = service.replay(schedule);
        assert_eq!(handles.len(), 3);
        for handle in handles {
            let result = handle.wait();
            assert!(result
                .paths
                .iter()
                .all(|p| *p.last().unwrap() == VertexId(4)));
        }
        assert!(service.uptime() > Duration::ZERO);
        assert_eq!(service.stats().num_queries, 3);
        drop(service);
    }

    #[test]
    fn updates_are_snapshot_boundaries_in_admission_order() {
        // A diamond whose second route appears only after the update.
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        // A generous window: the pre-update query would otherwise wait out the deadline;
        // the epoch change carried by `after` must close the window instead.
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_secs(30)))
            .start(graph)
            .unwrap();
        let before = service.submit(q);
        let update = service.update(vec![
            GraphUpdate::insert(0u32, 2u32),
            GraphUpdate::insert(2u32, 3u32),
        ]);
        let after = service.submit(q);
        // Shutdown flushes the (30 s) window holding `after`; the window holding
        // `before` must already have been split off by the epoch boundary.
        let stats = service.shutdown();

        let before = before.wait();
        assert_eq!(before.paths.len(), 1, "pre-update snapshot");
        assert_eq!(
            before.batch_size, 1,
            "the epoch change must have closed the first window before `after` joined it"
        );
        assert_eq!(after.wait().paths.len(), 2, "post-update snapshot");
        assert_eq!(update.wait().applied, 2);
        assert_eq!(stats.update_batches, 1);
        assert_eq!(stats.updates_applied, 2);
        assert_eq!(stats.epochs_published, 1);
    }

    #[test]
    fn updates_reach_every_worker_engine() {
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        let service = PathService::builder()
            .workers(4)
            .policy(BatchPolicy::immediate())
            .start(graph)
            .unwrap();
        // Warm all workers on the old graph, then update, then hammer again: whichever
        // worker picks a post-update query must advance its engine to the new epoch.
        for handle in service.submit_all(std::iter::repeat_n(q, 8)) {
            assert_eq!(handle.wait().paths.len(), 1);
        }
        service
            .update(vec![
                GraphUpdate::insert(0u32, 2u32),
                GraphUpdate::insert(2u32, 3u32),
            ])
            .wait();
        for handle in service.submit_all(std::iter::repeat_n(q, 8)) {
            assert_eq!(handle.wait().paths.len(), 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.update_batches, 1, "one update however many workers");
        assert_eq!(stats.epochs_published, 1);
    }

    #[test]
    fn update_deletions_remove_paths() {
        let graph = grid(4, 4);
        let q = PathQuery::new(0u32, 15u32, 6);
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph.clone())
            .unwrap();
        let expected_before = offline_counts(&graph, &[q])[0];
        assert_eq!(service.submit(q).wait().paths.len() as u64, expected_before);

        let mut delta = hcsp_graph::DeltaGraph::new(graph);
        assert!(delta.delete_edge(VertexId(0), VertexId(1)));
        let summary = service.update(vec![GraphUpdate::delete(0u32, 1u32)]).wait();
        assert_eq!(summary.applied, 1);
        let expected_after = offline_counts(&delta.compact(), &[q])[0];
        assert!(expected_after < expected_before);
        assert_eq!(service.submit(q).wait().paths.len() as u64, expected_after);
        service.shutdown();
    }

    #[test]
    fn updates_grow_the_vertex_space_for_validation() {
        let graph = DiGraph::from_edge_list(2, &[(0, 1)]).unwrap();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(graph)
            .unwrap();
        service.update(vec![GraphUpdate::insert(1u32, 2u32)]).wait();
        // Vertex 2 did not exist at start; after the update it is addressable.
        let result = service.submit(PathQuery::new(0u32, 2u32, 2)).wait();
        assert_eq!(result.paths.len(), 1);
        service.shutdown();
    }

    #[test]
    fn noop_update_completes_with_zero_applied() {
        let service = PathService::start(complete(3));
        let handle = service.update(Vec::new());
        let summary = handle.wait();
        assert_eq!(summary, UpdateSummary::default());
        let handle = service.update(vec![GraphUpdate::insert(0u32, 1u32)]);
        assert_eq!(handle.wait().ignored, 1);
        let stats = service.stats();
        assert_eq!(stats.update_batches, 2);
        assert_eq!(stats.epochs_published, 0, "no-op updates publish no epoch");
        assert_eq!(service.epoch_id(), 0);
        service.shutdown();
    }

    #[test]
    fn pending_updates_complete_at_shutdown() {
        let graph = complete(4);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_millis(500)))
            .start(graph)
            .unwrap();
        let query = service.submit(PathQuery::new(0u32, 3u32, 2));
        let update = service.update(vec![GraphUpdate::delete(0u32, 3u32)]);
        // Publication is synchronous: the handle is ready before shutdown.
        assert!(update.is_ready());
        let stats = service.shutdown();
        assert_eq!(stats.update_batches, 1);
        assert_eq!(update.wait().applied, 1);
        // The query pinned the pre-update epoch: old snapshot (direct edge intact).
        assert!(
            query.wait().paths.iter().any(|p| p.len() == 2),
            "direct 0 -> 3 path must exist pre-update"
        );
    }

    #[test]
    fn spec_submissions_serve_typed_responses() {
        use hcsp_core::ResultMode;
        let graph = grid(4, 4);
        let queries = grid_queries();
        let specs = vec![
            QuerySpec::exists(queries[0]),
            QuerySpec::count(queries[1]),
            QuerySpec::first_k(queries[2], 2),
            QuerySpec::collect(queries[3]),
            QuerySpec::count(queries[4]).with_path_budget(3),
        ];
        // One admission window for the whole set and one worker: the micro-batch is
        // exactly `specs`, so the typed responses must equal the offline spec run.
        let mut offline = Engine::new(graph.clone(), BatchEngine::default());
        let expected = offline.run_specs(&specs);

        let service = PathService::builder()
            .policy(BatchPolicy::by_size(
                specs.len(),
                Duration::from_millis(500),
            ))
            .start(graph)
            .unwrap();
        let handles = service.submit_specs(specs.clone());
        for ((handle, spec), expected) in handles.into_iter().zip(&specs).zip(&expected.responses) {
            let result = handle.wait();
            assert_eq!(&result.response, expected, "{spec}");
            match spec.mode {
                ResultMode::Exists => assert!(matches!(
                    result.response,
                    hcsp_core::QueryResponse::Exists(_)
                )),
                ResultMode::Count => {
                    assert!(matches!(
                        result.response,
                        hcsp_core::QueryResponse::Count(_)
                    ))
                }
                _ => assert!(result.response.paths().is_some()),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.num_queries, specs.len());
    }

    #[test]
    fn epoch_changes_split_admission_windows() {
        // Drive the batcher loop directly with a preloaded queue, so window splitting is
        // deterministic (no racing against live threads).
        let mut publisher = EpochPublisher::new(DiGraph::from_edge_list(4, &[(0, 1)]).unwrap());
        let e0 = publisher.tip();
        let (e1, _) = publisher.publish(&[GraphUpdate::insert(1u32, 2u32)]);
        assert_ne!(e0.id(), e1.id());

        let submission = |s: u32, epoch: &Arc<Epoch>| Submission {
            spec: QuerySpec::collect(PathQuery::new(s, 1u32, 2)),
            submitted_at: Instant::now(),
            epoch: Arc::clone(epoch),
            slot: Arc::new(ResultSlot::default()),
        };
        let (tx, rx) = mpsc::channel::<Submission>();
        let (batch_tx, batch_rx) = mpsc::channel::<MicroBatch>();
        tx.send(submission(0, &e0)).unwrap();
        tx.send(submission(1, &e0)).unwrap();
        tx.send(submission(2, &e1)).unwrap();
        tx.send(submission(3, &e1)).unwrap();
        drop(tx);
        batcher_loop(
            rx,
            batch_tx,
            BatchPolicy::by_size(64, Duration::from_secs(30)),
        );

        // Despite one window having room for all four, the epoch boundary splits them.
        let batches: Vec<MicroBatch> = batch_rx.try_iter().collect();
        assert_eq!(batches.len(), 2, "one window per epoch");
        assert_eq!(batches[0].epoch.id(), e0.id());
        assert_eq!(batches[0].submissions.len(), 2);
        assert_eq!(batches[1].epoch.id(), e1.id());
        assert_eq!(batches[1].submissions.len(), 2);
    }

    #[test]
    fn pinned_batches_complete_while_updates_publish() {
        // The MVCC headline: a query batching under a long window neither blocks an
        // update nor is flushed by it; it completes later against its pinned snapshot.
        let graph = grid(4, 4);
        let q = PathQuery::new(0u32, 15u32, 6);
        let expected_before = offline_counts(&graph, &[q])[0];
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_secs(30)))
            .start(graph.clone())
            .unwrap();

        let pinned = service.submit(q);
        let update = service.update(vec![GraphUpdate::delete(0u32, 1u32)]);
        // The update completed synchronously — it did not wait for the open window...
        let summary = update.wait();
        assert_eq!(summary.applied, 1);
        // ...and it did not close the window either: the pinned query is still batching.
        assert!(
            !pinned.is_ready(),
            "a (no-op for readers) publish must not flush the open admission window"
        );
        assert_eq!(service.stats().epochs_published, 1);

        // A post-update submission pins the new epoch and thereby splits the window,
        // releasing the pinned batch to execute against its old snapshot.
        let after = service.submit(q);
        let pinned = pinned.wait();
        assert_eq!(
            pinned.paths.len() as u64,
            expected_before,
            "pinned snapshot"
        );
        assert_eq!(pinned.batch_size, 1);

        let mut delta = hcsp_graph::DeltaGraph::new(graph);
        assert!(delta.delete_edge(VertexId(0), VertexId(1)));
        let expected_after = offline_counts(&delta.compact(), &[q])[0];
        assert_eq!(after.wait().paths.len() as u64, expected_after);

        let stats = service.shutdown();
        assert!(
            stats.batches_pinned_behind >= 1,
            "the pinned batch ran behind the tip"
        );
    }

    #[test]
    fn update_bursts_stay_correct_end_to_end() {
        // A diamond built up by a burst of updates submitted without intermediate waits:
        // every publish is its own epoch; admission order semantics must hold.
        let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
        let q = PathQuery::new(0u32, 3u32, 3);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(64, Duration::from_secs(30)))
            .start(graph)
            .unwrap();
        let before = service.submit(q);
        let u1 = service.update(vec![GraphUpdate::insert(0u32, 2u32)]);
        let u2 = service.update(vec![GraphUpdate::insert(2u32, 3u32)]);
        let u3 = service.update(vec![GraphUpdate::delete(0u32, 1u32)]);
        let after = service.submit(q);
        let stats = service.shutdown();

        assert_eq!(before.wait().paths.len(), 1, "pre-update snapshot");
        assert_eq!(
            after.wait().paths.len(),
            1,
            "post-update snapshot: 0->2->3 only"
        );
        assert_eq!(u1.wait().applied, 1);
        assert_eq!(u2.wait().applied, 1);
        assert_eq!(u3.wait().applied, 1);
        assert_eq!(stats.update_calls, 3);
        assert_eq!(stats.update_batches, 3, "synchronous publish: one per call");
        assert_eq!(stats.updates_applied, 3);
        assert_eq!(stats.epochs_published, 3);
    }

    #[test]
    fn abandoned_slots_surface_errors_instead_of_hanging() {
        let slot = Arc::new(ResultSlot::default());
        let handle = SpecHandle {
            slot: Arc::clone(&slot),
        };
        assert!(!handle.is_ready());
        slot.abandon();
        assert!(handle.is_ready());
        assert_eq!(handle.wait_result().unwrap_err(), Abandoned);

        let slot = Arc::new(ResultSlot::default());
        let handle = SpecHandle {
            slot: Arc::clone(&slot),
        };
        slot.abandon();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(outcome.is_err(), "wait() must surface the abandonment");

        let slot = Arc::new(UpdateSlot::default());
        let handle = UpdateHandle {
            slot: Arc::clone(&slot),
        };
        assert!(!handle.is_ready());
        slot.abandon();
        assert!(handle.is_ready());
        assert_eq!(handle.wait_result().unwrap_err(), Abandoned);
        assert!(!Abandoned.to_string().is_empty());
    }

    #[test]
    fn try_wait_returns_the_handle_back_while_pending() {
        let slot = Arc::new(ResultSlot::default());
        let handle = SpecHandle {
            slot: Arc::clone(&slot),
        };
        let handle = match handle.try_wait() {
            Err(handle) => handle,
            Ok(_) => panic!("slot is still pending"),
        };
        slot.fulfill(SpecResult {
            response: QueryResponse::Count(7),
            queue_wait: Duration::ZERO,
            batch_size: 1,
        });
        match handle.try_wait() {
            Ok(Ok(result)) => assert_eq!(result.response, QueryResponse::Count(7)),
            other => panic!("expected the fulfilled result, got {other:?}"),
        }

        let slot = Arc::new(UpdateSlot::default());
        let handle = UpdateHandle {
            slot: Arc::clone(&slot),
        };
        let handle = match handle.try_wait() {
            Err(handle) => handle,
            Ok(_) => panic!("slot is still pending"),
        };
        slot.fulfill(UpdateSummary::default());
        match handle.try_wait() {
            Ok(Ok(summary)) => assert_eq!(summary, UpdateSummary::default()),
            other => panic!("expected the fulfilled summary, got {other:?}"),
        }
    }

    #[test]
    fn wait_result_works_on_a_live_service() {
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .start(complete(4))
            .unwrap();
        let result = service
            .submit(PathQuery::new(0u32, 3u32, 2))
            .wait_result()
            .expect("service is healthy");
        assert!(!result.paths.is_empty());
        let summary = service
            .update(vec![GraphUpdate::delete(0u32, 3u32)])
            .wait_result()
            .expect("service is healthy");
        assert_eq!(summary.applied, 1);
        service.shutdown();
    }

    #[test]
    fn double_fulfill_is_an_invariant_violation_in_debug() {
        if !cfg!(debug_assertions) {
            return; // release builds log instead of panicking
        }
        let slot = ResultSlot::default();
        let result = || SpecResult {
            response: QueryResponse::Count(0),
            queue_wait: Duration::ZERO,
            batch_size: 1,
        };
        slot.fulfill(result());
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.fulfill(result())));
        assert!(outcome.is_err(), "double fulfill must debug-panic");

        let slot = UpdateSlot::default();
        slot.fulfill(UpdateSummary::default());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.fulfill(UpdateSummary::default())
        }));
        assert!(outcome.is_err(), "double fulfill must debug-panic");
    }

    #[test]
    #[should_panic(expected = "endpoints out of range")]
    fn out_of_range_query_panics_at_submit() {
        let service = PathService::start(complete(4));
        let _ = service.submit(PathQuery::new(99u32, 1u32, 3));
    }

    #[test]
    fn invalid_submission_no_longer_poisons_the_service() {
        let service = PathService::start(complete(4));
        // The panicking wrapper validates via the fallible path and panics only after
        // the admission lock is released, so one caller's bad query cannot take the
        // whole service down with a poisoned lock.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.submit(PathQuery::new(99u32, 1u32, 3))
        }));
        assert!(panicked.is_err());
        // Both updates and queries keep flowing afterwards.
        let summary = service.update(vec![GraphUpdate::insert(0u32, 1u32)]).wait();
        assert_eq!(summary.ignored, 1, "the edge already exists");
        let result = service.submit(PathQuery::new(0u32, 3u32, 2)).wait();
        assert!(!result.paths.is_empty());
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_invalid_endpoints_instead_of_panicking() {
        let service = PathService::start(complete(4));
        let err = service
            .try_submit(PathQuery::new(99u32, 1u32, 3))
            .unwrap_err();
        assert_eq!(
            err,
            AdmissionError::InvalidEndpoint {
                query: PathQuery::new(99u32, 1u32, 3),
                num_vertices: 4,
            }
        );
        assert!(err.to_string().contains("endpoints out of range"));
        // A valid query right after still serves.
        let handle = service.try_submit(PathQuery::new(0u32, 3u32, 2)).unwrap();
        assert!(!handle.wait().paths.is_empty());
        service.shutdown();
    }

    #[test]
    fn try_submit_spec_validates_against_the_grown_vertex_space() {
        let service = PathService::start(DiGraph::from_edge_list(2, &[(0, 1)]).unwrap());
        assert!(matches!(
            service.try_submit_spec(QuerySpec::exists(PathQuery::new(0u32, 4u32, 3))),
            Err(AdmissionError::InvalidEndpoint {
                num_vertices: 2,
                ..
            })
        ));
        // An insert growing the vertex space makes the same spec admissible.
        service
            .try_update(vec![GraphUpdate::insert(1u32, 4u32)])
            .unwrap()
            .wait();
        let handle = service
            .try_submit_spec(QuerySpec::exists(PathQuery::new(0u32, 4u32, 3)))
            .unwrap();
        assert_eq!(handle.wait().response, QueryResponse::Exists(true));
        service.shutdown();
    }

    #[test]
    fn try_update_succeeds_and_reports_the_summary() {
        let service = PathService::start(complete(4));
        let handle = service
            .try_update(vec![GraphUpdate::delete(0u32, 3u32)])
            .unwrap();
        assert_eq!(handle.wait().applied, 1);
        // An empty batch is trivially acknowledged without publishing anything.
        let handle = service.try_update(Vec::new()).unwrap();
        assert_eq!(handle.wait().applied, 0);
        assert_eq!(service.epoch_id(), 1);
        service.shutdown();
    }

    #[test]
    fn group_commit_counts_fsyncs_and_acknowledges_durably() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()))
            .start(complete(4))
            .unwrap();
        // Sequential updates cannot share a window: one group fsync each.
        service.update(vec![GraphUpdate::delete(0u32, 3u32)]).wait();
        service.update(vec![GraphUpdate::insert(0u32, 3u32)]).wait();
        let stats = service.stats();
        assert_eq!(stats.update_batches, 2);
        assert_eq!(stats.group_commit_batches, 2);
        service.shutdown();
    }

    #[test]
    fn concurrent_updates_share_group_fsyncs() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let service = Arc::new(
            PathService::builder()
                .policy(BatchPolicy::immediate())
                .durability(durable(fs.as_vfs()))
                .start(complete(4))
                .unwrap(),
        );
        let threads = 8;
        let per_thread = 16;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let (u, v) = ((t % 4) as u32, ((t + i + 1) % 4) as u32);
                        let update = if i % 2 == 0 {
                            GraphUpdate::delete(u, v)
                        } else {
                            GraphUpdate::insert(u, v)
                        };
                        service.try_update(vec![update]).unwrap().wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.update_batches, threads * per_thread);
        // Every acknowledged batch was covered by some group fsync, and sharing can
        // never *exceed* one fsync per batch.
        assert!(stats.group_commit_batches >= 1);
        assert!(stats.group_commit_batches <= (threads * per_thread) as u64);
    }

    #[test]
    fn non_always_policies_do_not_group_commit() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()).fsync(FsyncPolicy::EveryN(4)))
            .start(complete(4))
            .unwrap();
        service.update(vec![GraphUpdate::delete(0u32, 3u32)]).wait();
        assert_eq!(service.stats().group_commit_batches, 0);
        service.shutdown();
    }

    #[test]
    fn deprecated_start_entry_points_still_work() {
        #![allow(deprecated)]
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            // lint:allow(no-deprecated-internal) regression coverage for the shim itself
            .start_durable_vfs(complete(4), fs.as_vfs())
            .unwrap();
        assert!(service.is_durable());
        service.update(vec![GraphUpdate::delete(0u32, 3u32)]).wait();
        service.shutdown();
        let reopened = PathService::builder().open_vfs(fs.as_vfs()).unwrap();
        assert_eq!(reopened.recovery().unwrap().replayed_batches, 1);
        reopened.shutdown();
    }

    #[test]
    fn dropped_submission_abandons_its_handle_instead_of_hanging() {
        let slot = Arc::new(ResultSlot::default());
        let handle = QueryHandle {
            inner: SpecHandle {
                slot: Arc::clone(&slot),
            },
        };
        let submission = Submission {
            spec: QuerySpec::collect(PathQuery::new(0u32, 1u32, 2)),
            submitted_at: Instant::now(),
            epoch: EpochPublisher::new(DiGraph::from_edge_list(2, &[(0, 1)]).unwrap()).tip(),
            slot,
        };
        assert!(!handle.is_ready());
        // A worker panic unwinds the batch, dropping its submissions unfulfilled.
        drop(submission);
        assert!(handle.is_ready());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(outcome.is_err(), "wait() must surface the abandonment");
    }

    #[test]
    fn index_root_cap_is_passed_through_and_stays_correct() {
        let graph = grid(4, 4);
        let queries = grid_queries();
        let expected = offline_counts(&graph, &queries);
        let service = PathService::builder()
            .index_root_cap(2)
            .policy(BatchPolicy::immediate())
            .start(graph)
            .unwrap();
        let handles = service.submit_all(queries.clone());
        let counts: Vec<u64> = handles
            .into_iter()
            .map(|h| h.wait().paths.len() as u64)
            .collect();
        assert_eq!(counts, expected);
        service.shutdown();
    }

    fn durable(vfs: Arc<dyn hcsp_storage::Vfs>) -> DurabilityOptions {
        DurabilityOptions::vfs(vfs).compact_tail_bytes(u64::MAX)
    }

    fn reopen(vfs: Arc<dyn hcsp_storage::Vfs>) -> PathService {
        PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(DurabilityOptions::default().compact_tail_bytes(u64::MAX))
            .open_vfs(vfs)
            .unwrap()
    }

    #[test]
    fn durable_service_round_trips_through_reopen() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let graph = grid(4, 4);
        let q = PathQuery::new(0u32, 15u32, 6);

        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()))
            .start(graph)
            .unwrap();
        assert!(service.is_durable());
        assert!(
            service.recovery().is_none(),
            "a fresh store recovered nothing"
        );
        service.update(vec![GraphUpdate::delete(0u32, 1u32)]).wait();
        service.update(vec![GraphUpdate::insert(0u32, 5u32)]).wait();
        let expected = service.submit(q).wait().paths;
        service.shutdown();

        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .open_vfs(fs.as_vfs())
            .unwrap();
        let report = service.recovery().expect("opened from an existing store");
        assert_eq!(report.replayed_batches, 2);
        assert_eq!(report.replayed_updates, 2);
        assert!(report.torn_tail.is_none());
        assert_eq!(service.submit(q).wait().paths, expected);
        service.shutdown();

        // A second durable start on the same directory must refuse, not wipe it.
        assert!(matches!(
            PathService::builder()
                .durability(DurabilityOptions::vfs(fs.as_vfs()))
                .start(grid(4, 4)),
            Err(StorageError::AlreadyExists)
        ));
    }

    #[test]
    fn explicit_checkpoint_truncates_the_replay_tail() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let q = PathQuery::new(0u32, 3u32, 3);
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()))
            .start(DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap())
            .unwrap();
        service.update(vec![GraphUpdate::insert(0u32, 2u32)]).wait();
        service.update(vec![GraphUpdate::insert(2u32, 3u32)]).wait();
        assert!(service.checkpoint().unwrap());
        assert_eq!(service.checkpoints(), 1);
        assert!(!service.checkpoint().unwrap(), "nothing new to checkpoint");
        service.update(vec![GraphUpdate::delete(0u32, 1u32)]).wait();
        let expected = service.submit(q).wait().paths;
        service.shutdown();

        let service = reopen(fs.as_vfs());
        let report = service.recovery().unwrap();
        assert_eq!(
            report.snapshot_batches, 2,
            "the checkpoint absorbed two batches"
        );
        assert_eq!(
            report.replayed_batches, 1,
            "only the post-checkpoint tail replays"
        );
        assert_eq!(service.submit(q).wait().paths, expected);
        service.shutdown();
    }

    #[test]
    fn background_compactor_checkpoints_once_the_tail_grows() {
        use hcsp_storage::FailpointFs;
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(
                DurabilityOptions::vfs(fs.as_vfs())
                    .compact_tail_bytes(1)
                    .compact_check_interval(Duration::from_millis(2)),
            )
            .start(complete(4))
            .unwrap();
        service.update(vec![GraphUpdate::delete(0u32, 3u32)]).wait();
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.checkpoints() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(service.checkpoints() >= 1, "the compactor never woke up");
        // Queries and further updates keep working around the background checkpoints.
        service.update(vec![GraphUpdate::insert(0u32, 3u32)]).wait();
        let expected = service.submit(PathQuery::new(0u32, 3u32, 2)).wait().paths;
        service.shutdown();

        let service = reopen(fs.as_vfs());
        assert_eq!(
            service.submit(PathQuery::new(0u32, 3u32, 2)).wait().paths,
            expected
        );
        service.shutdown();
    }

    #[test]
    fn update_logged_but_unacked_recovers_as_applied() {
        use hcsp_storage::{CrashModel, FailpointFs, KillPoint};
        // Regression: an update whose WAL frame landed but whose in-process handle was
        // abandoned (the process died between the log write and the ack) must resolve
        // as *applied* after restart — the log, not the slot, is the source of truth.
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()))
            .start(DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap())
            .unwrap();
        service.update(vec![GraphUpdate::insert(0u32, 2u32)]).wait();

        // Kill the *fsync* of the next append: the frame write (ops + 1) lands, the
        // sync (ops + 2) dies, so the publish fails after the bytes reached the file.
        fs.set_kill(KillPoint::Op(fs.ops() + 2));
        let handle = service.update(vec![GraphUpdate::insert(2u32, 3u32)]);
        assert_eq!(
            handle.wait_result(),
            Err(Abandoned),
            "the caller was never acked"
        );
        drop(service); // the final sync of shutdown fails on the dead fs; ignored

        // The crash happens to preserve the page cache: the logged frame survives.
        let image = fs.crash(CrashModel::KeepAll);
        let service = reopen(image.as_vfs());
        assert_eq!(
            service.recovery().unwrap().replayed_batches,
            2,
            "the logged-but-unacked batch replays"
        );
        let result = service.submit(PathQuery::new(0u32, 3u32, 3)).wait();
        assert_eq!(result.paths.len(), 2, "0→1→3 and the recovered 0→2→3");
        service.shutdown();
    }

    #[test]
    fn a_sink_write_failure_latches_updates_until_restart() {
        use hcsp_storage::{FailpointFs, KillPoint};
        // Regression: a transient short write tears the active WAL but the process
        // lives on. The store must poison itself so no later update is acknowledged
        // after the garbage (recovery would silently drop it as torn tail); the
        // service keeps serving reads and refuses writes until reopened.
        let fs = FailpointFs::new();
        let service = PathService::builder()
            .policy(BatchPolicy::immediate())
            .durability(durable(fs.as_vfs()))
            .start(DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap())
            .unwrap();
        service.update(vec![GraphUpdate::insert(0u32, 2u32)]).wait();

        fs.set_kill(KillPoint::TransientWriteByte(fs.bytes_written() + 5));
        let torn = service.update(vec![GraphUpdate::insert(2u32, 3u32)]);
        assert_eq!(
            torn.wait_result(),
            Err(Abandoned),
            "the torn write is unacked"
        );
        // The filesystem recovered, but the store is latched: no further update may
        // be acknowledged on top of the torn tail.
        let refused = service.update(vec![GraphUpdate::delete(0u32, 1u32)]);
        assert_eq!(refused.wait_result(), Err(Abandoned));
        // Reads keep serving the last acknowledged state.
        let result = service.submit(PathQuery::new(0u32, 3u32, 3)).wait();
        assert_eq!(
            result.paths.len(),
            1,
            "only 0→1→3; neither failed update landed"
        );
        service.shutdown();

        // A restart truncates the torn tail and the service accepts updates again.
        let service = reopen(fs.as_vfs());
        let report = service.recovery().unwrap();
        assert_eq!(report.replayed_batches, 1, "the acked update survives");
        assert!(report.torn_tail.is_some());
        service.update(vec![GraphUpdate::insert(2u32, 3u32)]).wait();
        let result = service.submit(PathQuery::new(0u32, 3u32, 3)).wait();
        assert_eq!(result.paths.len(), 2, "0→1→3 and the new 0→2→3");
        service.shutdown();
    }

    #[test]
    fn queue_wait_is_reported() {
        let graph = complete(4);
        let service = PathService::builder()
            .policy(BatchPolicy::by_size(2, Duration::from_millis(40)))
            .start(graph)
            .unwrap();
        let a = service.submit(PathQuery::new(0u32, 3u32, 2));
        let ra = a.wait();
        // The lone query waited out (most of) the 40 ms window.
        assert!(ra.queue_wait >= Duration::from_millis(20));
        let stats = service.shutdown();
        assert!(stats.max_queue_wait >= Duration::from_millis(20));
        assert!(stats.total_exec_time > Duration::ZERO);
    }
}
