//! The admission policy: when does a micro-batch close?
//!
//! The paper's premise is that queries arriving *together* share work (§IV-B/C); a serving
//! layer maximises that sharing by holding each arriving query briefly so similar queries
//! can join the same batch. The policy bounds both dimensions of that trade-off: how many
//! queries a window may accumulate ([`BatchPolicy::max_batch_size`]) and how long the
//! *first* query of a window may wait ([`BatchPolicy::max_delay`]). A zero delay removes
//! the wait entirely and degenerates to per-query execution — the PathEnum-style real-time
//! regime, with no added latency but no cross-query sharing either.

use std::time::Duration;

/// Micro-batch admission policy: a batch closes when it reaches `max_batch_size` queries
/// or when `max_delay` has elapsed since its first query arrived, whichever comes first.
///
/// The policy also carries the *execution* knob of a micro-batch:
/// [`BatchPolicy::exec_threads`] selects how many worker threads the engine uses per
/// micro-batch (the cluster-sharded parallel executor of `hcsp_core::parallel`). The
/// admission knobs shape batches; the execution knob turns cores into throughput once a
/// batch is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum number of queries per micro-batch (at least 1).
    pub max_batch_size: usize,
    /// Maximum time the first query of a window waits before the batch is dispatched.
    /// `Duration::ZERO` dispatches every query on its own (per-query execution).
    pub max_delay: Duration,
    /// Worker threads used to *execute* one micro-batch (at least 1). `1` runs the
    /// sequential engine; `n > 1` runs the cluster-sharded parallel engine with `n`
    /// workers. Parallel execution is lossless: per-query results are identical to the
    /// sequential engine's.
    pub exec_threads: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        // A small window: enough to catch co-arriving queries under load, small enough
        // that an idle service stays responsive. Sequential execution by default.
        BatchPolicy {
            max_batch_size: 64,
            max_delay: Duration::from_millis(10),
            exec_threads: 1,
        }
    }
}

impl BatchPolicy {
    /// A policy with an explicit size cap and deadline window (sequential execution).
    pub fn new(max_batch_size: usize, max_delay: Duration) -> Self {
        BatchPolicy {
            max_batch_size: max_batch_size.max(1),
            max_delay,
            exec_threads: 1,
        }
    }

    /// Per-query execution: every query is dispatched immediately as its own batch.
    pub fn immediate() -> Self {
        BatchPolicy {
            max_batch_size: 1,
            max_delay: Duration::ZERO,
            exec_threads: 1,
        }
    }

    /// Size-triggered batching with a latency bound: dispatch at `n` queries or after
    /// `max_delay`, whichever happens first.
    pub fn by_size(n: usize, max_delay: Duration) -> Self {
        BatchPolicy::new(n, max_delay)
    }

    /// Returns the policy with micro-batches executed on `threads` worker threads
    /// (values of 0 are treated as 1; 1 keeps the sequential engine).
    pub fn with_exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// Whether the policy degenerates to per-query execution (no admission wait at all).
    pub fn is_per_query(&self) -> bool {
        self.max_batch_size <= 1 || self.max_delay.is_zero()
    }

    /// Whether micro-batches execute on the parallel engine.
    pub fn is_parallel(&self) -> bool {
        self.exec_threads > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalise_degenerate_sizes() {
        let p = BatchPolicy::new(0, Duration::from_millis(5));
        assert_eq!(p.max_batch_size, 1);
        assert!(p.is_per_query());
        let p = BatchPolicy::by_size(16, Duration::from_millis(2));
        assert_eq!(p.max_batch_size, 16);
        assert!(!p.is_per_query());
    }

    #[test]
    fn zero_delay_is_per_query() {
        assert!(BatchPolicy::immediate().is_per_query());
        assert!(BatchPolicy::new(100, Duration::ZERO).is_per_query());
        assert!(!BatchPolicy::default().is_per_query());
    }

    #[test]
    fn exec_threads_normalise_and_toggle_parallel_mode() {
        assert_eq!(BatchPolicy::default().exec_threads, 1);
        assert!(!BatchPolicy::default().is_parallel());
        let p = BatchPolicy::default().with_exec_threads(4);
        assert_eq!(p.exec_threads, 4);
        assert!(p.is_parallel());
        let p = BatchPolicy::immediate().with_exec_threads(0);
        assert_eq!(p.exec_threads, 1);
        assert!(!p.is_parallel());
    }
}
