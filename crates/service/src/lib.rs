//! # hcsp-service
//!
//! The micro-batching service layer of the reproduction: a long-lived [`PathService`]
//! that *forms* batches from an incoming query stream instead of requiring pre-assembled
//! ones.
//!
//! The paper's batch algorithms (`BatchEnum`, `BatchEnum+`) exploit the computation that
//! queries arriving together have in common — but they take the batch as given. A serving
//! system has to create those batches itself: each arriving query is held for at most a
//! small admission window ([`BatchPolicy::max_delay`]) so that similar queries arriving
//! close together execute as one shared micro-batch. The two extremes of the policy
//! recover the two regimes compared throughout the paper:
//!
//! * `max_delay = 0` (or `max_batch_size = 1`) — per-query execution, the PathEnum-style
//!   real-time regime: minimal latency, no cross-query sharing.
//! * large window / size cap — offline batching: maximal sharing, batch-formation latency.
//!
//! Execution reuses one [`hcsp_core::Engine`] per worker, so the batch index persists
//! across micro-batches (extended incrementally for new endpoints, rebuilt only when the
//! hop bound grows), and per-micro-batch counters (queue wait, batch size, sharing ratio;
//! [`hcsp_core::MicroBatchStats`]) aggregate into the [`hcsp_core::ServiceStats`] the
//! throughput experiments report.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the dataflow diagram, and the
//! `service_demo` example for a runnable tour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod policy;
pub mod service;

pub use policy::BatchPolicy;
pub use service::{
    Abandoned, AdmissionError, DurabilityBackend, DurabilityOptions, PathService,
    PathServiceBuilder, QueryHandle, QueryResult, SpecHandle, SpecResult, UpdateHandle,
};

// Re-exported so service users can build typed requests, read the aggregate counters,
// pin epochs and submit graph updates without naming hcsp-core / hcsp-graph.
pub use hcsp_core::{
    Epoch, EpochPublisher, MicroBatchStats, QueryResponse, QuerySpec, ResultMode, ServiceStats,
    UpdateSummary,
};
pub use hcsp_graph::GraphUpdate;
// Re-exported so durable-service users can pick fsync policies, read recovery reports
// and handle storage errors without naming hcsp-storage.
pub use hcsp_storage::{FsyncPolicy, RecoveryReport, StorageError};
