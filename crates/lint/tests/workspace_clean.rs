//! The meta-test: the live workspace must lint clean. This is the same check
//! CI runs via `cargo run -p hcsp-lint -- --deny`, wired into `cargo test` so
//! a violation fails the ordinary test suite too, with the diagnostics in the
//! assertion message.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (nfiles, diags) = hcsp_lint::lint_workspace(&root).expect("workspace sources readable");
    assert!(
        nfiles > 50,
        "only {nfiles} files found — workspace root misdetected?"
    );
    assert!(
        diags.is_empty(),
        "the workspace has {} lint finding(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
