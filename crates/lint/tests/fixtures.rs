//! Fixture-driven rule tests: every `fail_*` fixture must trip exactly the
//! rule its directory names, every `pass_*` fixture must not. The fixtures are
//! plain `.rs` files lexed under a *virtual* workspace path, because the rules
//! scope themselves by path (`crates/service/`, the hot-path file list, ...).

use std::fs;
use std::path::{Path, PathBuf};

use hcsp_lint::{lint_sources, rules, SourceFile};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// `(rule directory == rule id, virtual path the fixture pretends to live at)`.
const SINGLE_FILE_RULES: &[(&str, &str)] = &[
    (rules::BLOCKING_UNDER_GUARD, "crates/service/src/fixture.rs"),
    (rules::UNSAFE_WINDOW, "crates/core/src/engine_fixture.rs"),
    (rules::ACK_AFTER_DURABILITY, "crates/storage/src/fixture.rs"),
    (rules::PANIC_FREE_HOT_PATH, "crates/core/src/search.rs"),
    (
        rules::NO_DEPRECATED_INTERNAL,
        "crates/service/src/fixture.rs",
    ),
    (rules::ALLOW_SYNTAX, "crates/core/src/search.rs"),
];

fn fixture_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("missing fixture dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_rule_has_fail_and_pass_fixtures() {
    for (rule, vpath) in SINGLE_FILE_RULES {
        let dir = fixtures_root().join(rule);
        let files = fixture_files(&dir);
        let mut fails = 0usize;
        let mut passes = 0usize;
        for path in files {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = fs::read_to_string(&path).unwrap();
            let lexed = vec![SourceFile::new(*vpath, &src)];
            let hits = lint_sources(&lexed)
                .into_iter()
                .filter(|d| d.rule == *rule)
                .count();
            if name.starts_with("fail_") {
                fails += 1;
                assert!(
                    hits >= 1,
                    "{rule}/{name}: expected a `{rule}` finding, got none"
                );
            } else if name.starts_with("pass_") {
                passes += 1;
                assert_eq!(hits, 0, "{rule}/{name}: expected no `{rule}` findings");
            } else {
                panic!("{rule}/{name}: fixture names must start with fail_ or pass_");
            }
        }
        assert!(
            fails >= 1,
            "{rule}: no failing fixture — the rule is unproven"
        );
        assert!(
            passes >= 1,
            "{rule}: no passing fixture — the rule is untested for FPs"
        );
    }
}

/// `dead-counter` needs a definition file, a producer, and a consumer in one
/// view, so its fixtures are directories of files mapped by name.
#[test]
fn dead_counter_fixture_sets() {
    let base = fixtures_root().join(rules::DEAD_COUNTER);
    let mut sets: Vec<PathBuf> = fs::read_dir(&base)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    sets.sort();
    assert!(!sets.is_empty());
    let mut fails = 0usize;
    let mut passes = 0usize;
    for set in sets {
        let name = set.file_name().unwrap().to_string_lossy().into_owned();
        let files: Vec<SourceFile> = fixture_files(&set)
            .into_iter()
            .map(|p| {
                let vpath = match p.file_name().unwrap().to_string_lossy().as_ref() {
                    "def.rs" => "crates/core/src/stats.rs",
                    "core.rs" => "crates/core/src/engine.rs",
                    "bench.rs" => "crates/bench/src/report.rs",
                    other => panic!("{name}: unmapped fixture file {other}"),
                };
                SourceFile::new(vpath, &fs::read_to_string(&p).unwrap())
            })
            .collect();
        let hits = lint_sources(&files)
            .into_iter()
            .filter(|d| d.rule == rules::DEAD_COUNTER)
            .count();
        if name.starts_with("fail_") {
            fails += 1;
            assert!(hits >= 1, "dead-counter/{name}: expected a finding");
        } else {
            passes += 1;
            assert_eq!(hits, 0, "dead-counter/{name}: expected no findings");
        }
    }
    assert!(fails >= 1 && passes >= 1);
}

/// The catalogue, the fixture directories, and `is_known` must stay in sync.
#[test]
fn catalogue_covers_all_fixture_directories() {
    for (code, id, _) in rules::CATALOGUE {
        assert!(rules::is_known(id));
        assert_eq!(rules::code_of(id), code);
        assert!(
            fixtures_root().join(id).is_dir(),
            "rule {id} has no fixture directory"
        );
    }
}
