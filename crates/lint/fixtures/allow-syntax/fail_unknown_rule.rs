fn f(x: Option<u32>) -> u32 {
    // lint:allow(no-such-rule) the rule id is misspelled, so this suppresses nothing
    x.unwrap_or(0)
}
