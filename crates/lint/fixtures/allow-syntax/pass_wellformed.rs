fn f(v: &[u32]) -> u32 {
    // lint:allow(panic-free-hot-path) v is never empty: the dispatcher rejects empty arenas
    v[0]
}
