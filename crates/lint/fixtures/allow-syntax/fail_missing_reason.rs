fn f(v: &[u32]) -> u32 {
    // lint:allow(panic-free-hot-path)
    v[0]
}
