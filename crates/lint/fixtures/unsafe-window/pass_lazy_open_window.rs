// Leaving the window open at function end is the documented lazy-repair
// pattern: `ensure_index` flushes before the next batch runs.
fn apply(index: &mut Index, deleted: &[u32]) {
    index.note_deletions(deleted);
    index.mark_epoch_dirty();
}
