// The window closes before the query entry: legal.
fn apply(index: &mut Index, engine: &mut Engine, deleted: &[u32]) {
    index.note_deletions(deleted);
    index.flush_dirty();
    engine.ensure_index(0);
}
