// `ensure_index` runs while the deletion window is still open: the distance
// index under-estimates and the hop bound silently admits dead paths.
fn apply(index: &mut Index, engine: &mut Engine, deleted: &[u32]) {
    index.note_deletions(deleted);
    engine.ensure_index(0);
}
