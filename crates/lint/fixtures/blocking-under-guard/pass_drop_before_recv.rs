// The guard is explicitly dropped before the blocking call: legal.
fn worker(cell: &EpochCell, rx: &Receiver<Job>) {
    let publisher = cell.publisher.lock().unwrap();
    let tip = publisher.tip();
    drop(publisher);
    let job = rx.recv().unwrap();
    consume(tip, job);
}
