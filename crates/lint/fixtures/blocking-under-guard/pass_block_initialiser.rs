// Regression: a guard taken inside a block initialiser dies with the inner
// block, not with the outer binding — the fsync below runs lock-free. This is
// exactly the shape of `PathService::try_update`.
fn update(cell: &EpochCell, group: &Group, store: &Store) -> Summary {
    let summary = {
        let publisher = cell.publisher.lock().unwrap();
        publisher.publish()
    };
    group.sync_through(summary.id(), store);
    summary
}
