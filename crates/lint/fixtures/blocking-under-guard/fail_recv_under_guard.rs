// Lexed as-if at crates/service/src/fixture.rs: the admission guard is still
// live when the thread parks on the channel.
fn worker(cell: &EpochCell, rx: &Receiver<Job>) {
    let publisher = cell.publisher.lock().unwrap();
    let job = rx.recv().unwrap();
    publisher.apply(job);
}
