// A tracked guard chained into a temporary is live to the end of the
// statement — long enough to cover the fsync.
fn checkpoint(cell: &EpochCell) {
    cell.publisher.lock().unwrap().store().sync_all().unwrap();
}
