// The caller is acknowledged before the WAL append/fsync: a crash between the
// two loses an acked batch.
fn commit(slot: &Slot, wal: &mut Wal, batch: &[u8]) {
    slot.fulfill(0);
    wal.append(batch);
    wal.sync();
}
