// Query-result delivery never touches the WAL; fulfilment alone is fine.
fn deliver(slot: &Slot, paths: Vec<PathBuffer>) {
    slot.fulfill(paths);
}
