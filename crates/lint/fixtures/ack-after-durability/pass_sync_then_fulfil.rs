// Durability first, acknowledgement second: legal.
fn commit(slot: &Slot, wal: &mut Wal, batch: &[u8]) {
    wal.append(batch);
    wal.sync();
    slot.fulfill(0);
}
