fn advance(depth: u32, budget: u32) -> u32 {
    if depth > budget {
        unreachable!("hop bound is checked at admission");
    }
    depth + 1
}
