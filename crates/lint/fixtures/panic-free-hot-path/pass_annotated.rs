// Every exception carries its proof obligation in the annotation.
fn step(arena: &[u32], cursor: Option<usize>) -> u32 {
    // lint:allow(panic-free-hot-path) cursor is Some: the caller seeds it before the loop
    let i = cursor.unwrap();
    // lint:allow(panic-free-hot-path) i < arena.len(): cursor indexes the same arena
    arena[i]
}

fn step_checked(arena: &[u32], cursor: Option<usize>) -> u32 {
    match cursor.and_then(|i| arena.get(i)) {
        Some(v) => *v,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        v.first().unwrap();
    }
}
