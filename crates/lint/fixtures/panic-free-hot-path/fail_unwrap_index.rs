// Lexed as-if at crates/core/src/search.rs: both the unwrap and the direct
// index are denied in the enumeration kernel.
fn step(arena: &[u32], cursor: Option<usize>) -> u32 {
    let i = cursor.unwrap();
    arena[i]
}
