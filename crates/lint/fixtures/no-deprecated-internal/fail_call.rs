// An internal caller still on the deprecated shim.
fn boot(builder: PathServiceBuilder, store: UpdateLogStore) -> PathService {
    builder.start_durable(complete(2), store)
}
