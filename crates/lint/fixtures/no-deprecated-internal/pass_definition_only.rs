// The shim's own definition is allowed to exist (external callers may still
// be mid-migration); only internal *uses* are denied.
impl PathServiceBuilder {
    pub fn start_durable(self, workers: WorkerConfig, store: UpdateLogStore) -> PathService {
        self.durability(DurabilityOptions::store(store)).start(workers)
    }
}
