fn report(c: &SearchCounters) -> u64 {
    c.expanded_vertices
}
