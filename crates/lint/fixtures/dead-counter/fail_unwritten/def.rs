#[derive(Default)]
pub struct SearchCounters {
    /// Reported by bench, but nothing in core/service ever maintains it:
    /// every report will show zero.
    pub expanded_vertices: u64,
}
