// Mapped to crates/core/src/stats.rs by the fixture harness.
#[derive(Default)]
pub struct SearchCounters {
    /// Vertices popped from the frontier.
    pub expanded_vertices: u64,
}
