// The counter is maintained — but nothing in bench ever reports it.
fn tally(c: &mut SearchCounters) {
    c.expanded_vertices += 1;
}
