#[derive(Default)]
pub struct SearchCounters {
    pub expanded_vertices: u64,
    pub produced_paths: u64,
}
