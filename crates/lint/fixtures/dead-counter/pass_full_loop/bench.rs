fn rows(c: &SearchCounters) -> Vec<String> {
    vec![c.expanded_vertices.to_string(), c.produced_paths.to_string()]
}
