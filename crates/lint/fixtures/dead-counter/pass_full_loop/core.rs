fn tally(c: &mut SearchCounters, emitted: u64) {
    c.expanded_vertices += 1;
    c.produced_paths = emitted;
}
