//! L1 `blocking-under-guard`: in `crates/service`, no blocking call may run
//! while a `MutexGuard` of the admission/epoch lock is live.
//!
//! The admission lock (`EpochCell::publisher`) serialises query admission and
//! epoch publication. PR 4 shipped — and fixed — a deadlock where a worker
//! blocked at a rendezvous while still holding a queue mutex; this rule pins
//! the generalised discipline: acquire the admission/epoch lock, do the
//! O(small) critical-section work, release *before* anything that can park the
//! thread (`recv`, condvar `wait`, `join`, file `sync`).
//!
//! Guard liveness is tracked lexically: a `let` binding whose initialiser
//! locks a tracked lock makes the binding a live guard until `drop(guard)`,
//! the end of its block, or the end of the function. A tracked lock chained
//! into a temporary (`cell.publisher.lock().unwrap().method()`) is live to the
//! end of its statement.

use crate::lexer::Tok;
use crate::scan::{functions, is_call};
use crate::{Diagnostic, SourceFile};

/// Field/binding names whose `.lock()` produces a tracked guard. `publisher`
/// is the `EpochCell` admission/epoch mutex.
const TRACKED_LOCKS: [&str; 1] = ["publisher"];

/// Calls that can park the thread for an unbounded time.
const BLOCKING: [&str; 12] = [
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "join",
    "sync",
    "sync_all",
    "sync_data",
    "sync_dir",
    "sync_through",
    "sleep",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.path.contains("crates/service/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let lexed = &file.lexed;
    for f in functions(lexed) {
        if file.mask[f.body_start] {
            continue; // test code
        }
        // (guard name, scope depth it was declared at)
        let mut live: Vec<(String, i32)> = Vec::new();
        let mut depth = 0i32;
        let mut stmt_temp: Option<u32> = None; // line of a tracked temp guard
        let mut i = f.body_start;
        while i <= f.body_end {
            match &lexed.tokens[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    live.retain(|(_, d)| *d < depth);
                    depth -= 1;
                    stmt_temp = None;
                }
                Tok::Punct(';') => stmt_temp = None,
                Tok::Ident(word) => {
                    if word == "let" {
                        if let Some((names, after)) = let_binding(file, i, f.body_end) {
                            // Does the initialiser lock a tracked lock?
                            if stmt_locks_tracked(file, after, f.body_end) {
                                for name in names {
                                    live.push((name, depth));
                                }
                            }
                            i = after;
                            continue;
                        }
                    } else if word == "drop" && lexed.is_punct(i + 1, '(') {
                        if let Some(Tok::Ident(arg)) = lexed.tokens.get(i + 2).map(|t| &t.tok) {
                            if lexed.is_punct(i + 3, ')') {
                                live.retain(|(n, _)| n != arg);
                            }
                        }
                    } else if TRACKED_LOCKS.contains(&word.as_str())
                        && lexed.is_punct(i + 1, '.')
                        && lexed.ident(i + 2) == Some("lock")
                    {
                        // A tracked lock chained into a temporary guard: live
                        // until the end of this statement (unless a `let`
                        // already claimed it above).
                        stmt_temp = Some(lexed.tokens[i].line);
                    } else if BLOCKING.contains(&word.as_str())
                        && lexed.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok)
                            == Some(&Tok::Punct('.'))
                        && is_call(lexed, i)
                    {
                        if let Some((guard, _)) = live.first() {
                            out.push(file.diag(
                                super::BLOCKING_UNDER_GUARD,
                                lexed.tokens[i].line,
                                format!(
                                    "blocking call `.{word}()` while admission/epoch guard \
                                     `{guard}` is live in `{}`; release the guard (drop or end \
                                     of block) before parking the thread",
                                    f.name
                                ),
                            ));
                        } else if stmt_temp.is_some() {
                            out.push(file.diag(
                                super::BLOCKING_UNDER_GUARD,
                                lexed.tokens[i].line,
                                format!(
                                    "blocking call `.{word}()` chained on a temporary \
                                     admission/epoch guard in `{}`; bind and drop the guard \
                                     before blocking",
                                    f.name
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Parses the pattern of a `let` statement starting at the `let` token; returns
/// the candidate binding names and the index of the `=` (where the initialiser
/// begins). `None` for `let` without `=` (e.g. `let x;`).
fn let_binding(file: &SourceFile, let_idx: usize, end: usize) -> Option<(Vec<String>, usize)> {
    let lexed = &file.lexed;
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut i = let_idx + 1;
    while i <= end {
        match &lexed.tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
            Tok::Punct('=') => {
                // `==` never appears in a pattern position; a lone `=` ends it.
                return if names.is_empty() {
                    None
                } else {
                    Some((names, i + 1))
                };
            }
            Tok::Punct(';') | Tok::Punct('{') if depth <= 0 => return None,
            Tok::Ident(word)
                if !matches!(
                    word.as_str(),
                    "mut" | "ref" | "Ok" | "Err" | "Some" | "None" | "box"
                ) =>
            {
                names.push(word.clone());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether the statement starting at `start` (just after a `let ... =`) locks a
/// tracked lock before its terminating `;`. A lock taken inside a nested block
/// (`let x = { ..lock().. };`) does not count — that guard dies with the inner
/// block, not with the binding.
fn stmt_locks_tracked(file: &SourceFile, start: usize, end: usize) -> bool {
    let lexed = &file.lexed;
    let mut depth = 0i32;
    let mut braces = 0i32;
    let mut i = start;
    while i <= end {
        match &lexed.tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') => {
                depth += 1;
                braces += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                braces -= 1;
            }
            Tok::Punct(';') if depth <= 0 => return false,
            Tok::Ident(word)
                if braces == 0
                    && TRACKED_LOCKS.contains(&word.as_str())
                    && lexed.is_punct(i + 1, '.')
                    && lexed.ident(i + 2) == Some("lock") =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}
