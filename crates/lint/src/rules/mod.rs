//! The rule catalogue.
//!
//! Every rule is a pure function from lexed sources to diagnostics; the
//! driver in `lib.rs` applies `// lint:allow` suppression afterwards, so the
//! rules themselves stay oblivious to annotations. Single-file rules decide
//! their own applicability from the (workspace-relative, `/`-separated) path;
//! [`dead_counter`] is the one whole-workspace rule.

pub mod deprecated;
pub mod durability;
pub mod guard;
pub mod panic_free;
pub mod window;

pub mod counters;

use crate::{Diagnostic, SourceFile};

/// Stable rule identifiers, as used in diagnostics and `lint:allow(...)`.
pub const BLOCKING_UNDER_GUARD: &str = "blocking-under-guard";
pub const UNSAFE_WINDOW: &str = "unsafe-window";
pub const ACK_AFTER_DURABILITY: &str = "ack-after-durability";
pub const PANIC_FREE_HOT_PATH: &str = "panic-free-hot-path";
pub const DEAD_COUNTER: &str = "dead-counter";
pub const NO_DEPRECATED_INTERNAL: &str = "no-deprecated-internal";
/// Pseudo-rule for malformed `lint:allow` comments (never suppressible).
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// Every real rule id, short code first: `(code, id, summary)`.
pub const CATALOGUE: [(&str, &str, &str); 6] = [
    (
        "L1",
        BLOCKING_UNDER_GUARD,
        "no blocking call while an admission/epoch lock guard is live (crates/service)",
    ),
    (
        "L2",
        UNSAFE_WINDOW,
        "note_deletions must reach flush_dirty before any query entry in the same function",
    ),
    (
        "L3",
        ACK_AFTER_DURABILITY,
        "handle fulfilment must follow the WAL append/sync in source order (service + storage)",
    ),
    (
        "L4",
        PANIC_FREE_HOT_PATH,
        "no unwrap/expect/panic!/direct indexing in the enumeration hot path",
    ),
    (
        "L5",
        DEAD_COUNTER,
        "every stats counter is written in core/service and read by bench/report",
    ),
    (
        "L6",
        NO_DEPRECATED_INTERNAL,
        "no internal callers of the deprecated start_durable/start_durable_vfs shims",
    ),
];

/// The short code (`L1`..`L6`) for a rule id, for diagnostic rendering.
pub fn code_of(rule: &str) -> &'static str {
    for (code, id, _) in CATALOGUE {
        if id == rule {
            return code;
        }
    }
    "L0"
}

/// Whether `rule` is a known, allowable rule id.
pub fn is_known(rule: &str) -> bool {
    CATALOGUE.iter().any(|(_, id, _)| *id == rule)
}

/// Runs every rule over `files` and returns the raw (pre-suppression)
/// diagnostics.
pub fn run_all(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        out.extend(guard::check(file));
        out.extend(window::check(file));
        out.extend(durability::check(file));
        out.extend(panic_free::check(file));
        out.extend(deprecated::check(file));
    }
    out.extend(counters::check(files));
    out
}
