//! L4 `panic-free-hot-path`: the per-edge enumeration kernel must not panic.
//!
//! A panic in the hot path poisons the admission lock, kills the worker, and
//! wedges every queued batch behind it — far worse than a wrong answer, which
//! the property tests would at least catch. The enumeration files therefore
//! may not `unwrap`/`expect`, invoke the panic macro family, or index slices
//! directly. Every deliberate exception must carry a
//! `// lint:allow(panic-free-hot-path) <why this cannot fail>` annotation, so
//! the proof obligation is written next to the code it covers.

use crate::lexer::Tok;
use crate::scan::is_call;
use crate::{Diagnostic, SourceFile};

/// The enumeration hot path: frontier search, prefix concatenation, the arena
/// buffers they allocate from, and the parallel work-splitting driver.
const HOT_FILES: [&str; 4] = [
    "crates/core/src/search.rs",
    "crates/core/src/concat.rs",
    "crates/core/src/buffers.rs",
    "crates/core/src/parallel.rs",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legitimately precede a `[` without it being an index
/// expression (`in [a, b]`, `return [x]`, slice types after `mut`/`dyn`, ...).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "while",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !HOT_FILES.iter().any(|f| file.path.ends_with(f)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        if file.mask[i] {
            continue; // tests may panic freely
        }
        match &lexed.tokens[i].tok {
            Tok::Ident(word) => {
                let line = lexed.tokens[i].line;
                if matches!(word.as_str(), "unwrap" | "expect")
                    && lexed.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok) == Some(&Tok::Punct('.'))
                    && is_call(lexed, i)
                {
                    out.push(file.diag(
                        super::PANIC_FREE_HOT_PATH,
                        line,
                        format!(
                            "`.{word}()` in the enumeration hot path; handle the None/Err arm \
                             or annotate with lint:allow and a proof it cannot fail"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&word.as_str()) && lexed.is_punct(i + 1, '!') {
                    out.push(file.diag(
                        super::PANIC_FREE_HOT_PATH,
                        line,
                        format!("`{word}!` in the enumeration hot path"),
                    ));
                }
            }
            Tok::Punct('[') => {
                let indexes = match lexed.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                    Some(Tok::Ident(prev)) => {
                        !NON_INDEX_KEYWORDS.contains(&prev.as_str())
                            // `name![...]` is a macro invocation, not an index.
                            && !lexed.is_punct(i.wrapping_sub(1) + 1, '!')
                    }
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                    _ => false,
                };
                if indexes {
                    out.push(file.diag(
                        super::PANIC_FREE_HOT_PATH,
                        lexed.tokens[i].line,
                        "direct slice/array indexing in the enumeration hot path; use `get` or \
                         annotate with lint:allow and the bound that makes it safe"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}
