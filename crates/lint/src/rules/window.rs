//! L2 `unsafe-window`: between `note_deletions` and `flush_dirty` the distance
//! index under-estimates distances, which silently breaks the Lemma 3.1
//! pruning bound. PR 6 made the window explicit (a `debug_assert` state
//! machine inside the index); this rule enforces the calling discipline
//! statically: a function that opens the window (`note_deletions`) must close
//! it (`flush_dirty`) before reaching any query entry point. Leaving the
//! window open at function end is legal — that is the documented lazy-repair
//! pattern (`Engine::ensure_index` flushes before the next batch).

use crate::lexer::Tok;
use crate::scan::{functions, is_call};
use crate::{Diagnostic, SourceFile};

/// Entry points that consult the index (directly or transitively) and
/// therefore must never run inside the open window.
const QUERY_ENTRIES: [&str; 9] = [
    "ensure_index",
    "run_batch",
    "run_batch_with_index",
    "run_specs",
    "run_specs_parallel",
    "run_with_sink",
    "run_counting",
    "run_single_buffered",
    "enumerate_half_with",
];

/// Functions that are themselves part of the window protocol (the `BatchIndex`
/// wrapper fans `note_deletions` out per direction; the flush is the closer).
const APPROVED_WRAPPERS: [&str; 2] = ["note_deletions", "flush_dirty"];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lexed = &file.lexed;
    for f in functions(lexed) {
        if APPROVED_WRAPPERS.contains(&f.name.as_str()) {
            continue;
        }
        let mut open_since: Option<u32> = None;
        for i in f.body_start..=f.body_end {
            let Tok::Ident(word) = &lexed.tokens[i].tok else {
                continue;
            };
            if !is_call(lexed, i) {
                continue;
            }
            match word.as_str() {
                "note_deletions" => open_since = Some(lexed.tokens[i].line),
                "flush_dirty" => open_since = None,
                w if QUERY_ENTRIES.contains(&w) => {
                    if let Some(opened) = open_since {
                        out.push(file.diag(
                            super::UNSAFE_WINDOW,
                            lexed.tokens[i].line,
                            format!(
                                "query entry `{w}` inside the note_deletions -> flush_dirty \
                                 unsafe window (opened at line {opened} in `{}`); flush the \
                                 dirty roots first — the index under-estimates distances here",
                                f.name
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}
