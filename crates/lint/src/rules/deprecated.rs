//! L6 `no-deprecated-internal`: the `start_durable` / `start_durable_vfs`
//! shims exist only for external callers mid-migration; inside the workspace
//! everything goes through `PathServiceBuilder::durability(..).start(..)`.
//! `#[deprecated]` alone does not fire for same-crate callers (rustc
//! suppresses the lint inside the deprecated item's crate unless the caller
//! opts in), so the invariant needs its own rule. Applies to test code too —
//! tests are exactly where stale idioms hide.

use crate::lexer::Tok;
use crate::{Diagnostic, SourceFile};

const DEPRECATED: [&str; 2] = ["start_durable", "start_durable_vfs"];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        let Tok::Ident(word) = &lexed.tokens[i].tok else {
            continue;
        };
        if !DEPRECATED.contains(&word.as_str()) {
            continue;
        }
        // The definition itself (`pub fn start_durable(...)`) is allowed to
        // exist; everything else — `.start_durable(`, `Builder::start_durable`,
        // a re-export — counts as an internal caller.
        if lexed.ident(i.wrapping_sub(1)) == Some("fn") {
            continue;
        }
        out.push(file.diag(
            super::NO_DEPRECATED_INTERNAL,
            lexed.tokens[i].line,
            format!(
                "internal use of deprecated `{word}`; build the service with \
                 `PathServiceBuilder::durability(..).start(..)` instead"
            ),
        ));
    }
    out
}
