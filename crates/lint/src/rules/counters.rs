//! L5 `dead-counter`: every field of the instrumentation structs must be
//! *written* somewhere in `crates/core`/`crates/service` and *read* somewhere
//! in `crates/bench` — otherwise it is either a counter nothing maintains
//! (reports silently show zero) or a counter nothing reports (dead weight the
//! next refactor will miscount around). This is the one whole-workspace rule:
//! it needs the struct definitions, the producer crates, and the consumer
//! crate in one view.
//!
//! Matching is by field *name*, not receiver type — a lexical linter cannot
//! resolve types. The instrumentation fields are named distinctively enough
//! that this has not mattered; a shared name (`produced_paths` appears in both
//! `SearchCounters` and `ServiceStats`) simply lets either struct's traffic
//! vouch for both, which errs on the quiet side.

use std::collections::HashSet;

use crate::lexer::Tok;
use crate::scan::matching_brace;
use crate::{Diagnostic, SourceFile};

/// The instrumentation structs under contract.
const STRUCTS: [&str; 3] = ["ServiceStats", "IndexReuse", "SearchCounters"];

/// Operators that, followed by `=`, form a compound assignment.
const COMPOUND_OPS: [char; 7] = ['+', '-', '*', '/', '|', '&', '^'];

struct FieldDef {
    strukt: &'static str,
    field: String,
    file: usize,
    line: u32,
}

pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut defs: Vec<FieldDef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for strukt in STRUCTS {
            for (field, line) in struct_fields(file, strukt) {
                defs.push(FieldDef {
                    strukt,
                    field,
                    file: fi,
                    line,
                });
            }
        }
    }
    if defs.is_empty() {
        return Vec::new();
    }
    let names: HashSet<&str> = defs.iter().map(|d| d.field.as_str()).collect();

    let mut written: HashSet<String> = HashSet::new();
    let mut read: HashSet<String> = HashSet::new();
    for file in files {
        let producer = file.path.contains("crates/core/") || file.path.contains("crates/service/");
        let consumer = file.path.contains("crates/bench/");
        if !producer && !consumer {
            continue;
        }
        let lexed = &file.lexed;
        for i in 0..lexed.tokens.len() {
            if !lexed.is_punct(i, '.') {
                continue;
            }
            let Some(name) = lexed.ident(i + 1) else {
                continue;
            };
            if !names.contains(name) {
                continue;
            }
            // `.f = x` writes; `.f += x` writes (the self-read does not make a
            // report); anything else — `.f`, `.f == x`, `a.f + b` — reads.
            let j = i + 2;
            let pure_assign = lexed.is_punct(j, '=') && !lexed.is_punct(j + 1, '=');
            let compound = matches!(lexed.tokens.get(j), Some(t)
                if matches!(t.tok, Tok::Punct(c) if COMPOUND_OPS.contains(&c)))
                && lexed.is_punct(j + 1, '=');
            if producer && (pure_assign || compound) {
                written.insert(name.to_string());
            }
            if consumer && !pure_assign && !compound {
                read.insert(name.to_string());
            }
        }
    }

    let mut out = Vec::new();
    for def in &defs {
        let file = &files[def.file];
        if !written.contains(&def.field) {
            out.push(file.diag(
                super::DEAD_COUNTER,
                def.line,
                format!(
                    "counter `{}.{}` is never written (no `=`/`+=` on `.{}` anywhere in \
                     crates/core or crates/service)",
                    def.strukt, def.field, def.field
                ),
            ));
        }
        if !read.contains(&def.field) {
            out.push(file.diag(
                super::DEAD_COUNTER,
                def.line,
                format!(
                    "counter `{}.{}` is never read by crates/bench — it will not appear in \
                     any report; wire it through or delete it",
                    def.strukt, def.field
                ),
            ));
        }
    }
    out
}

/// The `(name, line)` of each field of `struct name { .. }` in `file`.
/// Tuple structs and unit structs yield nothing.
fn struct_fields(file: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let lexed = &file.lexed;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.ident(i) != Some("struct") || lexed.ident(i + 1) != Some(name) {
            i += 1;
            continue;
        }
        // Find the body `{`; a `;` or `(` first means unit/tuple struct.
        let mut j = i + 2;
        let mut open = None;
        while j < lexed.tokens.len() {
            match lexed.tokens[j].tok {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') | Tok::Punct('(') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let Some(close) = matching_brace(lexed, open) else {
            break;
        };
        // Walk the body: a field name is the first identifier of each
        // comma-separated entry (after attributes and visibility), directly
        // followed by a single `:`.
        let mut expect_field = true;
        let mut depth = 0i32;
        let mut k = open + 1;
        while k < close {
            match lexed.tokens[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => depth -= 1,
                Tok::Punct(',') if depth <= 0 => expect_field = true,
                Tok::Punct('#') if lexed.is_punct(k + 1, '[') => {
                    // Skip the attribute outright.
                    let mut d = 0i32;
                    k += 1;
                    while k < close {
                        match lexed.tokens[k].tok {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Tok::Ident(ref w) => {
                    if w == "pub" {
                        // Visibility, possibly `pub(crate)`; not the field.
                    } else if expect_field
                        && lexed.is_punct(k + 1, ':')
                        && !lexed.is_punct(k + 2, ':')
                    {
                        out.push((w.clone(), lexed.tokens[k].line));
                        expect_field = false;
                    } else {
                        expect_field = false;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}
