//! L3 `ack-after-durability`: an acknowledgement must never precede the
//! durability work it claims. In `crates/service` and `crates/storage`, any
//! function that both talks to the WAL (`append`/`sync`/`try_publish`/...) and
//! fulfils a completion slot (`fulfill`) must do so in that source order —
//! the fsync-strictly-before-ack discipline PR 7/8 established (an acked
//! update batch must be recoverable after any crash).
//!
//! Functions that fulfil without touching durability at all (query-result
//! delivery in the worker loop) are out of scope: result slots carry computed
//! answers, not durable state.

use crate::lexer::Tok;
use crate::scan::{functions, is_call};
use crate::{Diagnostic, SourceFile};

/// Calls that advance durable state. `try_publish`/`publish` count because the
/// epoch publisher appends to the WAL through its sink before swapping tips.
const DURABILITY: [&str; 6] = [
    "append",
    "append_unsynced",
    "sync",
    "sync_through",
    "try_publish",
    "publish",
];

const FULFIL: [&str; 1] = ["fulfill"];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.path.contains("crates/service/") && !file.path.contains("crates/storage/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let lexed = &file.lexed;
    for f in functions(lexed) {
        if file.mask[f.body_start] {
            continue; // test code exercises slots directly
        }
        if FULFIL.contains(&f.name.as_str()) || f.name == "abandon" {
            continue; // the slot primitives themselves
        }
        let mut first_durability: Option<usize> = None;
        let mut fulfils: Vec<usize> = Vec::new();
        for i in f.body_start..=f.body_end {
            let Tok::Ident(word) = &lexed.tokens[i].tok else {
                continue;
            };
            if !is_call(lexed, i) {
                continue;
            }
            if DURABILITY.contains(&word.as_str()) && first_durability.is_none() {
                first_durability = Some(i);
            } else if FULFIL.contains(&word.as_str()) {
                fulfils.push(i);
            }
        }
        let Some(first) = first_durability else {
            continue; // no durability interaction: out of scope
        };
        for fulfil in fulfils {
            if fulfil < first {
                out.push(file.diag(
                    super::ACK_AFTER_DURABILITY,
                    lexed.tokens[fulfil].line,
                    format!(
                        "`fulfill` before the first durability call (line {}) in `{}`; an \
                         acknowledgement must follow the WAL append/sync it claims",
                        lexed.tokens[first].line, f.name
                    ),
                ));
            }
        }
    }
    out
}
