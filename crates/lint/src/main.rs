//! The `hcsp-lint` driver.
//!
//! ```text
//! cargo run -p hcsp-lint --            # advisory: print findings, exit 0
//! cargo run -p hcsp-lint -- --deny     # CI mode: exit 1 on any finding
//! cargo run -p hcsp-lint -- --rules    # print the rule catalogue
//! ```
//!
//! Everything goes to stderr: diagnostics are for humans and CI logs, and the
//! workspace denies `clippy::print_stdout` in binaries that are not reports.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use hcsp_lint::{lint_workspace, rules};

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--rules" => {
                for (code, id, summary) in rules::CATALOGUE {
                    eprintln!("{code} {id:<24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: hcsp-lint [--deny] [--rules] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("hcsp-lint: no workspace root found (run from the repo, or pass --root)");
            return ExitCode::from(2);
        }
    };

    match lint_workspace(&root) {
        Ok((nfiles, diags)) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!(
                "hcsp-lint: {} file(s) checked, {} finding(s){}",
                nfiles,
                diags.len(),
                if deny { " [deny]" } else { "" }
            );
            if diags.is_empty() || !deny {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hcsp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Ascends from the current directory to the first one whose `Cargo.toml`
/// declares a `[workspace]` — which is where `cargo run -p` starts us anyway.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
