//! `hcsp-lint` — a workspace invariant linter.
//!
//! The workspace documents several cross-cutting rules that rustc and clippy
//! cannot see: lock-ordering around the admission/epoch mutex, the
//! `note_deletions` → `flush_dirty` unsafe window, fsync-strictly-before-ack,
//! panic freedom in the enumeration kernel, and the contract that every
//! instrumentation counter is both maintained and reported. This crate makes
//! them machine-checked: a hand-rolled lexer ([`lexer`]), cheap structural
//! passes ([`scan`]), and one module per rule ([`rules`]). No dependencies —
//! the build environment is offline and the linter must never be the thing
//! that breaks the build.
//!
//! Suppression is per-line and must be justified:
//!
//! ```text
//! // lint:allow(panic-free-hot-path) idx < arena.len() checked by caller
//! let slot = &arena[idx];
//! ```
//!
//! An allow with an unknown rule id or an empty reason is itself a diagnostic
//! (`allow-syntax`), and that diagnostic cannot be allowed away.

pub mod lexer;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Lexed};
use scan::test_region_mask;

/// One finding, addressed by workspace-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (see [`rules::CATALOGUE`]), or [`rules::ALLOW_SYNTAX`].
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.path,
            self.line,
            rules::code_of(self.rule),
            self.rule,
            self.message
        )
    }
}

/// A lexed source file plus the precomputed test-region mask the rules share.
pub struct SourceFile {
    /// Workspace-relative, `/`-separated — rules scope themselves by substring
    /// (`crates/service/`), so the separator must be stable across platforms.
    pub path: String,
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` lies in test code (a `#[cfg(test)]`
    /// module, a `#[test]` function, or an entire `tests/`/`examples/` file).
    pub mask: Vec<bool>,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, src: &str) -> Self {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed);
        SourceFile {
            path: path.into(),
            lexed,
            mask,
        }
    }

    /// Helper the rules use to emit a finding against this file.
    pub fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.clone(),
            line,
            message,
        }
    }
}

/// Runs every rule over `files`, applies `// lint:allow` suppression, and
/// validates the allow comments themselves. Diagnostics come back sorted by
/// `(path, line, rule)`.
pub fn lint_sources(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = rules::run_all(files);
    diags.retain(|d| !is_allowed(files, d));
    for file in files {
        for allow in &file.lexed.allows {
            if !rules::is_known(&allow.rule) {
                diags.push(file.diag(
                    rules::ALLOW_SYNTAX,
                    allow.line,
                    format!(
                        "lint:allow names unknown rule `{}`; known rules: {}",
                        allow.rule,
                        rules::CATALOGUE
                            .iter()
                            .map(|(_, id, _)| *id)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            } else if allow.reason.is_empty() {
                diags.push(file.diag(
                    rules::ALLOW_SYNTAX,
                    allow.line,
                    format!(
                        "lint:allow({}) has no reason; write why the exception is sound",
                        allow.rule
                    ),
                ));
            }
        }
    }
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    diags
}

/// Whether a *well-formed* allow on the same or the preceding line covers `d`.
/// Malformed allows (unknown rule / missing reason) never suppress anything.
fn is_allowed(files: &[SourceFile], d: &Diagnostic) -> bool {
    let Some(file) = files.iter().find(|f| f.path == d.path) else {
        return false;
    };
    file.lexed.allows.iter().any(|a| {
        a.rule == d.rule
            && !a.reason.is_empty()
            && rules::is_known(&a.rule)
            && (a.line == d.line || a.line + 1 == d.line)
    })
}

/// Collects every workspace `.rs` file under `root/crates`, lexes it, and
/// marks whole-file test regions for `tests/`, `examples/`, and `benches/`
/// directories. The linter's own fixture corpus is excluded — fixtures are
/// *supposed* to fail.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(&root.join("crates"), &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.contains("crates/lint/fixtures/") {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        let mut file = SourceFile::new(rel, src.as_str());
        if file.path.contains("/tests/")
            || file.path.contains("/examples/")
            || file.path.contains("/benches/")
        {
            file.mask.iter_mut().for_each(|m| *m = true);
        }
        files.push(file);
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root`; returns `(files checked, findings)`.
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Diagnostic>)> {
    let files = collect_workspace_files(root)?;
    let diags = lint_sources(&files);
    Ok((files.len(), diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_or_preceding_line_suppresses() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    // lint:allow(panic-free-hot-path) i is bounded by the caller
    v[i]
}
fn g(v: &[u32], i: usize) -> u32 {
    v[i] // lint:allow(panic-free-hot-path) same-line form
}
fn h(v: &[u32], i: usize) -> u32 {
    v[i]
}
";
        let files = vec![SourceFile::new("crates/core/src/search.rs", src)];
        let diags = lint_sources(&files);
        assert_eq!(
            diags.len(),
            1,
            "only the unannotated index survives: {diags:?}"
        );
        assert_eq!(diags[0].line, 9);
    }

    #[test]
    fn malformed_allows_are_reported_and_do_not_suppress() {
        let src = "\
fn f(v: &[u32]) -> u32 {
    // lint:allow(panic-free-hot-path)
    v[0]
}
fn g(v: &[u32]) -> u32 {
    // lint:allow(no-such-rule) with a reason
    v[0]
}
";
        let files = vec![SourceFile::new("crates/core/src/buffers.rs", src)];
        let diags = lint_sources(&files);
        let rules_hit: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        // Both indexes still fire, plus one empty-reason and one unknown-rule.
        assert_eq!(
            rules_hit
                .iter()
                .filter(|r| **r == rules::PANIC_FREE_HOT_PATH)
                .count(),
            2,
            "{diags:?}"
        );
        assert_eq!(
            rules_hit
                .iter()
                .filter(|r| **r == rules::ALLOW_SYNTAX)
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_code_and_rule() {
        let d = Diagnostic {
            rule: rules::NO_DEPRECATED_INTERNAL,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "nope".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [L6/no-deprecated-internal] nope"
        );
    }
}
