//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The linter never needs a real parse tree: every rule works on a flat token
//! stream with line numbers, plus the `// lint:allow(...)` comments the rules
//! honour. What the lexer must get *exactly* right is what is and is not code:
//! strings, raw strings, char literals vs lifetimes, nested block comments —
//! a `note_deletions` inside a string or a doc comment must never trigger a
//! rule, and a `[` inside a `vec![...]` macro body must still look like one.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `let`, `publisher`, ...).
    Ident(String),
    /// A single punctuation character (`{`, `.`, `[`, `!`, ...). Compound
    /// operators arrive as consecutive tokens (`+=` is `+` then `=`).
    Punct(char),
    /// Any literal: string, raw string, char, byte string, or number. The
    /// content is deliberately dropped — literals are opaque to every rule.
    Lit,
    /// A lifetime or loop label (`'a`, `'outer`). Kept distinct from [`Tok::Lit`]
    /// so a label never hides a following token.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// One `// lint:allow(<rule>) <reason>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub line: u32,
    /// The rule id inside the parentheses, verbatim.
    pub rule: String,
    /// The trimmed text after the closing parenthesis; the linter requires it
    /// to be non-empty (an allow without a written rationale is itself an
    /// error).
    pub reason: String,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i)?.tok {
            Tok::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    /// Whether token `i` is the punctuation character `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
    }
}

/// The marker that introduces an allow comment.
const ALLOW_MARKER: &str = "lint:allow";

/// Lexes `src` into tokens and allow-comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                // Doc comments (`///`, `//!`) *mention* the annotation syntax;
                // only plain `//` comments carry a live allow.
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                if !is_doc {
                    if let Some(allow) = parse_allow(text, line) {
                        out.allows.push(allow);
                    }
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, line-accurate.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i = skip_string(bytes, i + 1, &mut line);
            }
            '\'' => {
                // Lifetime/label (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = bytes.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(b'\\') => false,
                    Some(c) if (c as char).is_alphanumeric() || c == b'_' => {
                        // `'a'` is a char literal; `'a` followed by anything
                        // but a quote is a lifetime. Multi-char lifetimes
                        // (`'outer`) always are.
                        bytes.get(i + 2) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i += 1;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                // Tolerate a malformed literal: never scan past
                                // the line under a broken quote.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            c if c.is_ascii_digit() => {
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    if (b as char).is_ascii_alphanumeric() || b == b'_' {
                        i += 1;
                    } else if b == b'.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| (*n as char).is_ascii_digit())
                    {
                        // `1.5` continues the literal; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw/byte string prefixes: `r"..."`, `r#"..."#`, `br"..."`, `b"..."`.
                if word.bytes().all(|b| matches!(b, b'r' | b'b' | b'c'))
                    && matches!(bytes.get(i), Some(b'"') | Some(b'#'))
                    && word.contains('r')
                {
                    let mut hashes = 0usize;
                    while bytes.get(i) == Some(&b'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if bytes.get(i) == Some(&b'"') {
                        i += 1;
                        out.tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        'raw: while i < bytes.len() {
                            if bytes[i] == b'\n' {
                                line += 1;
                                i += 1;
                            } else if bytes[i] == b'"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while seen < hashes && bytes.get(j) == Some(&b'#') {
                                    seen += 1;
                                    j += 1;
                                }
                                i = j;
                                if seen == hashes {
                                    break 'raw;
                                }
                            } else {
                                i += 1;
                            }
                        }
                    } else {
                        // `r#ident` raw identifier: emit the identifier itself.
                        let id_start = i;
                        while i < bytes.len()
                            && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                        {
                            i += 1;
                        }
                        out.tokens.push(Token {
                            tok: Tok::Ident(src[id_start..i].to_string()),
                            line,
                        });
                    }
                } else if word == "b" && bytes.get(i) == Some(&b'"') {
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    i = skip_string(bytes, i + 1, &mut line);
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Ident(word.to_string()),
                        line,
                    });
                }
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a (non-raw) string literal body starting just after the opening
/// quote; returns the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses `lint:allow(<rule>) <reason>` out of one line-comment's text.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find(ALLOW_MARKER)?;
    let rest = &comment[at + ALLOW_MARKER.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some(Allow { line, rule, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // note_deletions in a comment
            /* note_deletions in a block /* nested */ comment */
            let x = "note_deletions in a string";
            let y = r#"note_deletions raw "quoted" string"#;
            let z = 'n';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"note_deletions".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* a\nb */\nfoo\n\"x\ny\"\nbar";
        let lexed = lex(src);
        let foo = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("foo".into()))
            .unwrap();
        let bar = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("bar".into()))
            .unwrap();
        assert_eq!(foo.line, 3);
        assert_eq!(bar.line, 6);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }");
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Lifetime));
        // The `str` after `&'a` must survive as an identifier.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Ident("str".into())));
    }

    #[test]
    fn char_literals_consume_their_quotes() {
        let ids = idents("let c = 'x'; let esc = '\\n'; after();");
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn numeric_literals_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..10 { a[i]; } let f = 1.5e3;");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2, "the `..` of the range survives");
    }

    #[test]
    fn doc_comments_never_carry_allows() {
        let src = "//! docs may show `// lint:allow(unsafe-window) like this`\n/// and here: lint:allow(dead-counter) example\n// lint:allow(unsafe-window) a real one\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 3);
    }

    #[test]
    fn allow_comments_are_collected_with_reasons() {
        let src = "\n// lint:allow(panic-free-hot-path) arena index is bounds-checked above\nlet x = v[i];\n// lint:allow(unsafe-window)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].rule, "panic-free-hot-path");
        assert!(lexed.allows[0].reason.contains("bounds-checked"));
        assert_eq!(lexed.allows[1].rule, "unsafe-window");
        assert!(lexed.allows[1].reason.is_empty());
    }
}
