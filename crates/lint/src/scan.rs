//! Structural passes over the flat token stream: function bodies, `#[cfg(test)]`
//! regions, and small helpers the rules share.

use crate::lexer::{Lexed, Tok};

/// One `fn` item: its name and the token range of its body (inclusive of the
/// braces), discovered by brace matching.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Index of the `{` token opening the body.
    pub body_start: usize,
    /// Index of the matching `}` token.
    pub body_end: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// Extracts every `fn` item with a body. Trait-method declarations (ending in
/// `;` before any `{`) and `fn` pointer types (`fn(` with no name) are skipped.
/// Nested functions are reported as their own entries (their tokens also lie
/// inside the enclosing body's range; rules tolerate the overlap).
pub fn functions(lexed: &Lexed) -> Vec<Function> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.ident(i) == Some("fn") {
            let Some(name) = lexed.ident(i + 1) else {
                i += 1;
                continue; // `fn(` pointer type
            };
            let name = name.to_string();
            let line = toks[i].line;
            // Scan forward for the body `{`, giving up at a top-level `;`
            // (a bodiless trait method). Angle brackets in generics and
            // parenthesised argument lists may contain anything except braces.
            let mut j = i + 2;
            let mut body = None;
            let mut depth = 0i32; // (), [] nesting; `{` at depth 0 is the body
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('{') if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = body {
                if let Some(end) = matching_brace(lexed, start) {
                    out.push(Function {
                        name,
                        body_start: start,
                        body_end: end,
                        line,
                    });
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// The index of the `}` matching the `{` at `open`.
pub fn matching_brace(lexed: &Lexed, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in lexed.tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A boolean mask over the token stream: `true` for tokens inside a
/// `#[cfg(test)] mod ... { }` block or a `#[test]`-attributed function.
/// Production-path rules consult it so test code stays free to `unwrap`.
pub fn test_region_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_cfg_test = lexed.is_punct(i, '#')
            && lexed.is_punct(i + 1, '[')
            && lexed.ident(i + 2) == Some("cfg")
            && lexed.is_punct(i + 3, '(')
            && lexed.ident(i + 4) == Some("test")
            && lexed.is_punct(i + 5, ')')
            && lexed.is_punct(i + 6, ']');
        let is_test_attr = lexed.is_punct(i, '#')
            && lexed.is_punct(i + 1, '[')
            && lexed.ident(i + 2) == Some("test")
            && lexed.is_punct(i + 3, ']');
        if is_cfg_test || is_test_attr {
            // Mark everything up to the end of the attributed item's block.
            let attr_end = if is_cfg_test { i + 6 } else { i + 3 };
            let mut j = attr_end + 1;
            // Skip further attributes between this one and the item.
            while lexed.is_punct(j, '#') && lexed.is_punct(j + 1, '[') {
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            // Find the item's opening brace (for `mod m { .. }` / `fn f() { .. }`).
            let mut k = j;
            let mut found = None;
            while k < toks.len() && k < j + 64 {
                match toks[k].tok {
                    Tok::Punct('{') => {
                        found = Some(k);
                        break;
                    }
                    Tok::Punct(';') => break, // `#[cfg(test)] mod tests;` — out-of-line
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = found {
                if let Some(close) = matching_brace(lexed, open) {
                    for m in mask.iter_mut().take(close + 1).skip(i) {
                        *m = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Whether the identifier at `i` is a *call*: followed by `(`, optionally
/// through a turbofish (`::<T>(`).
pub fn is_call(lexed: &Lexed, i: usize) -> bool {
    if lexed.is_punct(i + 1, '(') {
        return true;
    }
    // `name::<..>(` — rare in this codebase but cheap to honour.
    if lexed.is_punct(i + 1, ':') && lexed.is_punct(i + 2, ':') && lexed.is_punct(i + 3, '<') {
        let mut depth = 0i32;
        for j in i + 3..lexed.tokens.len().min(i + 64) {
            match lexed.tokens[j].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return lexed.is_punct(j + 1, '(');
                    }
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_are_found_with_bodies() {
        let src = "impl Foo { fn a(&self) -> u32 { 1 } }\ntrait T { fn decl(&self); }\nfn top<F: Fn(u32)>(f: F) { f(2) }";
        let lexed = lex(src);
        let fns = functions(&lexed);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["a", "top"],
            "decl has no body; Fn(u32) is a bound"
        );
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn live() { x() }\n#[cfg(test)]\nmod tests {\n fn t() { y() } }\nfn after() { z() }";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed);
        let pos = |name: &str| {
            lexed
                .tokens
                .iter()
                .position(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
        };
        assert!(!mask[pos("x")]);
        assert!(mask[pos("y")]);
        assert!(!mask[pos("z")]);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { boom() }\nfn live() { ok() }";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed);
        let pos = |name: &str| {
            lexed
                .tokens
                .iter()
                .position(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
        };
        assert!(mask[pos("boom")]);
        assert!(!mask[pos("ok")]);
    }
}
