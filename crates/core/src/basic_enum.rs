//! `BasicEnum` — the baseline batch algorithm (Algorithm 1, §III).
//!
//! The only computation shared across the batch is the index: one pair of multi-source BFS
//! runs from `S = ∪ q.s` and `T = ∪ q.t` replaces the per-query BFS pairs of `PathEnum`.
//! Each query is then enumerated independently against the shared index with the same
//! bidirectional search + `⊕` join as `PathEnum`.

use crate::buffers::SearchBuffers;
use crate::pathenum::PathEnum;
use crate::query::{BatchSummary, PathQuery};
use crate::search::ExpansionMode;
use crate::search_order::SearchOrder;
use crate::sink::PathSink;
use crate::stats::{EnumStats, Stage};
use hcsp_graph::DiGraph;
use hcsp_index::BatchIndex;
use std::time::Instant;

/// Configuration of the baseline batch algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicEnum {
    /// Neighbour expansion order; [`SearchOrder::DistanceThenDegree`] yields `BasicEnum+`.
    pub order: SearchOrder,
    /// Half-search expansion mechanics (frontier engine vs recursive oracle).
    pub mode: ExpansionMode,
}

impl BasicEnum {
    /// Creates the algorithm with the given search order and the default expansion mode.
    pub fn new(order: SearchOrder) -> Self {
        BasicEnum {
            order,
            mode: ExpansionMode::default(),
        }
    }

    /// Selects the half-search expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Processes a batch of queries, streaming every result path into `sink`.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }

        // Lines 1-2: shared index from the union of sources and targets.
        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        let build_time = start.elapsed();

        let mut stats = self.run_batch_with_index(graph, &index, queries, sink);
        stats.add_stage(Stage::BuildIndex, build_time);
        stats
    }

    /// Processes a batch against an already-built (possibly shared, possibly superset)
    /// index: lines 3–8 of Algorithm 1 only.
    ///
    /// The index must cover the batch's endpoint sets at its largest hop constraint; a
    /// superset index (more roots, larger bound) is fine — see
    /// [`BatchEnum::run_batch_with_index`](crate::BatchEnum::run_batch_with_index).
    pub fn run_batch_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut buffers = SearchBuffers::for_graph(graph);
        self.run_batch_with_index_buffered(graph, index, queries, sink, &mut buffers)
    }

    /// [`BasicEnum::run_batch_with_index`] with caller-owned, reusable [`SearchBuffers`]
    /// (the entry point of the per-thread parallel workers).
    pub fn run_batch_with_index_buffered<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
        buffers: &mut SearchBuffers,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        stats.num_clusters = queries.len();
        let per_query = PathEnum::new(self.order).with_mode(self.mode);
        for (id, query) in queries.iter().enumerate() {
            // The per-query runner consults the sink's quota itself: satisfied queries
            // are skipped, bounded ones run the early-terminating streaming join.
            let flow = per_query
                .run_with_index_buffered(graph, index, query, id, sink, &mut stats, buffers);
            if flow.stops_batch() {
                break;
            }
        }
        sink.finish();
        stats
    }

    /// Builds the shared index only (exposed for benchmarks that time stages separately).
    pub fn build_index(&self, graph: &DiGraph, queries: &[PathQuery]) -> BatchIndex {
        let summary = BatchSummary::of(queries);
        BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{canonical, enumerate_reference};
    use crate::sink::{CollectSink, CountSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::preferential::{preferential_attachment, PreferentialConfig};
    use hcsp_graph::generators::regular::{complete, grid};

    fn assert_batch_matches_reference(graph: &DiGraph, queries: &[PathQuery], order: SearchOrder) {
        let mut sink = CollectSink::new(queries.len());
        BasicEnum::new(order).run_batch(graph, queries, &mut sink);
        for (id, query) in queries.iter().enumerate() {
            let expected = canonical(enumerate_reference(graph, query));
            let got = canonical(sink.paths(id).to_paths());
            assert_eq!(got, expected, "query {query}");
        }
    }

    #[test]
    fn batch_matches_reference_on_grid() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(0u32, 15u32, 8),
            PathQuery::new(1u32, 14u32, 6),
            PathQuery::new(4u32, 11u32, 5),
        ];
        assert_batch_matches_reference(&g, &queries, SearchOrder::VertexId);
        assert_batch_matches_reference(&g, &queries, SearchOrder::DistanceThenDegree);
    }

    #[test]
    fn batch_matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm_random(80, 400, seed).unwrap();
            let queries = vec![
                PathQuery::new(0u32, 40u32, 4),
                PathQuery::new(0u32, 41u32, 5),
                PathQuery::new(5u32, 40u32, 4),
                PathQuery::new(7u32, 63u32, 5),
            ];
            assert_batch_matches_reference(&g, &queries, SearchOrder::VertexId);
        }
    }

    #[test]
    fn shared_index_produces_same_counts_as_pathenum() {
        let g = preferential_attachment(PreferentialConfig {
            num_vertices: 300,
            edges_per_vertex: 3,
            reciprocity: 0.3,
            seed: 2,
        })
        .unwrap();
        let queries: Vec<PathQuery> = (0..10)
            .map(|i| PathQuery::new(i as u32, (i + 37) as u32 % 300, 4))
            .collect();

        let mut basic_sink = CountSink::new(queries.len());
        BasicEnum::default().run_batch(&g, &queries, &mut basic_sink);

        let mut pe_sink = CountSink::new(queries.len());
        crate::pathenum::PathEnum::default().run_batch(&g, &queries, &mut pe_sink);

        assert_eq!(basic_sink.counts(), pe_sink.counts());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = complete(3);
        let mut sink = CountSink::new(0);
        let stats = BasicEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        assert_eq!(stats.total_time(), std::time::Duration::ZERO);
    }

    #[test]
    fn index_is_built_once_for_the_whole_batch() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
        ];
        let mut sink = CountSink::new(2);
        let stats = BasicEnum::default().run_batch(&g, &queries, &mut sink);
        // One BuildIndex stage entry covering both queries; enumeration covers both too.
        assert!(stats.stage_time(Stage::BuildIndex) > std::time::Duration::ZERO);
        assert!(stats.counters.produced_paths > 0);
        let index = BasicEnum::default().build_index(&g, &queries);
        assert_eq!(index.source_index().num_roots(), 2);
        assert_eq!(index.target_index().num_roots(), 1);
    }
}
